type reason = Dst_down | Src_down | Partitioned

let reason_name = function
  | Dst_down -> "dst_down"
  | Src_down -> "src_down"
  | Partitioned -> "partitioned"

type phase = Precopy of int | Stop_copy | Committed | Aborted of reason

let phase_name = function
  | Precopy n -> Printf.sprintf "precopy_%d" n
  | Stop_copy -> "stop_copy"
  | Committed -> "committed"
  | Aborted r -> "aborted_" ^ reason_name r

type params = { max_rounds : int; stop_copy_bytes : int }

let params ?(max_rounds = 8) ?(stop_copy_bytes = 64 * 1024) () =
  if max_rounds < 1 then invalid_arg "Migrate.params: max_rounds must be >= 1";
  if stop_copy_bytes < 1 then
    invalid_arg "Migrate.params: stop_copy_bytes must be >= 1";
  { max_rounds; stop_copy_bytes }

type t = {
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  net : Netmodel.t;
  src : int;
  dst : int;
  src_up : unit -> bool;
  dst_up : unit -> bool;
  dirty_bps : unit -> float;
  p : params;
  on_drain : now_ns:float -> bool -> unit;
  on_commit : now_ns:float -> pause_ns:float -> unit;
  on_abort : now_ns:float -> reason -> unit;
  mutable phase : phase;
  mutable rounds : int;
  mutable bytes_copied : int;
  mutable pause_ns : float;
  mutable draining : bool;
}

let phase t = t.phase
let rounds t = t.rounds
let bytes_copied t = t.bytes_copied
let pause_ns t = t.pause_ns

let done_ t =
  match t.phase with Committed | Aborted _ -> true | _ -> false

let at_abs t ns f =
  Uksim.Engine.at t.engine
    (max (Uksim.Clock.cycles_of_ns ns) (Uksim.Clock.cycles t.clock))
    f

let abort t ~now reason =
  t.phase <- Aborted reason;
  if t.draining then begin
    t.draining <- false;
    t.on_drain ~now_ns:now false
  end;
  t.on_abort ~now_ns:now reason

(* One copy pays both the wire (latency + bytes/bandwidth over the
   inter-host link) and the memcpy on the source, per the calibrated
   cost model. *)
let copy_ns t ~bytes =
  match Netmodel.transfer_ns t.net ~src:t.src ~dst:t.dst ~bytes with
  | None -> None
  | Some wire -> Some (wire +. Uksim.Clock.ns_of_cycles (Uksim.Cost.memcpy bytes))

let healthy t ~now reason_if_net =
  if not (t.dst_up ()) then (abort t ~now Dst_down; false)
  else if not (t.src_up ()) then (abort t ~now Src_down; false)
  else if
    not
      (Netmodel.reachable t.net ~src:t.src ~dst:t.dst
      && Netmodel.reachable t.net ~src:t.dst ~dst:t.src)
  then (abort t ~now reason_if_net; false)
  else true

let stop_copy t ~now ~bytes =
  t.phase <- Stop_copy;
  (* Front-door draining around the blackout: the router diverts the
     shard while the VM is paused, so requests queue elsewhere instead
     of dying against a stopped guest. *)
  t.draining <- true;
  t.on_drain ~now_ns:now true;
  let bytes = max bytes 4096 in
  match copy_ns t ~bytes with
  | None -> abort t ~now Partitioned
  | Some dur ->
      t.bytes_copied <- t.bytes_copied + bytes;
      t.pause_ns <- dur;
      at_abs t (now +. dur) (fun () ->
          let now = now +. dur in
          (* The destination must still be alive and mutually reachable
             at handover, or the whole migration unwinds. *)
          if healthy t ~now Partitioned then begin
            t.phase <- Committed;
            t.draining <- false;
            t.on_drain ~now_ns:now false;
            t.on_commit ~now_ns:now ~pause_ns:dur
          end)

let rec round t ~now ~bytes ~n =
  if healthy t ~now Partitioned then begin
    match copy_ns t ~bytes with
    | None -> abort t ~now Partitioned
    | Some dur ->
        t.phase <- Precopy n;
        t.rounds <- n + 1;
        t.bytes_copied <- t.bytes_copied + bytes;
        at_abs t (now +. dur) (fun () ->
            let now = now +. dur in
            if healthy t ~now Partitioned then begin
              (* The guest kept running during the copy; what it dirtied
                 is the next round's payload. *)
              let dirtied =
                int_of_float (t.dirty_bps () *. dur /. 1e9)
              in
              if dirtied <= t.p.stop_copy_bytes || n + 1 >= t.p.max_rounds then
                stop_copy t ~now ~bytes:dirtied
              else round t ~now ~bytes:dirtied ~n:(n + 1)
            end)
  end

let nop_drain ~now_ns:_ _ = ()

let start ~clock ~engine ~net ~src ~dst ~src_up ~dst_up ~footprint_bytes
    ~dirty_bps ~params:p ?(on_drain = nop_drain) ~on_commit ~on_abort ~at_ns () =
  if src = dst then invalid_arg "Migrate.start: src = dst";
  if footprint_bytes < 1 then invalid_arg "Migrate.start: empty footprint";
  let t =
    {
      clock;
      engine;
      net;
      src;
      dst;
      src_up;
      dst_up;
      dirty_bps;
      p;
      on_drain;
      on_commit;
      on_abort;
      phase = Precopy 0;
      rounds = 0;
      bytes_copied = 0;
      pause_ns = 0.0;
      draining = false;
    }
  in
  at_abs t at_ns (fun () ->
      round t ~now:(Float.max at_ns (Uksim.Clock.ns clock)) ~bytes:footprint_bytes ~n:0);
  t
