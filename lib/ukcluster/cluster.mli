(** The assembled fault-tolerant serving tier: hosts ({!Host}) joined
    by a network ({!Netmodel}), watched by a failure detector
    ({!Detector}), fronted by a sharding router ({!Router}), with live
    migration ({!Migrate}) as the shard-mobility primitive — all on one
    seeded virtual timeline, so any drill replays byte-identically.

    The invariant the whole tier exists to uphold: {e every offered
    request resolves exactly once} — completed, shed, or expired —
    whatever combination of crashes, freezes, asymmetric partitions and
    mid-migration failures the fault plane throws at it. [report.lost]
    is that invariant as a number; it must be 0. *)

type t

val create :
  ?seed:int ->
  ?n_hosts:int ->
  ?classes:Host.cls array ->
  ?instances:int ->
  ?image:Ukfleet.Image.t ->
  ?net_latency_ns:float ->
  ?net_gbps:float ->
  ?detector_params:Detector.params ->
  ?router_params:Router.params ->
  ?mig_params:Migrate.params ->
  unit ->
  t
(** Defaults: 4 hosts (every third ARM-class), 2 instances each,
    httpd image, 50 us / 10 Gbps fabric. *)

val clock : t -> Uksim.Clock.t
val engine : t -> Uksim.Engine.t
val net : t -> Netmodel.t
val router : t -> Router.t
val detector : t -> Detector.t
val n_hosts : t -> int
val host : t -> int -> Host.t

val front : t -> int
(** The front tier's node id on the network ([n_hosts]). *)

val ops : t -> Ukfault.Faulthost.ops
(** The cluster's fault primitives, for arming an
    {!Ukfault.Faulthost} timeline. Recovering a crashed host also
    re-admits its shards at the router (the control-plane half the
    sticky-dead detector leaves to the owner). *)

val migrate : t -> at_ns:float -> src:int -> dst:int -> unit
(** Schedule a live migration of [src]'s first shard to [dst]. On
    abort (destination died, link partitioned) it restarts toward the
    lowest-id live host after a 2 ms backoff, up to 4 attempts. *)

val kill_clone : t -> at_ns:float -> src:int -> dst:int -> unit
(** The naive baseline: crash [src] and recover {e reactively} — the
    cold clone toward [dst] starts only once the detector declares the
    source dead, so the shard eats timeouts for the whole detection
    window. The contrast class for {!migrate}. *)

val migrations : t -> int
val migration_aborts : t -> int
val last_pause_ns : t -> float

val settle_ns : t -> float
(** When the measured window opens (all hosts booted, plus margin). *)

type report = {
  offered : int;
  completed : int;
  shed : int;
  expired : int;
  lost : int;  (** offered - completed - shed - expired: must be 0 *)
  retries : int;
  hedges : int;
  hedge_wins : int;
  cancelled : int;
  lost_replies : int;  (** responses eaten by partitions (recovered by retry/deadline) *)
  suspects : int;
  recovers : int;
  deads : int;
  migrations : int;
  migration_aborts : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  max_us : float;
  trace_hash : int;
}

val run : t -> Ukfleet.Workload.t -> report
(** Replay [wl] as an open Poisson arrival stream through the router
    (starting after {!settle_ns}), drive the engine dry, and report.
    Single-shot: a cluster runs one workload. *)

val trace_hash : t -> int
val pp_report : Format.formatter -> report -> unit
