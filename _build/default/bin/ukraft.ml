(* ukraft CLI: configure, inspect and boot unikernel images from the
   command line (the kraft-tool face of the library).

   Examples:
     ukraft menu
     ukraft build --app app-nginx --net --alloc mimalloc
     ukraft graph --app app-hello --format dot
     ukraft boot  --app app-hello --vmm firecracker
     ukraft syscalls --app nginx *)

open Cmdliner
module Cfg = Unikraft.Config
module Img = Unikraft.Image
module Vm = Unikraft.Vm

let alloc_conv =
  let parse s =
    match s with
    | "buddy" -> Ok Cfg.Buddy
    | "tlsf" -> Ok Cfg.Tlsf
    | "tinyalloc" -> Ok Cfg.Tinyalloc
    | "mimalloc" -> Ok Cfg.Mimalloc
    | "bootalloc" -> Ok Cfg.Bootalloc
    | "oscar" -> Ok Cfg.Oscar
    | _ -> Error (`Msg (Printf.sprintf "unknown allocator %s" s))
  in
  Arg.conv (parse, fun ppf a -> Fmt.string ppf (Cfg.alloc_backend_name a))

let app_arg =
  Arg.(value & opt string "app-hello" & info [ "app" ] ~doc:"Application (catalog name).")

let plat_arg =
  Arg.(value & opt string "plat-kvm" & info [ "platform" ] ~doc:"Target platform library.")

let alloc_arg =
  Arg.(value & opt alloc_conv Cfg.Tlsf & info [ "alloc" ] ~doc:"Memory allocator backend.")

let net_arg = Arg.(value & flag & info [ "net" ] ~doc:"Include the network stack (lwip+virtio).")
let fs_arg = Arg.(value & flag & info [ "fs" ] ~doc:"Include vfscore + ramfs.")
let mem_arg = Arg.(value & opt int 32 & info [ "mem" ] ~doc:"Guest memory (MiB).")

let no_dce = Arg.(value & flag & info [ "no-dce" ] ~doc:"Disable dead code elimination.")
let no_lto = Arg.(value & flag & info [ "no-lto" ] ~doc:"Disable link-time optimization.")

let make_cfg app plat alloc net fs mem no_dce no_lto =
  Cfg.make ~app ~platform:plat ~alloc
    ~net:(if net then Cfg.Vhost_net else Cfg.No_net)
    ~fs:(if fs then Cfg.Ramfs else Cfg.No_fs)
    ~mem_mb:mem ~dce:(not no_dce) ~lto:(not no_lto) ()

let or_die = function
  | Ok v -> v
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1

(* --- menu -------------------------------------------------------------- *)

let menu_cmd =
  let run () =
    let schema = Cfg.schema () in
    List.iter
      (fun (path, opts) ->
        Printf.printf "%s\n" (String.concat " / " (if path = [] then [ "(top)" ] else path));
        List.iter
          (fun (o : Ukconf.Kopt.t) ->
            Printf.printf "  %-16s %-40s default=%s\n" o.Ukconf.Kopt.name o.Ukconf.Kopt.doc
              (Fmt.str "%a" Ukconf.Kopt.pp_value o.Ukconf.Kopt.default))
          opts)
      (Ukconf.Schema.menu_tree schema)
  in
  Cmd.v (Cmd.info "menu" ~doc:"Show the Kconfig option menu.") Term.(const run $ const ())

(* --- build ------------------------------------------------------------- *)

let build_cmd =
  let run app plat alloc net fs mem no_dce no_lto =
    let cfg = or_die (make_cfg app plat alloc net fs mem no_dce no_lto) in
    let image = or_die (Img.build cfg) in
    Format.printf "%a@." Cfg.pp cfg;
    Format.printf "%a@." Img.pp image;
    Format.printf "micro-libraries: %s@." (String.concat " " (Img.libs image));
    let resolved = or_die (Cfg.resolve cfg) in
    print_string (Ukconf.Config.to_dotconfig resolved)
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Resolve a configuration and link its image.")
    Term.(
      const run $ app_arg $ plat_arg $ alloc_arg $ net_arg $ fs_arg $ mem_arg $ no_dce $ no_lto)

(* --- graph ------------------------------------------------------------- *)

let graph_cmd =
  let fmt_arg =
    Arg.(value & opt string "text" & info [ "format" ] ~doc:"Output: text or dot.")
  in
  let run app plat alloc net fs mem no_dce no_lto fmt =
    let cfg = or_die (make_cfg app plat alloc net fs mem no_dce no_lto) in
    let image = or_die (Img.build cfg) in
    let g = Img.dep_graph image in
    if fmt = "dot" then print_string (Ukgraph.Digraph.to_dot ~name:app g)
    else
      List.iter
        (fun n ->
          let succs = Ukgraph.Digraph.succs g n in
          if succs <> [] then Printf.printf "%-16s -> %s\n" n (String.concat ", " succs))
        (Ukgraph.Digraph.nodes g)
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Print the image's micro-library dependency graph.")
    Term.(
      const run $ app_arg $ plat_arg $ alloc_arg $ net_arg $ fs_arg $ mem_arg $ no_dce $ no_lto
      $ fmt_arg)

(* --- boot -------------------------------------------------------------- *)

let boot_cmd =
  let vmm_arg =
    Arg.(value & opt string "qemu" & info [ "vmm" ] ~doc:"VMM: qemu, qemu-microvm, firecracker, solo5, xen, linuxu.")
  in
  let run app plat alloc net fs mem no_dce no_lto vmm_name =
    let vmm =
      match Ukplat.Vmm.of_name vmm_name with
      | Some v -> v
      | None ->
          Printf.eprintf "unknown vmm %s\n" vmm_name;
          exit 1
    in
    let cfg = or_die (make_cfg app plat alloc net fs mem no_dce no_lto) in
    let env =
      if net then begin
        let clock = Uksim.Clock.create () in
        let engine = Uksim.Engine.create clock in
        let wire, _peer = Uknetdev.Wire.create_pair ~engine () in
        or_die (Vm.boot ~vmm ~clock ~engine ~wire cfg)
      end
      else or_die (Vm.boot ~vmm cfg)
    in
    let bd = env.Vm.breakdown in
    Format.printf "VMM startup : %8.2f ms@." (bd.Ukplat.Vmm.vmm_startup_ns /. 1e6);
    Format.printf "guest boot  : %8.1f us@." (bd.Ukplat.Vmm.guest_ns /. 1e3);
    Format.printf "total       : %8.2f ms@." (bd.Ukplat.Vmm.total_ns /. 1e6);
    List.iter
      (fun p ->
        Format.printf "  [%d] %-26s %a@." p.Ukboot.Boot.level p.Ukboot.Boot.phase
          Uksim.Units.pp_ns p.Ukboot.Boot.duration_ns)
      env.Vm.report.Ukboot.Boot.phases
  in
  Cmd.v
    (Cmd.info "boot" ~doc:"Boot a configured image on a VMM and report timings.")
    Term.(
      const run $ app_arg $ plat_arg $ alloc_arg $ net_arg $ fs_arg $ mem_arg $ no_dce $ no_lto
      $ vmm_arg)

(* --- syscalls ---------------------------------------------------------- *)

let syscalls_cmd =
  let target =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP" ~doc:"Application to analyze.")
  in
  let run target =
    match target with
    | None ->
        Printf.printf "Unikraft implements %d syscalls.\n"
          (List.length Uksyscall.Appdb.unikraft_supported);
        List.iter
          (fun c ->
            Printf.printf "%-18s %5.1f%% supported (%d required)\n" c.Uksyscall.Appdb.app
              (100.0 *. c.Uksyscall.Appdb.now) c.Uksyscall.Appdb.n_required)
          (Uksyscall.Appdb.coverage ())
    | Some app ->
        let required = Uksyscall.Appdb.required app in
        let module I = Set.Make (Int) in
        let supported = I.of_list Uksyscall.Appdb.unikraft_supported in
        Printf.printf "%s requires %d syscalls; missing:\n" app (List.length required);
        List.iter
          (fun s -> if not (I.mem s supported) then Printf.printf "  %s\n" (Uksyscall.Sysno.name s))
          required
  in
  Cmd.v
    (Cmd.info "syscalls" ~doc:"Syscall support analysis (paper Figs 5/7).")
    Term.(const run $ target)

(* --- disas: binary compatibility & rewriting demo ----------------------- *)

let disas_cmd =
  let rewrite_flag =
    Arg.(value & flag & info [ "rewrite" ] ~doc:"Apply the HermiTux-style binary-rewriting pass.")
  in
  let run do_rewrite =
    let module Bin = Uksyscall.Binary in
    let sample =
      [ Bin.Mov (0, 1); Bin.Syscall 39; Bin.Add (0, 2); Bin.Syscall 1; Bin.Cmp (0, 1);
        Bin.Syscall 57; Bin.Ret ]
    in
    let b = Bin.assemble sample in
    let b = if do_rewrite then Bin.rewrite b else b in
    let clock = Uksim.Clock.create () in
    let dbg = Ukdebug.Debug.create ~clock () in
    Ukdebug.Debug.Disasm.register dbg Ukdebug.Debug.Disasm.zydis_like;
    (match Bin.disassemble_with dbg b with
    | Ok lines -> List.iteri (fun i l -> Printf.printf "%4d: %s
" i l) lines
    | Error e -> Printf.eprintf "%s
" e);
    let shim = Uksyscall.Shim.create ~clock ~mode:Uksyscall.Shim.Native_link in
    Uksyscall.Appdb.install_supported shim;
    let stats = Bin.execute ~clock ~shim b in
    Printf.printf
      "executed %d instructions, %d syscalls (%d ENOSYS-stubbed), %d cycles%s
"
      stats.Bin.instructions stats.Bin.syscalls stats.Bin.enosys stats.Bin.cycles
      (if do_rewrite then " [rewritten: each syscall is a plain call]"
       else " [trap-and-translate: 84 cycles per syscall]")
  in
  Cmd.v
    (Cmd.info "disas" ~doc:"Disassemble and run a sample binary (binary compat / rewriting).")
    Term.(const run $ rewrite_flag)

let () =
  let info = Cmd.info "ukraft" ~doc:"Unikraft (EuroSys'21) reproduction toolkit." in
  exit
    (Cmd.eval (Cmd.group info [ menu_cmd; build_cmd; graph_cmd; boot_cmd; syscalls_cmd; disas_cmd ]))
