(* Helper for the abl-wheel ablation: a heap-based timer queue where
   cancellation marks entries dead and pop skips them. *)

let push h key live = Uksim.Heapq.push h key live

let drain h =
  let fired = ref 0 in
  let rec go () =
    match Uksim.Heapq.pop h with
    | Some (_, live) ->
        if live then incr fired;
        go ()
    | None -> ()
  in
  go ();
  !fired
