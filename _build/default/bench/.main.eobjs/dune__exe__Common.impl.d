bench/common.ml: Option Printf Sys Uknetdev Uknetstack Ukplat Uksched Uksim Unikraft
