bench/main.ml: Array Common Exp_ablation Exp_boot Exp_build Exp_io Exp_perf List Micro Printexc Printf Sys Unix
