bench/main.mli:
