bench/exp_perf.ml: Cfg Common List Option Printf Ukapps Ukos Uksim Uksyscall Vm Vmm
