bench/heapq_cancel.ml: Uksim
