bench/micro.ml: Analyze Bechamel Benchmark Bytes Hashtbl List Measure Printf Staged Test Time Toolkit Ukalloc Ukapps Ukbuild Uknetdev Uknetstack Ukring Uksim Uksyscall Uktime
