bench/exp_io.ml: A Array Bytes Cfg Common List Option Printf Result Ukalloc Ukapps Uknetdev Uksched Uksim Ukvfs Vm Vmm
