bench/exp_ablation.ml: Array Bytes Cfg Common Heapq_cancel List Option Result Ukalloc Ukblock Ukmpk Uknetdev Uksim Uksyscall Uktime Ukvfs Unix Vm Vmm
