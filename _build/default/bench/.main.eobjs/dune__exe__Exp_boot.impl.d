bench/exp_boot.ml: Cfg Common List Printf Ukalloc Uknetdev Ukos Uksim Vm Vmm
