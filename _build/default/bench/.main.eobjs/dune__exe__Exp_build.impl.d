bench/exp_build.ml: Char Common Fmt List Printf String Ukbuild Ukgraph Ukos Uksyscall
