type kind = Core_api | Library | Platform | App | Libc

type dep_use = { dep : string; fraction : float }

type cluster = {
  api : string;
  head_size : int;
  internals : (string * int) list;
}

type t = {
  name : string;
  kind : kind;
  deps : dep_use list;
  code_size : int;
  clusters : cluster list;
}

let seed_of_string s =
  (* FNV-1a, for deterministic per-library generation. *)
  let h = ref 0x1bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let define ~name ~kind ?(deps = []) ~code_size ?n_clusters () =
  if code_size <= 0 then invalid_arg "Microlib.define: code_size must be positive";
  let n_clusters =
    match n_clusters with
    | Some n when n > 0 -> n
    | Some _ -> invalid_arg "Microlib.define: n_clusters must be positive"
    | None -> max 4 (min 64 (code_size / 8192))
  in
  (* Keep every cluster at least 32 bytes so the size partition below
     cannot go negative. *)
  let n_clusters = max 1 (min n_clusters (code_size / 32)) in
  let rng = Uksim.Rng.create (seed_of_string name) in
  (* Random positive weights per cluster, normalized to code_size. *)
  let weights = Array.init n_clusters (fun _ -> 1 + Uksim.Rng.int rng 100) in
  let wsum = Array.fold_left ( + ) 0 weights in
  let remaining = ref code_size in
  let clusters =
    List.init n_clusters (fun i ->
        let size =
          if i = n_clusters - 1 then !remaining
          else begin
            let s = max 16 (code_size * weights.(i) / wsum) in
            let s = min s (!remaining - (16 * (n_clusters - 1 - i))) in
            max 16 s
          end
        in
        remaining := !remaining - size;
        let api = Printf.sprintf "%s__f%d" name i in
        let head_size = max 8 (size / 4) in
        let n_internal = 1 + Uksim.Rng.int rng 4 in
        let body = size - head_size in
        let internals =
          List.init n_internal (fun j ->
              let isz =
                if j = n_internal - 1 then body - (body / n_internal * (n_internal - 1))
                else body / n_internal
              in
              (Printf.sprintf "%s__f%d_i%d" name i j, max 0 isz))
        in
        { api; head_size; internals })
  in
  let deps =
    List.map
      (fun (dep, fraction) ->
        { dep; fraction = Float.min 1.0 (Float.max 0.01 fraction) })
      deps
  in
  { name; kind; deps; code_size; clusters }

let dep_names t = List.map (fun d -> d.dep) t.deps
let api_symbols t = List.map (fun c -> c.api) t.clusters
let cluster_size c = c.head_size + List.fold_left (fun acc (_, s) -> acc + s) 0 c.internals
let total_size t = List.fold_left (fun acc c -> acc + cluster_size c) 0 t.clusters

let used_apis ~caller ~callee =
  match List.find_opt (fun d -> String.equal d.dep callee.name) caller.deps with
  | None -> []
  | Some { fraction; _ } ->
      let apis = Array.of_list (api_symbols callee) in
      let n = Array.length apis in
      let keep = max 1 (int_of_float (ceil (fraction *. float_of_int n))) in
      let rng = Uksim.Rng.create (seed_of_string (caller.name ^ "->" ^ callee.name)) in
      Uksim.Rng.shuffle rng apis;
      Array.to_list (Array.sub apis 0 (min keep n))
