type libc = Musl | Newlib

type attempt = { libc : libc; compat_layer : bool }

type entry = {
  lib : string;
  musl_image_mb : float;
  newlib_image_mb : float;
  glibc_only_syms : string list;
  newlib_missing_syms : string list;
  glue_loc : int;
}

(* Symbols that the glibc compatibility layer provides (a series of musl
   _chk patches plus ~20 hand-written 64-bit file ops, §4). *)
let chk = [ "__printf_chk"; "__fprintf_chk"; "__memcpy_chk"; "__sprintf_chk" ]
let io64 = [ "pread64"; "pwrite64"; "lseek64"; "fopen64" ]
let gnu = [ "gnu_get_libc_version"; "__register_atfork"; "error" ]

(* Data encoding Table 2 of the paper: which archives reference
   glibc-specific symbols (musl "std" column) and which hit newlib's
   unimplemented surface. *)
let entries =
  [
    { lib = "lib-axtls"; musl_image_mb = 0.364; newlib_image_mb = 0.436;
      glibc_only_syms = [ "__fprintf_chk"; "pread64" ];
      newlib_missing_syms = [ "getaddrinfo" ]; glue_loc = 0 };
    { lib = "lib-bzip2"; musl_image_mb = 0.324; newlib_image_mb = 0.388;
      glibc_only_syms = [ "__printf_chk" ]; newlib_missing_syms = [ "fopen64" ];
      glue_loc = 0 };
    { lib = "lib-c-ares"; musl_image_mb = 0.328; newlib_image_mb = 0.424;
      glibc_only_syms = [ "gnu_get_libc_version" ];
      newlib_missing_syms = [ "getaddrinfo"; "if_nametoindex" ]; glue_loc = 0 };
    { lib = "lib-duktape"; musl_image_mb = 0.756; newlib_image_mb = 0.856;
      glibc_only_syms = []; newlib_missing_syms = [ "snprintf_l" ]; glue_loc = 7 };
    { lib = "lib-farmhash"; musl_image_mb = 0.256; newlib_image_mb = 0.340;
      glibc_only_syms = []; newlib_missing_syms = []; glue_loc = 0 };
    { lib = "lib-fft2d"; musl_image_mb = 0.364; newlib_image_mb = 0.440;
      glibc_only_syms = []; newlib_missing_syms = [ "sincos" ]; glue_loc = 0 };
    { lib = "lib-helloworld"; musl_image_mb = 0.248; newlib_image_mb = 0.332;
      glibc_only_syms = []; newlib_missing_syms = []; glue_loc = 0 };
    { lib = "lib-httpreply"; musl_image_mb = 0.252; newlib_image_mb = 0.372;
      glibc_only_syms = []; newlib_missing_syms = [ "getaddrinfo" ]; glue_loc = 0 };
    { lib = "lib-libucontext"; musl_image_mb = 0.248; newlib_image_mb = 0.332;
      glibc_only_syms = []; newlib_missing_syms = [ "makecontext" ]; glue_loc = 0 };
    { lib = "lib-libunwind"; musl_image_mb = 0.248; newlib_image_mb = 0.328;
      glibc_only_syms = []; newlib_missing_syms = []; glue_loc = 0 };
    { lib = "lib-lighttpd"; musl_image_mb = 0.676; newlib_image_mb = 0.788;
      glibc_only_syms = [ "pwrite64"; "__fprintf_chk" ];
      newlib_missing_syms = [ "epoll_create1"; "sendfile" ]; glue_loc = 6 };
    { lib = "lib-memcached"; musl_image_mb = 0.536; newlib_image_mb = 0.660;
      glibc_only_syms = [ "__register_atfork" ];
      newlib_missing_syms = [ "event_base_new"; "getaddrinfo" ]; glue_loc = 6 };
    { lib = "lib-micropython"; musl_image_mb = 0.648; newlib_image_mb = 0.708;
      glibc_only_syms = []; newlib_missing_syms = [ "nan"; "getrandom" ]; glue_loc = 7 };
    { lib = "lib-nginx"; musl_image_mb = 0.704; newlib_image_mb = 0.792;
      glibc_only_syms = [ "pread64"; "pwrite64"; "__sprintf_chk" ];
      newlib_missing_syms = [ "epoll_create"; "sendfile" ]; glue_loc = 5 };
    { lib = "lib-open62541"; musl_image_mb = 0.252; newlib_image_mb = 0.336;
      glibc_only_syms = []; newlib_missing_syms = []; glue_loc = 13 };
    { lib = "lib-openssl"; musl_image_mb = 2.9; newlib_image_mb = 3.0;
      glibc_only_syms = [ "__memcpy_chk"; "getrandom" ];
      newlib_missing_syms = [ "getentropy" ]; glue_loc = 0 };
    { lib = "lib-pcre"; musl_image_mb = 0.356; newlib_image_mb = 0.432;
      glibc_only_syms = []; newlib_missing_syms = [ "snprintf_l" ]; glue_loc = 0 };
    { lib = "lib-python3"; musl_image_mb = 3.1; newlib_image_mb = 3.2;
      glibc_only_syms = [ "__printf_chk"; "pread64"; "error" ];
      newlib_missing_syms = [ "dup3"; "openpty" ]; glue_loc = 26 };
    { lib = "lib-redis-client"; musl_image_mb = 0.660; newlib_image_mb = 0.764;
      glibc_only_syms = [ "__fprintf_chk" ]; newlib_missing_syms = [ "getaddrinfo" ];
      glue_loc = 29 };
    { lib = "lib-redis-server"; musl_image_mb = 1.3; newlib_image_mb = 1.4;
      glibc_only_syms = [ "__printf_chk"; "__register_atfork" ];
      newlib_missing_syms = [ "epoll_create"; "getrandom" ]; glue_loc = 32 };
    { lib = "lib-ruby"; musl_image_mb = 5.6; newlib_image_mb = 5.7;
      glibc_only_syms = [ "pread64"; "pwrite64"; "__register_atfork" ];
      newlib_missing_syms = [ "openpty"; "getaddrinfo" ]; glue_loc = 37 };
    { lib = "lib-sqlite"; musl_image_mb = 1.4; newlib_image_mb = 1.4;
      glibc_only_syms = [ "pread64"; "pwrite64" ];
      newlib_missing_syms = [ "fdatasync" ]; glue_loc = 5 };
    { lib = "lib-zlib"; musl_image_mb = 0.368; newlib_image_mb = 0.432;
      glibc_only_syms = [ "fopen64" ]; newlib_missing_syms = [ "fopen64" ]; glue_loc = 0 };
    { lib = "lib-zydis"; musl_image_mb = 0.688; newlib_image_mb = 0.756;
      glibc_only_syms = []; newlib_missing_syms = [ "snprintf_l" ]; glue_loc = 0 };
  ]

let compat_provides = chk @ io64 @ gnu @ [ "getrandom"; "getentropy" ]

(* What each attempt can resolve beyond the common libc surface. The
   compat layer backfills both glibc-isms (musl) and newlib's gaps — for
   newlib these are the hand-written stubs of §4. *)
let link_check e { libc; compat_layer } =
  let required =
    match libc with
    | Musl -> e.glibc_only_syms
    | Newlib -> e.glibc_only_syms @ e.newlib_missing_syms
  in
  let unresolved =
    if compat_layer then
      (* The compat layer provides the recorded glibc-isms; newlib-specific
         gaps are covered by the hand-implemented stubs. *)
      List.filter (fun s -> not (List.mem s (compat_provides @ e.newlib_missing_syms))) required
    else required
  in
  match unresolved with [] -> Ok () | l -> Error l

let image_mb e = function Musl -> e.musl_image_mb | Newlib -> e.newlib_image_mb

type row = {
  name : string;
  musl_mb : float;
  musl_std : bool;
  musl_compat : bool;
  newlib_mb : float;
  newlib_std : bool;
  newlib_compat : bool;
  glue : int;
}

let ok = function Ok () -> true | Error _ -> false

let table2 () =
  List.map
    (fun e ->
      {
        name = e.lib;
        musl_mb = e.musl_image_mb;
        musl_std = ok (link_check e { libc = Musl; compat_layer = false });
        musl_compat = ok (link_check e { libc = Musl; compat_layer = true });
        newlib_mb = e.newlib_image_mb;
        newlib_std = ok (link_check e { libc = Newlib; compat_layer = false });
        newlib_compat = ok (link_check e { libc = Newlib; compat_layer = true });
        glue = e.glue_loc;
      })
    entries

module Survey = struct
  type record = {
    quarter : string;
    library : string;
    lib_hours : float;
    deps_hours : float;
    os_hours : float;
    build_hours : float;
  }

  (* Developer-survey dataset (Fig 6): as the common code base matured from
     2019Q1 to 2020Q2, dependency and OS-primitive work collapsed while
     per-library effort stayed roughly flat. *)
  let records =
    [
      { quarter = "2019Q1"; library = "newlib"; lib_hours = 40.; deps_hours = 60.; os_hours = 80.; build_hours = 30. };
      { quarter = "2019Q1"; library = "lwip"; lib_hours = 60.; deps_hours = 35.; os_hours = 70.; build_hours = 24. };
      { quarter = "2019Q1"; library = "python3"; lib_hours = 75.; deps_hours = 80.; os_hours = 45.; build_hours = 18. };
      { quarter = "2019Q1"; library = "zlib"; lib_hours = 8.; deps_hours = 16.; os_hours = 24.; build_hours = 10. };
      { quarter = "2019Q2"; library = "openssl"; lib_hours = 35.; deps_hours = 30.; os_hours = 28.; build_hours = 12. };
      { quarter = "2019Q2"; library = "sqlite"; lib_hours = 24.; deps_hours = 18.; os_hours = 22.; build_hours = 8. };
      { quarter = "2019Q2"; library = "micropython"; lib_hours = 30.; deps_hours = 22.; os_hours = 18.; build_hours = 6. };
      { quarter = "2019Q2"; library = "pcre"; lib_hours = 8.; deps_hours = 10.; os_hours = 8.; build_hours = 4. };
      { quarter = "2019Q3"; library = "nginx"; lib_hours = 30.; deps_hours = 12.; os_hours = 14.; build_hours = 5. };
      { quarter = "2019Q3"; library = "redis"; lib_hours = 32.; deps_hours = 14.; os_hours = 12.; build_hours = 4. };
      { quarter = "2019Q3"; library = "memcached"; lib_hours = 20.; deps_hours = 10.; os_hours = 8.; build_hours = 4. };
      { quarter = "2019Q3"; library = "duktape"; lib_hours = 10.; deps_hours = 4.; os_hours = 6.; build_hours = 2. };
      { quarter = "2019Q4"; library = "ruby"; lib_hours = 36.; deps_hours = 10.; os_hours = 8.; build_hours = 3. };
      { quarter = "2019Q4"; library = "lighttpd"; lib_hours = 14.; deps_hours = 6.; os_hours = 5.; build_hours = 2. };
      { quarter = "2019Q4"; library = "libunwind"; lib_hours = 6.; deps_hours = 3.; os_hours = 4.; build_hours = 2. };
      { quarter = "2019Q4"; library = "farmhash"; lib_hours = 4.; deps_hours = 2.; os_hours = 2.; build_hours = 1. };
      { quarter = "2020Q1"; library = "tflite"; lib_hours = 22.; deps_hours = 6.; os_hours = 4.; build_hours = 2. };
      { quarter = "2020Q1"; library = "wamr"; lib_hours = 12.; deps_hours = 3.; os_hours = 3.; build_hours = 1. };
      { quarter = "2020Q1"; library = "c-ares"; lib_hours = 6.; deps_hours = 2.; os_hours = 2.; build_hours = 1. };
      { quarter = "2020Q1"; library = "bzip2"; lib_hours = 3.; deps_hours = 1.; os_hours = 1.; build_hours = 1. };
      { quarter = "2020Q2"; library = "open62541"; lib_hours = 10.; deps_hours = 2.; os_hours = 2.; build_hours = 1. };
      { quarter = "2020Q2"; library = "zydis"; lib_hours = 5.; deps_hours = 1.; os_hours = 1.; build_hours = 0.5 };
      { quarter = "2020Q2"; library = "axtls"; lib_hours = 6.; deps_hours = 2.; os_hours = 1.; build_hours = 0.5 };
      { quarter = "2020Q2"; library = "fft2d"; lib_hours = 3.; deps_hours = 1.; os_hours = 0.5; build_hours = 0.5 };
    ]

  let quarters = [ "2019Q1"; "2019Q2"; "2019Q3"; "2019Q4"; "2020Q1"; "2020Q2" ]

  let by_quarter () =
    List.map
      (fun q ->
        let rs = List.filter (fun r -> String.equal r.quarter q) records in
        let n = float_of_int (List.length rs) in
        let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 rs in
        ( q,
          ( sum (fun r -> r.lib_hours) /. n,
            sum (fun r -> r.deps_hours) /. n,
            sum (fun r -> r.os_hours) /. n,
            sum (fun r -> r.build_hours) /. n ) ))
      quarters
end
