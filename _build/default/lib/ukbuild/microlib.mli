(** Micro-library descriptions for the build/link model.

    A micro-library carries a synthetic but structured symbol inventory:
    symbols are grouped into {e clusters}, each headed by one exported API
    symbol whose internals are reachable only from that head — the
    granularity real linkers get from [-ffunction-sections] +
    [--gc-sections]. Dependencies record which {e fraction} of the
    dependency's API surface the library actually calls; dead-code
    elimination keeps only the referenced clusters (a deterministic subset
    seeded by the caller/callee names).

    Inventories are generated deterministically from the library name, so
    image sizes are stable across runs. *)

type kind = Core_api | Library | Platform | App | Libc

type dep_use = {
  dep : string;
  fraction : float;  (** share of the dependency's API surface used, (0,1] *)
}

type cluster = {
  api : string;  (** exported head symbol, "libname__fN" *)
  head_size : int;
  internals : (string * int) list;  (** internal symbols and sizes *)
}

type t = {
  name : string;
  kind : kind;
  deps : dep_use list;
  code_size : int;  (** total text bytes before any elimination *)
  clusters : cluster list;
}

val define :
  name:string ->
  kind:kind ->
  ?deps:(string * float) list ->
  code_size:int ->
  ?n_clusters:int ->
  unit ->
  t
(** Synthesize the inventory. [n_clusters] defaults to a size-dependent
    value (at least 4). Fractions are clamped to (0, 1]. *)

val dep_names : t -> string list
val api_symbols : t -> string list
val cluster_size : cluster -> int
val total_size : t -> int

val used_apis : caller:t -> callee:t -> string list
(** The deterministic subset of [callee]'s API symbols referenced by
    [caller] ([] when there is no dependency edge). *)
