type flags = { dce : bool; lto : bool }

let default_flags = { dce = true; lto = true }

(* Calibration: cross-module inlining and constant propagation shrink the
   text Unikraft keeps by ~12% (Fig 8's LTO deltas); rodata+data adds a
   quarter of text; ELF headers, symbol table and build metadata add a
   fixed ~12 KB plus a little per library. *)
let lto_factor = 0.88
let rodata_ratio = 0.25
let elf_overhead = 6 * 1024
let per_lib_overhead = 384

type image = {
  image_name : string;
  platform : string;
  libs : string list;
  kept_apis : (string * string list) list;
  text_bytes : int;
  rodata_bytes : int;
  image_bytes : int;
  dep_graph : Ukgraph.Digraph.t;
}

module Smap = Map.Make (String)
module Sset = Set.Make (String)

let link registry ~name ~platform ~roots ?(flags = default_flags) () =
  let roots_all = platform :: roots in
  match Registry.closure registry roots_all with
  | Error missing -> Error (Printf.sprintf "unresolved dependency: %s" missing)
  | Ok libs ->
      let lib_of = Registry.find_exn registry in
      let root_set = Sset.of_list roots_all in
      (* kept.(lib) = set of surviving cluster APIs *)
      let kept = ref Smap.empty in
      let kept_of n = match Smap.find_opt n !kept with Some s -> s | None -> Sset.empty in
      let keep_all n =
        kept := Smap.add n (Sset.of_list (Microlib.api_symbols (lib_of n))) !kept
      in
      if not flags.dce then List.iter keep_all libs
      else begin
        (* Roots anchor the reachability fixpoint. *)
        List.iter keep_all (Sset.elements root_set);
        let changed = ref true in
        while !changed do
          changed := false;
          List.iter
            (fun a ->
              if not (Sset.is_empty (kept_of a)) then
                let ma = lib_of a in
                List.iter
                  (fun b ->
                    if List.mem b libs then begin
                      let mb = lib_of b in
                      let wanted = Sset.of_list (Microlib.used_apis ~caller:ma ~callee:mb) in
                      let cur = kept_of b in
                      let next = Sset.union cur wanted in
                      if not (Sset.equal cur next) then begin
                        kept := Smap.add b next !kept;
                        changed := true
                      end
                    end)
                  (Microlib.dep_names ma))
            libs
        done
      end;
      let text =
        List.fold_left
          (fun acc libname ->
            let m = lib_of libname in
            let apis = kept_of libname in
            List.fold_left
              (fun acc c ->
                if Sset.mem c.Microlib.api apis then acc + Microlib.cluster_size c else acc)
              acc m.Microlib.clusters)
          0 libs
      in
      let text = if flags.lto then int_of_float (float_of_int text *. lto_factor) else text in
      let rodata = int_of_float (float_of_int text *. rodata_ratio) in
      let image_bytes = text + rodata + elf_overhead + (List.length libs * per_lib_overhead) in
      let kept_apis = List.map (fun l -> (l, Sset.elements (kept_of l))) libs in
      Ok
        {
          image_name = name;
          platform;
          libs;
          kept_apis;
          text_bytes = text;
          rodata_bytes = rodata;
          image_bytes;
          dep_graph = Registry.dep_graph registry libs;
        }

let pp_image ppf i =
  Fmt.pf ppf "%s [%s]: %a (text %a, rodata %a, %d libs)" i.image_name i.platform
    Uksim.Units.pp_bytes i.image_bytes Uksim.Units.pp_bytes i.text_bytes Uksim.Units.pp_bytes
    i.rodata_bytes (List.length i.libs)
