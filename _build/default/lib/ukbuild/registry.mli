(** Registry of defined micro-libraries (the build system's lib/ tree). *)

type t

val create : unit -> t
val add : t -> Microlib.t -> unit
(** Raises [Invalid_argument] on duplicates. *)

val add_all : t -> Microlib.t list -> unit
val find : t -> string -> Microlib.t option
val find_exn : t -> string -> Microlib.t
val mem : t -> string -> bool
val all : t -> Microlib.t list

val closure : t -> string list -> (string list, string) result
(** Transitive dependency closure of the given roots (roots included),
    sorted; [Error missing_lib] if a dependency is not registered. *)

val dep_graph : t -> string list -> Ukgraph.Digraph.t
(** Library-level dependency graph restricted to the given set. *)
