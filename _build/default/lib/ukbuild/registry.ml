type t = (string, Microlib.t) Hashtbl.t

let create () : t = Hashtbl.create 64

let add t (m : Microlib.t) =
  if Hashtbl.mem t m.name then
    invalid_arg (Printf.sprintf "Registry.add: duplicate micro-library %s" m.name);
  Hashtbl.replace t m.name m

let add_all t = List.iter (add t)
let find t name = Hashtbl.find_opt t name

let find_exn t name =
  match find t name with
  | Some m -> m
  | None -> raise Not_found

let mem t name = Hashtbl.mem t name
let all t = Hashtbl.fold (fun _ m acc -> m :: acc) t [] |> List.sort compare

let closure t roots =
  let module S = Set.Make (String) in
  let exception Missing of string in
  let rec visit acc name =
    if S.mem name acc then acc
    else
      match find t name with
      | None -> raise (Missing name)
      | Some m -> List.fold_left visit (S.add name acc) (Microlib.dep_names m)
  in
  match List.fold_left visit S.empty roots with
  | s -> Ok (S.elements s)
  | exception Missing name -> Error name

let dep_graph t names =
  let module S = Set.Make (String) in
  let set = S.of_list names in
  let g = Ukgraph.Digraph.create () in
  List.iter
    (fun name ->
      match find t name with
      | None -> ()
      | Some m ->
          Ukgraph.Digraph.add_node g name;
          List.iter
            (fun dep ->
              if S.mem dep set then
                match find t dep with
                | Some callee ->
                    let w = List.length (Microlib.used_apis ~caller:m ~callee) in
                    Ukgraph.Digraph.add_edge ~weight:(max 1 w) g name dep
                | None -> ())
            (Microlib.dep_names m))
    names;
  g
