lib/ukbuild/catalog.mli: Registry
