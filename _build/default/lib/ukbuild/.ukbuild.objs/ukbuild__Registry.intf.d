lib/ukbuild/registry.mli: Microlib Ukgraph
