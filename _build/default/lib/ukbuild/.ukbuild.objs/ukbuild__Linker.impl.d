lib/ukbuild/linker.ml: Fmt List Map Microlib Printf Registry Set String Ukgraph Uksim
