lib/ukbuild/porting.mli:
