lib/ukbuild/registry.ml: Hashtbl List Microlib Printf Set String Ukgraph
