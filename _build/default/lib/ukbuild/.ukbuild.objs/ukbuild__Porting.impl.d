lib/ukbuild/porting.ml: List String
