lib/ukbuild/microlib.mli:
