lib/ukbuild/catalog.ml: List Microlib Printf Registry
