lib/ukbuild/linker.mli: Format Registry Ukgraph
