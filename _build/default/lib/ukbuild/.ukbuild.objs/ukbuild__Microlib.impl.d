lib/ukbuild/microlib.ml: Array Char Float List Printf String Uksim
