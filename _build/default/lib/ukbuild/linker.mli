(** The final link step: compose micro-libraries into a unikernel image,
    with optional dead-code elimination and link-time optimization
    (paper §2 "Static linking", Figs 8 and 9). *)

type flags = { dce : bool; lto : bool }

val default_flags : flags
(** Both on, Unikraft's default. *)

type image = {
  image_name : string;
  platform : string;
  libs : string list;  (** included micro-libraries, sorted *)
  kept_apis : (string * string list) list;  (** per lib, surviving clusters *)
  text_bytes : int;
  rodata_bytes : int;
  image_bytes : int;  (** on-disk size *)
  dep_graph : Ukgraph.Digraph.t;
}

val link :
  Registry.t ->
  name:string ->
  platform:string ->
  roots:string list ->
  ?flags:flags ->
  unit ->
  (image, string) result
(** [roots] are the application libraries (and any explicitly selected
    backends); the platform library is added automatically. All root
    clusters are entry points. [Error msg] when a dependency is missing.

    DCE keeps, per non-root library, only the clusters whose API some kept
    cluster references (computed to a fixpoint over the dependency edges).
    LTO scales surviving text by the cross-module inlining factor. *)

val pp_image : Format.formatter -> image -> unit
