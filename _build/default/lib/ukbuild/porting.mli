(** Automated-porting study (paper §4, Table 2) and the developer
    porting-effort survey (Fig 6).

    Table 2's experiment takes externally-built static archives and links
    them against Unikraft with musl or newlib, with and without the glibc
    compatibility layer. We re-run that as a symbol-resolution check: each
    ported library records the glibc-only symbols it references and the
    symbols newlib does not provide; a link attempt succeeds iff every
    requirement is satisfiable from the selected libc (+ compat layer). *)

type libc = Musl | Newlib

type attempt = { libc : libc; compat_layer : bool }

type entry = {
  lib : string;
  musl_image_mb : float;  (** image size when linked against musl *)
  newlib_image_mb : float;
  glibc_only_syms : string list;  (** referenced symbols only glibc has *)
  newlib_missing_syms : string list;  (** additional gaps when on newlib *)
  glue_loc : int;  (** hand-written glue code, last column of Table 2 *)
}

val entries : entry list
(** The 24 libraries of Table 2. *)

val link_check : entry -> attempt -> (unit, string list) result
(** [Error unresolved] lists the symbols the attempt cannot resolve. *)

val image_mb : entry -> libc -> float

type row = {
  name : string;
  musl_mb : float;
  musl_std : bool;
  musl_compat : bool;
  newlib_mb : float;
  newlib_std : bool;
  newlib_compat : bool;
  glue : int;
}

val table2 : unit -> row list
(** Run all four attempts for every entry — the full Table 2. *)

(** {1 Fig 6: developer survey} *)

module Survey : sig
  type record = {
    quarter : string;  (** "2019Q1" .. "2020Q2" *)
    library : string;
    lib_hours : float;  (** porting the library/application itself *)
    deps_hours : float;  (** porting its dependencies *)
    os_hours : float;  (** implementing missing OS primitives *)
    build_hours : float;  (** extending the build system *)
  }

  val records : record list

  val by_quarter : unit -> (string * (float * float * float * float)) list
  (** Quarter -> mean (lib, deps, os, build) hours; chronological. *)
end
