lib/uknetstack/tcp.ml: Addr Buffer Bytes List Pkt Queue String Uksched Uksim
