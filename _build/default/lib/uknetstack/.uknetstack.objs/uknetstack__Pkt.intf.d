lib/uknetstack/pkt.mli: Addr Uknetdev
