lib/uknetstack/stack.mli: Addr Tcp Ukalloc Uknetdev Uksched Uksim
