lib/uknetstack/tcp.mli: Addr Pkt Uksched
