lib/uknetstack/wire_fmt.ml: Bytes Char List
