lib/uknetstack/frag.ml: Addr Bytes Hashtbl List Uksim
