lib/uknetstack/frag.mli: Addr Uksim
