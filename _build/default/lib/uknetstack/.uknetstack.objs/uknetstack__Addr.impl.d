lib/uknetstack/addr.ml: Fmt Int List Printf String
