lib/uknetstack/addr.mli: Format
