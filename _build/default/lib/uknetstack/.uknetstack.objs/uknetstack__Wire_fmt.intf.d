lib/uknetstack/wire_fmt.mli:
