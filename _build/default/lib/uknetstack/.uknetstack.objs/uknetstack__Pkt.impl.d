lib/uknetstack/pkt.ml: Addr Printf Uknetdev Wire_fmt
