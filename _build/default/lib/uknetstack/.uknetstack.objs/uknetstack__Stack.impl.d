lib/uknetstack/stack.ml: Addr Bytes Frag Hashtbl List Pkt Queue Tcp Uknetdev Uksched Uksim
