(** TCP engine: connection state machines, retransmission, flow control.

    Transport-only logic, decoupled from IP/device concerns through an
    {!io} record the stack supplies (segment transmit, timer arming, thread
    wakeups). Implements the standard state diagram (LISTEN through
    TIME_WAIT), cumulative ACKs, receiver flow control, go-back-N
    retransmission with exponential backoff, and fast retransmit on three
    duplicate ACKs. Out-of-order segments are dropped and recovered by
    retransmission (lwIP-without-SACK behaviour); congestion control is
    omitted — the paper's evaluation runs on an uncongested direct link. *)

type state =
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

val state_to_string : state -> string

type conn

type io = {
  now_cycles : unit -> int;
  charge : int -> unit;  (** burn guest cycles *)
  tx_segment : conn -> Pkt.Tcp.t -> bytes -> unit;
      (** hand a fully-specified segment (header template + payload) to the
          IP layer; ports are already filled in *)
  set_timer : conn -> delay_cycles:int -> unit;
      (** arm (or re-arm) the connection's retransmission timer; the stack
          must call {!on_timer} when it fires *)
  wake : Uksched.Sched.tid -> unit;
  notify_accept : conn -> unit;  (** a passive open reached ESTABLISHED *)
}

val mss : int
val default_window : int

(** {1 Connection lifecycle} *)

val create_listen : io -> local:Addr.Ipv4.t * int -> conn
(** A listening "template" connection; incoming SYNs clone it. *)

val create_active :
  io -> local:Addr.Ipv4.t * int -> remote:Addr.Ipv4.t * int -> iss:int -> conn
(** Active open: allocates the connection and transmits the SYN. *)

val derive_passive : conn -> remote:Addr.Ipv4.t * int -> iss:int -> peer_seq:int -> conn
(** Child connection for a SYN (with sequence number [peer_seq]) arriving
    at a listener: moves to SYN_RCVD and answers SYN+ACK. *)

val state : conn -> state
val local_addr : conn -> Addr.Ipv4.t * int
val remote_addr : conn -> Addr.Ipv4.t * int

(** {1 Input path} *)

val on_segment : conn -> Pkt.Tcp.t -> bytes -> unit
(** Process one inbound segment (header already validated/checksummed). *)

val on_timer : conn -> unit
(** Retransmission / TIME_WAIT timer callback. *)

(** {1 Application side} *)

val send : conn -> bytes -> int
(** Queue application data; returns bytes accepted (bounded by the send
    buffer). Transmits immediately as far as the peer's window allows. *)

val send_buffer_space : conn -> int

val recv : conn -> max:int -> bytes option
(** Dequeue up to [max] bytes of in-order data; [None] when the queue is
    empty (check {!recv_eof} to distinguish would-block from EOF). Also
    sends a window update if consuming reopened a closed receive
    window. *)

val recv_available : conn -> int
val recv_eof : conn -> bool
(** Peer FIN received and queue drained. *)

val close : conn -> unit
(** Send FIN (half-close of our side). *)

val abort : conn -> unit
(** RST out, connection to CLOSED. *)

(** {1 Blocking-support hooks (used by the stack's socket layer)} *)

val set_recv_waiter : conn -> Uksched.Sched.tid option -> unit
val set_send_waiter : conn -> Uksched.Sched.tid option -> unit
val set_connect_waiter : conn -> Uksched.Sched.tid option -> unit

val stats_retransmits : conn -> int
val stats_fast_retransmits : conn -> int
