(** Protocol header codecs: Ethernet II, ARP, IPv4, ICMP echo, UDP, TCP.

    Encoders prepend headers into a {!Uknetdev.Netbuf.t}'s headroom;
    decoders parse and [pull] them off. All multi-byte fields are
    big-endian; IPv4/UDP/TCP checksums are computed and verified for real
    (RFC 1071, with pseudo-headers for the transport protocols). *)

module Eth : sig
  type proto = Ipv4 | Arp | Unknown of int

  type t = { dst : Addr.Mac.t; src : Addr.Mac.t; proto : proto }

  val size : int
  val encode : t -> Uknetdev.Netbuf.t -> unit
  val decode : Uknetdev.Netbuf.t -> (t, string) result
end

module Arp : sig
  type op = Request | Reply

  type t = {
    op : op;
    sha : Addr.Mac.t;  (** sender hardware address *)
    spa : Addr.Ipv4.t;
    tha : Addr.Mac.t;
    tpa : Addr.Ipv4.t;
  }

  val size : int
  val encode : t -> Uknetdev.Netbuf.t -> unit
  val decode : Uknetdev.Netbuf.t -> (t, string) result
end

module Ipv4 : sig
  type proto = Icmp | Tcp | Udp | Unknown of int

  type t = {
    src : Addr.Ipv4.t;
    dst : Addr.Ipv4.t;
    proto : proto;
    ttl : int;
    payload_len : int;  (** transport payload bytes following the header *)
    id : int;  (** identification, shared by fragments of one datagram *)
    more_frags : bool;
    frag_offset : int;  (** payload offset in bytes (multiple of 8) *)
  }

  val header : src:Addr.Ipv4.t -> dst:Addr.Ipv4.t -> proto:proto -> payload_len:int -> t
  (** Unfragmented header with ttl 64 and id 0. *)

  val is_fragment : t -> bool

  val size : int
  (** 20 (no options). *)

  val encode : t -> Uknetdev.Netbuf.t -> unit
  (** Prepends the header over the current payload (which must already be
      [payload_len] bytes) and fills in the checksum. *)

  val decode : Uknetdev.Netbuf.t -> (t, string) result
  (** Verifies the checksum; trims link-layer padding beyond total
      length. *)

  val proto_number : proto -> int
end

module Icmp : sig
  type t = { echo_reply : bool; ident : int; seq : int }

  val size : int
  val encode : t -> Uknetdev.Netbuf.t -> unit
  val decode : Uknetdev.Netbuf.t -> (t, string) result
end

module Udp : sig
  type t = { src_port : int; dst_port : int }

  val size : int

  val encode : t -> src:Addr.Ipv4.t -> dst:Addr.Ipv4.t -> Uknetdev.Netbuf.t -> unit
  (** Prepends header over the datagram payload; checksum includes the
      pseudo-header. *)

  val decode : src:Addr.Ipv4.t -> dst:Addr.Ipv4.t -> Uknetdev.Netbuf.t -> (t, string) result
end

module Tcp : sig
  type t = {
    src_port : int;
    dst_port : int;
    seq : int;  (** 32-bit sequence number *)
    ack : int;
    syn : bool;
    ack_flag : bool;
    fin : bool;
    rst : bool;
    psh : bool;
    window : int;
  }

  val size : int
  (** 20 (we carry MSS implicitly; no options on the wire). *)

  val encode : t -> src:Addr.Ipv4.t -> dst:Addr.Ipv4.t -> Uknetdev.Netbuf.t -> unit
  val decode : src:Addr.Ipv4.t -> dst:Addr.Ipv4.t -> Uknetdev.Netbuf.t -> (t, string) result
end
