(** Byte-level serialization helpers (big-endian, as on the wire) and the
    Internet checksum. *)

val get_u8 : bytes -> int -> int
val get_u16 : bytes -> int -> int
val get_u32 : bytes -> int -> int
val set_u8 : bytes -> int -> int -> unit
val set_u16 : bytes -> int -> int -> unit
val set_u32 : bytes -> int -> int -> unit

val checksum : ?initial:int -> bytes -> off:int -> len:int -> int
(** RFC 1071 one's-complement sum, finalized (complemented, 16-bit).
    [initial] is an un-complemented partial sum (e.g. a pseudo-header). *)

val partial_sum : ?initial:int -> bytes -> off:int -> len:int -> int
(** Un-finalized running sum, for pseudo-header composition. *)

val sum_words : int list -> int
(** Partial sum over 16-bit words given as ints. *)
