module Nb = Uknetdev.Netbuf
module W = Wire_fmt

let set_mac b off mac =
  let m = Addr.Mac.to_int mac in
  W.set_u16 b off (m lsr 32);
  W.set_u32 b (off + 2) (m land 0xffffffff)

let get_mac b off = Addr.Mac.of_int ((W.get_u16 b off lsl 32) lor W.get_u32 b (off + 2))

module Eth = struct
  type proto = Ipv4 | Arp | Unknown of int

  type t = { dst : Addr.Mac.t; src : Addr.Mac.t; proto : proto }

  let size = 14
  let ethertype = function Ipv4 -> 0x0800 | Arp -> 0x0806 | Unknown v -> v

  let proto_of = function 0x0800 -> Ipv4 | 0x0806 -> Arp | v -> Unknown v

  let encode t nb =
    Nb.push nb size;
    let b = Nb.data nb and o = Nb.offset nb in
    set_mac b o t.dst;
    set_mac b (o + 6) t.src;
    W.set_u16 b (o + 12) (ethertype t.proto)

  let decode nb =
    if Nb.len nb < size then Error "eth: truncated frame"
    else begin
      let b = Nb.data nb and o = Nb.offset nb in
      let t =
        { dst = get_mac b o; src = get_mac b (o + 6); proto = proto_of (W.get_u16 b (o + 12)) }
      in
      Nb.pull nb size;
      Ok t
    end
end

module Arp = struct
  type op = Request | Reply

  type t = {
    op : op;
    sha : Addr.Mac.t;
    spa : Addr.Ipv4.t;
    tha : Addr.Mac.t;
    tpa : Addr.Ipv4.t;
  }

  let size = 28

  let encode t nb =
    Nb.set_len nb 0;
    Nb.push nb size;
    let b = Nb.data nb and o = Nb.offset nb in
    W.set_u16 b o 1 (* htype: ethernet *);
    W.set_u16 b (o + 2) 0x0800 (* ptype: ipv4 *);
    W.set_u8 b (o + 4) 6;
    W.set_u8 b (o + 5) 4;
    W.set_u16 b (o + 6) (match t.op with Request -> 1 | Reply -> 2);
    set_mac b (o + 8) t.sha;
    W.set_u32 b (o + 14) (Addr.Ipv4.to_int t.spa);
    set_mac b (o + 18) t.tha;
    W.set_u32 b (o + 24) (Addr.Ipv4.to_int t.tpa)

  let decode nb =
    if Nb.len nb < size then Error "arp: truncated packet"
    else begin
      let b = Nb.data nb and o = Nb.offset nb in
      if W.get_u16 b o <> 1 || W.get_u16 b (o + 2) <> 0x0800 then Error "arp: not ethernet/ipv4"
      else
        match W.get_u16 b (o + 6) with
        | (1 | 2) as opn ->
            let t =
              {
                op = (if opn = 1 then Request else Reply);
                sha = get_mac b (o + 8);
                spa = Addr.Ipv4.of_int (W.get_u32 b (o + 14));
                tha = get_mac b (o + 18);
                tpa = Addr.Ipv4.of_int (W.get_u32 b (o + 24));
              }
            in
            Nb.pull nb size;
            Ok t
        | n -> Error (Printf.sprintf "arp: unknown op %d" n)
    end
end

module Ipv4 = struct
  type proto = Icmp | Tcp | Udp | Unknown of int

  type t = {
    src : Addr.Ipv4.t;
    dst : Addr.Ipv4.t;
    proto : proto;
    ttl : int;
    payload_len : int;
    id : int;
    more_frags : bool;
    frag_offset : int;
  }

  let header ~src ~dst ~proto ~payload_len =
    { src; dst; proto; ttl = 64; payload_len; id = 0; more_frags = false; frag_offset = 0 }

  let is_fragment t = t.more_frags || t.frag_offset > 0

  let size = 20
  let proto_number = function Icmp -> 1 | Tcp -> 6 | Udp -> 17 | Unknown v -> v
  let proto_of = function 1 -> Icmp | 6 -> Tcp | 17 -> Udp | v -> Unknown v

  let encode t nb =
    Nb.push nb size;
    let b = Nb.data nb and o = Nb.offset nb in
    W.set_u8 b o 0x45 (* v4, ihl 5 *);
    W.set_u8 b (o + 1) 0 (* dscp *);
    W.set_u16 b (o + 2) (size + t.payload_len);
    W.set_u16 b (o + 4) (t.id land 0xffff);
    if t.frag_offset land 7 <> 0 then invalid_arg "Ipv4.encode: offset not 8-byte aligned";
    W.set_u16 b (o + 6) ((if t.more_frags then 0x2000 else 0) lor (t.frag_offset / 8));
    W.set_u8 b (o + 8) t.ttl;
    W.set_u8 b (o + 9) (proto_number t.proto);
    W.set_u16 b (o + 10) 0;
    W.set_u32 b (o + 12) (Addr.Ipv4.to_int t.src);
    W.set_u32 b (o + 16) (Addr.Ipv4.to_int t.dst);
    W.set_u16 b (o + 10) (W.checksum b ~off:o ~len:size)

  let decode nb =
    if Nb.len nb < size then Error "ipv4: truncated header"
    else begin
      let b = Nb.data nb and o = Nb.offset nb in
      let vihl = W.get_u8 b o in
      if vihl <> 0x45 then Error "ipv4: not v4/ihl5"
      else if W.checksum b ~off:o ~len:size <> 0 then Error "ipv4: bad header checksum"
      else begin
        let total = W.get_u16 b (o + 2) in
        if total < size || total > Nb.len nb then Error "ipv4: bad total length"
        else begin
          let flags_frag = W.get_u16 b (o + 6) in
          let t =
            {
              src = Addr.Ipv4.of_int (W.get_u32 b (o + 12));
              dst = Addr.Ipv4.of_int (W.get_u32 b (o + 16));
              proto = proto_of (W.get_u8 b (o + 9));
              ttl = W.get_u8 b (o + 8);
              payload_len = total - size;
              id = W.get_u16 b (o + 4);
              more_frags = flags_frag land 0x2000 <> 0;
              frag_offset = (flags_frag land 0x1fff) * 8;
            }
          in
          (* Trim ethernet padding, then strip the header. *)
          Nb.set_len nb total;
          Nb.pull nb size;
          Ok t
        end
      end
    end
end

module Icmp = struct
  type t = { echo_reply : bool; ident : int; seq : int }

  let size = 8

  let encode t nb =
    Nb.push nb size;
    let b = Nb.data nb and o = Nb.offset nb in
    W.set_u8 b o (if t.echo_reply then 0 else 8);
    W.set_u8 b (o + 1) 0;
    W.set_u16 b (o + 2) 0;
    W.set_u16 b (o + 4) t.ident;
    W.set_u16 b (o + 6) t.seq;
    W.set_u16 b (o + 2) (W.checksum b ~off:o ~len:(Nb.len nb))

  let decode nb =
    if Nb.len nb < size then Error "icmp: truncated"
    else begin
      let b = Nb.data nb and o = Nb.offset nb in
      if W.checksum b ~off:o ~len:(Nb.len nb) <> 0 then Error "icmp: bad checksum"
      else
        match W.get_u8 b o with
        | (0 | 8) as ty ->
            let t =
              { echo_reply = ty = 0; ident = W.get_u16 b (o + 4); seq = W.get_u16 b (o + 6) }
            in
            Nb.pull nb size;
            Ok t
        | ty -> Error (Printf.sprintf "icmp: unsupported type %d" ty)
    end
end

let pseudo_sum ~src ~dst ~proto ~len =
  let s = Addr.Ipv4.to_int src and d = Addr.Ipv4.to_int dst in
  W.sum_words [ s lsr 16; s land 0xffff; d lsr 16; d land 0xffff; proto; len ]

module Udp = struct
  type t = { src_port : int; dst_port : int }

  let size = 8

  let encode t ~src ~dst nb =
    Nb.push nb size;
    let b = Nb.data nb and o = Nb.offset nb in
    let len = Nb.len nb in
    W.set_u16 b o t.src_port;
    W.set_u16 b (o + 2) t.dst_port;
    W.set_u16 b (o + 4) len;
    W.set_u16 b (o + 6) 0;
    let ph = pseudo_sum ~src ~dst ~proto:17 ~len in
    let csum = W.checksum ~initial:ph b ~off:o ~len in
    W.set_u16 b (o + 6) (if csum = 0 then 0xffff else csum)

  let decode ~src ~dst nb =
    if Nb.len nb < size then Error "udp: truncated"
    else begin
      let b = Nb.data nb and o = Nb.offset nb in
      let len = W.get_u16 b (o + 4) in
      if len < size || len > Nb.len nb then Error "udp: bad length"
      else begin
        Nb.set_len nb len;
        let ph = pseudo_sum ~src ~dst ~proto:17 ~len in
        if W.get_u16 b (o + 6) <> 0 && W.checksum ~initial:ph b ~off:o ~len <> 0 then
          Error "udp: bad checksum"
        else begin
          let t = { src_port = W.get_u16 b o; dst_port = W.get_u16 b (o + 2) } in
          Nb.pull nb size;
          Ok t
        end
      end
    end
end

module Tcp = struct
  type t = {
    src_port : int;
    dst_port : int;
    seq : int;
    ack : int;
    syn : bool;
    ack_flag : bool;
    fin : bool;
    rst : bool;
    psh : bool;
    window : int;
  }

  let size = 20

  let flags_byte t =
    (if t.fin then 1 else 0)
    lor (if t.syn then 2 else 0)
    lor (if t.rst then 4 else 0)
    lor (if t.psh then 8 else 0)
    lor if t.ack_flag then 16 else 0

  let encode t ~src ~dst nb =
    Nb.push nb size;
    let b = Nb.data nb and o = Nb.offset nb in
    let len = Nb.len nb in
    W.set_u16 b o t.src_port;
    W.set_u16 b (o + 2) t.dst_port;
    W.set_u32 b (o + 4) (t.seq land 0xffffffff);
    W.set_u32 b (o + 8) (t.ack land 0xffffffff);
    W.set_u8 b (o + 12) 0x50 (* data offset 5 *);
    W.set_u8 b (o + 13) (flags_byte t);
    W.set_u16 b (o + 14) (min t.window 0xffff);
    W.set_u16 b (o + 16) 0;
    W.set_u16 b (o + 18) 0 (* urgent *);
    let ph = pseudo_sum ~src ~dst ~proto:6 ~len in
    W.set_u16 b (o + 16) (W.checksum ~initial:ph b ~off:o ~len)

  let decode ~src ~dst nb =
    if Nb.len nb < size then Error "tcp: truncated"
    else begin
      let b = Nb.data nb and o = Nb.offset nb in
      let doff = (W.get_u8 b (o + 12) lsr 4) * 4 in
      if doff < size || doff > Nb.len nb then Error "tcp: bad data offset"
      else begin
        let ph = pseudo_sum ~src ~dst ~proto:6 ~len:(Nb.len nb) in
        if W.checksum ~initial:ph b ~off:o ~len:(Nb.len nb) <> 0 then Error "tcp: bad checksum"
        else begin
          let fl = W.get_u8 b (o + 13) in
          let t =
            {
              src_port = W.get_u16 b o;
              dst_port = W.get_u16 b (o + 2);
              seq = W.get_u32 b (o + 4);
              ack = W.get_u32 b (o + 8);
              fin = fl land 1 <> 0;
              syn = fl land 2 <> 0;
              rst = fl land 4 <> 0;
              psh = fl land 8 <> 0;
              ack_flag = fl land 16 <> 0;
              window = W.get_u16 b (o + 14);
            }
          in
          Nb.pull nb doff;
          Ok t
        end
      end
    end
end
