module Mac = struct
  type t = int

  let mask = (1 lsl 48) - 1
  let of_int i = i land mask
  let to_int t = t
  let broadcast = mask
  let is_broadcast t = t = mask
  let equal = Int.equal

  let of_string s =
    match String.split_on_char ':' s with
    | [ a; b; c; d; e; f ] ->
        List.fold_left
          (fun acc hex ->
            match int_of_string_opt ("0x" ^ hex) with
            | Some v when v >= 0 && v < 256 -> (acc lsl 8) lor v
            | Some _ | None -> invalid_arg ("Mac.of_string: " ^ s))
          0 [ a; b; c; d; e; f ]
    | _ -> invalid_arg ("Mac.of_string: " ^ s)

  let to_string t =
    Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" ((t lsr 40) land 0xff) ((t lsr 32) land 0xff)
      ((t lsr 24) land 0xff) ((t lsr 16) land 0xff) ((t lsr 8) land 0xff) (t land 0xff)

  let pp ppf t = Fmt.string ppf (to_string t)
end

module Ipv4 = struct
  type t = int

  let mask = 0xffffffff
  let of_int i = i land mask
  let to_int t = t
  let equal = Int.equal
  let compare = Int.compare

  let make a b c d =
    let in_range x = x >= 0 && x <= 255 in
    if not (in_range a && in_range b && in_range c && in_range d) then invalid_arg "Ipv4.make";
    (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

  let of_string s =
    match String.split_on_char '.' s with
    | [ a; b; c; d ] -> (
        match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d)
        with
        | Some a, Some b, Some c, Some d
          when a >= 0 && a < 256 && b >= 0 && b < 256 && c >= 0 && c < 256 && d >= 0 && d < 256 ->
            make a b c d
        | _, _, _, _ -> invalid_arg ("Ipv4.of_string: " ^ s))
    | _ -> invalid_arg ("Ipv4.of_string: " ^ s)

  let to_string t =
    Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xff) ((t lsr 16) land 0xff)
      ((t lsr 8) land 0xff) (t land 0xff)

  let pp ppf t = Fmt.string ppf (to_string t)
  let any = 0
  let broadcast = mask
  let same_subnet a b ~netmask = a land netmask = b land netmask
end
