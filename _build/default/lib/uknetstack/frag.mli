(** IPv4 fragment reassembly (RFC 791).

    Datagrams are keyed by (source, id, protocol); fragments may arrive in
    any order, with duplicates. A datagram completes when the
    no-more-fragments tail has arrived and the byte range [0, total) is
    covered. Incomplete datagrams expire after a timeout, bounding memory
    against fragment floods. *)

type t

val create : clock:Uksim.Clock.t -> ?timeout_ns:float -> ?max_datagrams:int -> unit -> t
(** Defaults: 1 s reassembly timeout, at most 64 datagrams in flight
    (RFC 791's resource bound; the oldest is evicted beyond it). *)

type verdict =
  | Complete of bytes  (** fully reassembled payload *)
  | Pending
  | Rejected of string  (** overlap inconsistency / oversized datagram *)

val insert :
  t ->
  src:Addr.Ipv4.t ->
  id:int ->
  proto:int ->
  frag_offset:int ->
  more_frags:bool ->
  bytes ->
  verdict
(** Feed one fragment's payload. *)

val expire : t -> unit
(** Drop datagrams older than the timeout (called by the stack's poll
    path; cheap when nothing is pending). *)

val pending_datagrams : t -> int
val completed : t -> int
val expired : t -> int
