let get_u8 b i = Char.code (Bytes.get b i)
let get_u16 b i = (get_u8 b i lsl 8) lor get_u8 b (i + 1)
let get_u32 b i = (get_u16 b i lsl 16) lor get_u16 b (i + 2)
let set_u8 b i v = Bytes.set b i (Char.chr (v land 0xff))

let set_u16 b i v =
  set_u8 b i (v lsr 8);
  set_u8 b (i + 1) v

let set_u32 b i v =
  set_u16 b i (v lsr 16);
  set_u16 b (i + 2) v

let fold_carries s =
  let rec go s = if s > 0xffff then go ((s land 0xffff) + (s lsr 16)) else s in
  go s

let partial_sum ?(initial = 0) b ~off ~len =
  let s = ref initial in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    s := !s + get_u16 b !i;
    i := !i + 2
  done;
  if !i < stop then s := !s + (get_u8 b !i lsl 8);
  fold_carries !s

let checksum ?initial b ~off ~len =
  lnot (partial_sum ?initial b ~off ~len) land 0xffff

let sum_words ws = fold_carries (List.fold_left ( + ) 0 ws)
