let max_datagram = 65535

type verdict =
  | Complete of bytes
  | Pending
  | Rejected of string

type datagram = {
  started_ns : float;
  mutable chunks : (int * bytes) list; (* offset -> payload, sorted by offset *)
  mutable total : int option; (* known once the MF=0 tail arrives *)
}

type t = {
  clock : Uksim.Clock.t;
  timeout_ns : float;
  max_datagrams : int;
  table : (int * int * int, datagram) Hashtbl.t; (* (src, id, proto) *)
  mutable n_completed : int;
  mutable n_expired : int;
}

let create ~clock ?(timeout_ns = 1e9) ?(max_datagrams = 64) () =
  { clock; timeout_ns; max_datagrams; table = Hashtbl.create 16; n_completed = 0; n_expired = 0 }

(* Insert a chunk, keeping the list offset-sorted; reject inconsistent
   overlaps (same offset, different length — a teardrop-style signal). *)
let add_chunk d ~off payload =
  let rec go = function
    | [] -> Ok [ (off, payload) ]
    | ((o, p) :: rest) as l ->
        if off < o then Ok ((off, payload) :: l)
        else if off = o then
          if Bytes.length p = Bytes.length payload then Ok l (* duplicate *)
          else Error "inconsistent overlap"
        else ( match go rest with Ok r -> Ok ((o, p) :: r) | Error e -> Error e)
  in
  match go d.chunks with
  | Ok chunks ->
      d.chunks <- chunks;
      Ok ()
  | Error e -> Error e

(* Do the sorted chunks cover [0, total) without gaps? *)
let coverage d =
  match d.total with
  | None -> None
  | Some total ->
      let rec go pos = function
        | [] -> if pos >= total then Some total else None
        | (o, p) :: rest ->
            if o > pos then None (* gap *)
            else go (max pos (o + Bytes.length p)) rest
      in
      go 0 d.chunks

let assemble d total =
  let out = Bytes.create total in
  List.iter
    (fun (o, p) ->
      let n = min (Bytes.length p) (total - o) in
      if n > 0 then Bytes.blit p 0 out o n)
    d.chunks;
  out

let evict_oldest t =
  let oldest = ref None in
  Hashtbl.iter
    (fun key d ->
      match !oldest with
      | Some (_, od) when od.started_ns <= d.started_ns -> ()
      | _ -> oldest := Some (key, d))
    t.table;
  match !oldest with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.n_expired <- t.n_expired + 1
  | None -> ()

let insert t ~src ~id ~proto ~frag_offset ~more_frags payload =
  let key = (Addr.Ipv4.to_int src, id, proto) in
  let d =
    match Hashtbl.find_opt t.table key with
    | Some d -> d
    | None ->
        if Hashtbl.length t.table >= t.max_datagrams then evict_oldest t;
        let d = { started_ns = Uksim.Clock.ns t.clock; chunks = []; total = None } in
        Hashtbl.replace t.table key d;
        d
  in
  if frag_offset + Bytes.length payload > max_datagram then begin
    Hashtbl.remove t.table key;
    Rejected "datagram exceeds 64KB"
  end
  else begin
    (if not more_frags then
       match d.total with
       | Some existing when existing <> frag_offset + Bytes.length payload ->
           (* Two different tails: drop the datagram. *)
           d.total <- Some (-1)
       | Some _ | None -> d.total <- Some (frag_offset + Bytes.length payload));
    if d.total = Some (-1) then begin
      Hashtbl.remove t.table key;
      Rejected "conflicting tail fragments"
    end
    else
      match add_chunk d ~off:frag_offset payload with
      | Error e ->
          Hashtbl.remove t.table key;
          Rejected e
      | Ok () -> (
          match coverage d with
          | Some total ->
              Hashtbl.remove t.table key;
              t.n_completed <- t.n_completed + 1;
              Complete (assemble d total)
          | None -> Pending)
  end

let expire t =
  if Hashtbl.length t.table > 0 then begin
    let now = Uksim.Clock.ns t.clock in
    let stale =
      Hashtbl.fold
        (fun key d acc -> if now -. d.started_ns > t.timeout_ns then key :: acc else acc)
        t.table []
    in
    List.iter
      (fun key ->
        Hashtbl.remove t.table key;
        t.n_expired <- t.n_expired + 1)
      stale
  end

let pending_datagrams t = Hashtbl.length t.table
let completed t = t.n_completed
let expired t = t.n_expired
