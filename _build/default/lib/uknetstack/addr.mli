(** Link- and network-layer addresses. *)

module Mac : sig
  type t
  (** 48-bit ethernet address. *)

  val of_int : int -> t
  val to_int : t -> int
  val broadcast : t
  val is_broadcast : t -> bool
  val of_string : string -> t
  (** "aa:bb:cc:dd:ee:ff"; raises [Invalid_argument] on bad syntax. *)

  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
  val equal : t -> t -> bool
end

module Ipv4 : sig
  type t
  (** 32-bit address. *)

  val of_int : int -> t
  val to_int : t -> int
  val make : int -> int -> int -> int -> t
  val of_string : string -> t
  (** "10.0.0.1"; raises [Invalid_argument] on bad syntax. *)

  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val any : t
  val broadcast : t

  val same_subnet : t -> t -> netmask:t -> bool
end
