(** Calibrated primitive costs, in cycles.

    Anchored to the paper's own measurements on an Intel i7-9700K @ 3.6 GHz
    (Table 1 and §5/§6 of the Unikraft paper). Everything else in the
    simulator composes these primitives, so figure *shapes* follow from the
    same mechanisms as on the testbed. *)

val function_call : int
(** A plain (shim) function call: 4 cycles / 1.11 ns (Table 1). *)

val syscall_unikraft : int
(** Unikraft run-time syscall translation: 84 cycles / 23.33 ns (Table 1). *)

val syscall_linux : int
(** Linux syscall with KPTI and other mitigations: 222 cycles (Table 1). *)

val syscall_linux_nomitig : int
(** Linux syscall without mitigations: 154 cycles (Table 1). *)

val vm_exit : int
(** A lightweight VM exit/entry round trip (e.g. virtio kick to vhost). *)

val interrupt_delivery : int
(** Virtual interrupt injection + guest handler entry. *)

val context_switch : int
(** Guest-internal thread context switch (register save/restore). *)

val page_table_entry_write : int
(** Writing and accounting one page-table entry during boot-time
    population. *)

val tlb_miss : int
(** One 4-level page walk. *)

val memcpy_per_byte : float
(** Bulk copy cost per byte (cached, ~16 B/cycle). *)

val memcpy : int -> int
(** [memcpy n] is the cycle cost of copying [n] bytes (includes fixed
    call overhead). *)

val checksum_per_byte : float
(** Internet checksum cost per byte. *)

val checksum : int -> int

val cache_miss : int
(** Last-level cache miss / memory fetch. *)

val cache_hit : int
(** L1 hit. *)
