type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let is_empty h = h.size = 0
let length h = h.size

(* Lexicographic (key, seq) order makes equal-priority pops FIFO. *)
let lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap h.data.(0) in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && lt h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.size && lt h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h key value =
  let e = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if Array.length h.data = 0 then h.data <- Array.make 16 e;
  grow h;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (top.key, top.value)
  end

let peek h = if h.size = 0 then None else Some (h.data.(0).key, h.data.(0).value)

let clear h =
  h.size <- 0;
  h.next_seq <- 0
