lib/uksim/units.mli: Format
