lib/uksim/engine.ml: Clock Heapq
