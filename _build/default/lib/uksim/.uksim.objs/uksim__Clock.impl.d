lib/uksim/clock.ml:
