lib/uksim/cost.ml:
