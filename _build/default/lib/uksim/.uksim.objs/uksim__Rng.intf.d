lib/uksim/rng.mli:
