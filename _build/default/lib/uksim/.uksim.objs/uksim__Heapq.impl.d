lib/uksim/heapq.ml: Array
