lib/uksim/heapq.mli:
