lib/uksim/clock.mli:
