lib/uksim/engine.mli: Clock
