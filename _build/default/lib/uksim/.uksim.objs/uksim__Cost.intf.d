lib/uksim/cost.mli:
