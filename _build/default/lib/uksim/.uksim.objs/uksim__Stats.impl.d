lib/uksim/stats.ml: Array List Printf Stdlib
