lib/uksim/units.ml: Fmt
