lib/uksim/stats.mli:
