lib/uksim/rng.ml: Array Int64
