(** Mutable binary min-heap keyed by integer priority. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> int -> 'a -> unit
(** [push h key v] inserts [v] with priority [key] (smaller pops first).
    Insertion order breaks ties (FIFO among equal keys). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum entry. *)

val peek : 'a t -> (int * 'a) option
val clear : 'a t -> unit
