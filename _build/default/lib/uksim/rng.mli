(** Deterministic pseudo-random number generation (splitmix64).

    All randomness in the simulator flows through explicit [Rng.t] states so
    experiments are reproducible bit-for-bit across runs. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
