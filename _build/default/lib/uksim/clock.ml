type t = { mutable now : int }

let ghz = 3.6

let create () = { now = 0 }
let cycles t = t.now
let ns t = float_of_int t.now /. ghz

let advance t c =
  if c < 0 then invalid_arg "Clock.advance: negative cycles";
  t.now <- t.now + c

let cycles_of_ns ns = int_of_float (ceil (ns *. ghz))
let ns_of_cycles c = float_of_int c /. ghz
let advance_ns t x = advance t (cycles_of_ns x)
let reset t = t.now <- 0

type span = int

let start t = t.now
let elapsed_cycles t s = t.now - s
let elapsed_ns t s = ns_of_cycles (t.now - s)
