(** Size and time unit helpers shared across the simulator. *)

val kib : int -> int
(** [kib n] is [n] kibibytes in bytes. *)

val mib : int -> int
(** [mib n] is [n] mebibytes in bytes. *)

val gib : int -> int
(** [gib n] is [n] gibibytes in bytes. *)

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable byte count ("1.4MB", "200KB", "40B"). *)

val pp_ns : Format.formatter -> float -> unit
(** Human-readable duration from nanoseconds ("1.2ms", "30us", "61.7ns"). *)

val usec : float -> float
(** [usec x] converts [x] microseconds to nanoseconds. *)

val msec : float -> float
(** [msec x] converts [x] milliseconds to nanoseconds. *)

val sec : float -> float
(** [sec x] converts [x] seconds to nanoseconds. *)
