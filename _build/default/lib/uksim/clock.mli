(** Virtual time.

    The simulator's base unit is the CPU cycle of the paper's testbed (an
    Intel i7-9700K at 3.6 GHz). A clock is an explicit mutable value so
    independent experiments can run isolated clocks. *)

type t

val ghz : float
(** Simulated core frequency, 3.6 GHz as in the paper. *)

val create : unit -> t
(** A fresh clock at cycle 0. *)

val cycles : t -> int
(** Elapsed cycles since creation. *)

val ns : t -> float
(** Elapsed time in nanoseconds. *)

val advance : t -> int -> unit
(** [advance t c] spends [c] cycles. Negative [c] is an error. *)

val advance_ns : t -> float -> unit
(** Spend wall time expressed in nanoseconds (rounded to whole cycles). *)

val cycles_of_ns : float -> int
val ns_of_cycles : int -> float

val reset : t -> unit
(** Rewind to cycle 0. *)

type span
(** A measurement in progress. *)

val start : t -> span
val elapsed_cycles : t -> span -> int
val elapsed_ns : t -> span -> float
