type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value always fits OCaml's non-negative int range. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
