let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

let pp_bytes ppf n =
  let f = float_of_int n in
  if n >= 1024 * 1024 * 1024 then Fmt.pf ppf "%.1fGB" (f /. 1073741824.)
  else if n >= 1024 * 1024 then Fmt.pf ppf "%.1fMB" (f /. 1048576.)
  else if n >= 1024 then Fmt.pf ppf "%.0fKB" (f /. 1024.)
  else Fmt.pf ppf "%dB" n

let pp_ns ppf t =
  if t >= 1e9 then Fmt.pf ppf "%.2fs" (t /. 1e9)
  else if t >= 1e6 then Fmt.pf ppf "%.2fms" (t /. 1e6)
  else if t >= 1e3 then Fmt.pf ppf "%.1fus" (t /. 1e3)
  else Fmt.pf ppf "%.1fns" t

let usec x = x *. 1e3
let msec x = x *. 1e6
let sec x = x *. 1e9
