type table = {
  schema : (string * Sql.ty) list;
  data : Btree.t;
  mutable next_rowid : int;
}

type result_set =
  | Done
  | Affected of int
  | Count of int
  | Rows of { columns : string list; rows : Sql.literal list list }

type t = {
  clock : Uksim.Clock.t;
  alloc : Ukalloc.Alloc.t;
  journal : (Ukvfs.Vfs.t * string) option;
  per_stmt_overhead : int;
  tables : (string, table) Hashtbl.t;
  mutable jfd : Ukvfs.Vfs.fd option;
  mutable joff : int;
  mutable in_txn : bool;
  mutable txn_buffer : Buffer.t;
  mutable stmts : int;
}

(* SQLite-grade per-statement work: tokenize, parse, plan, VM dispatch. *)
let parse_cost = 2200
let row_cost = 240

let charge t c = Uksim.Clock.advance t.clock c

let create ~clock ~alloc ?journal ?(per_stmt_overhead = 0) () =
  {
    clock;
    alloc;
    journal;
    per_stmt_overhead;
    tables = Hashtbl.create 8;
    jfd = None;
    joff = 0;
    in_txn = false;
    txn_buffer = Buffer.create 1024;
    stmts = 0;
  }

(* --- row serialization --------------------------------------------------- *)

let encode_row literals =
  let buf = Buffer.create 64 in
  List.iter
    (fun (l : Sql.literal) ->
      match l with
      | Sql.Lint v ->
          Buffer.add_char buf 'i';
          Buffer.add_string buf (Printf.sprintf "%020d" v)
      | Sql.Ltext s ->
          Buffer.add_char buf 't';
          Buffer.add_string buf (Printf.sprintf "%08d" (String.length s));
          Buffer.add_string buf s)
    literals;
  Buffer.to_bytes buf

let decode_row b =
  let n = Bytes.length b in
  let rec go pos acc =
    if pos >= n then Ok (List.rev acc)
    else
      match Bytes.get b pos with
      | 'i' ->
          if pos + 21 > n then Error "row: truncated int"
          else begin
            match int_of_string_opt (String.trim (Bytes.sub_string b (pos + 1) 20)) with
            | Some v -> go (pos + 21) (Sql.Lint v :: acc)
            | None -> Error "row: bad int"
          end
      | 't' ->
          if pos + 9 > n then Error "row: truncated text header"
          else begin
            match int_of_string_opt (Bytes.sub_string b (pos + 1) 8) with
            | Some len when pos + 9 + len <= n ->
                go (pos + 9 + len) (Sql.Ltext (Bytes.sub_string b (pos + 9) len) :: acc)
            | Some _ | None -> Error "row: bad text length"
          end
      | _ -> Error "row: unknown column tag"
  in
  go 0 []

let rowid_key id = Printf.sprintf "r%010d" id

(* --- journaling ----------------------------------------------------------- *)

let journal_append t line =
  match t.journal with
  | None -> Ok ()
  | Some (vfs, path) -> (
      let ensure_fd () =
        match t.jfd with
        | Some fd -> Ok fd
        | None -> (
            match Ukvfs.Vfs.open_file vfs path ~create:true () with
            | Ok fd ->
                t.jfd <- Some fd;
                Ok fd
            | Error e -> Error (Ukvfs.Fs.errno_to_string e))
      in
      match ensure_fd () with
      | Error e -> Error e
      | Ok fd -> (
          let data = Bytes.of_string line in
          match Ukvfs.Vfs.pwrite vfs fd ~off:t.joff data with
          | Ok n ->
              t.joff <- t.joff + n;
              Ok ()
          | Error e -> Error (Ukvfs.Fs.errno_to_string e)))

let journal_sync t =
  match (t.journal, t.jfd) with
  | Some (vfs, _), Some fd -> (
      match Ukvfs.Vfs.fsync vfs fd with
      | Ok () -> Ok ()
      | Error e -> Error (Ukvfs.Fs.errno_to_string e))
  | (Some _ | None), _ -> Ok ()

let record t stmt_text =
  if t.in_txn then begin
    Buffer.add_string t.txn_buffer stmt_text;
    Buffer.add_char t.txn_buffer '\n';
    Ok ()
  end
  else
    match journal_append t (stmt_text ^ "\n") with
    | Ok () -> journal_sync t
    | Error e -> Error e

(* --- execution ------------------------------------------------------------ *)

let find_table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> Ok tbl
  | None -> Error (Printf.sprintf "no such table: %s" name)

let typecheck schema row =
  if List.length schema <> List.length row then Error "value count does not match column count"
  else if
    List.for_all2
      (fun ((_, ty) : string * Sql.ty) (l : Sql.literal) ->
        match (ty, l) with
        | Sql.Tint, Sql.Lint _ -> true
        | Sql.Ttext, Sql.Ltext _ -> true
        | Sql.Tint, Sql.Ltext _ | Sql.Ttext, Sql.Lint _ -> false)
      schema row
  then Ok ()
  else Error "type mismatch"

let eval_where (where : Sql.where option) schema row =
  match where with
  | None -> Ok true
  | Some { wcol; wop; wval } -> (
      let rec idx i = function
        | [] -> Error (Printf.sprintf "no such column: %s" wcol)
        | (c, _) :: rest -> if String.equal c wcol then Ok i else idx (i + 1) rest
      in
      match idx 0 schema with
      | Error e -> Error e
      | Ok i ->
          let v = List.nth row i in
          let c = Sql.compare_literal v wval in
          Ok
            (match wop with
            | Sql.Eq -> c = 0
            | Sql.Ne -> c <> 0
            | Sql.Lt -> c < 0
            | Sql.Gt -> c > 0
            | Sql.Le -> c <= 0
            | Sql.Ge -> c >= 0))

let scan t tbl where f =
  (* Full table scan (no secondary indexes, like the paper's INSERT/COUNT
     workloads need). *)
  let err = ref None in
  (* Unknown WHERE columns are errors even on empty tables. *)
  (match where with
  | Some { Sql.wcol; _ } when not (List.mem_assoc wcol tbl.schema) ->
      err := Some (Printf.sprintf "no such column: %s" wcol)
  | Some _ | None -> ());
  Btree.iter tbl.data (fun key value ->
      if !err = None then begin
        charge t row_cost;
        match decode_row value with
        | Error e -> err := Some e
        | Ok row -> (
            match eval_where where tbl.schema row with
            | Error e -> err := Some e
            | Ok true -> f key row
            | Ok false -> ())
      end);
  match !err with None -> Ok () | Some e -> Error e

let project cols schema row =
  match cols with
  | Sql.All -> Ok row
  | Sql.Count -> Ok row
  | Sql.Cols names ->
      let pick name =
        let rec idx i = function
          | [] -> Error (Printf.sprintf "no such column: %s" name)
          | (c, _) :: rest -> if String.equal c name then Ok (List.nth row i) else idx (i + 1) rest
        in
        idx 0 schema
      in
      let rec go = function
        | [] -> Ok []
        | n :: rest -> (
            match pick n with
            | Error e -> Error e
            | Ok v -> ( match go rest with Ok vs -> Ok (v :: vs) | Error e -> Error e))
      in
      go names

let exec_stmt t text (stmt : Sql.stmt) =
  match stmt with
  | Sql.Begin ->
      t.in_txn <- true;
      Buffer.clear t.txn_buffer;
      Ok Done
  | Sql.Commit -> (
      if not t.in_txn then Ok Done
      else begin
        t.in_txn <- false;
        match journal_append t (Buffer.contents t.txn_buffer) with
        | Ok () -> (
            match journal_sync t with
            | Ok () -> Ok Done
            | Error e -> Error e)
        | Error e -> Error e
      end)
  | Sql.Create_table { table; columns } ->
      if Hashtbl.mem t.tables table then Error (Printf.sprintf "table %s already exists" table)
      else if columns = [] then Error "a table needs at least one column"
      else begin
        Hashtbl.replace t.tables table
          {
            schema = columns;
            data = Btree.create ~clock:t.clock ~alloc:t.alloc ~order:32 ();
            next_rowid = 1;
          };
        match record t text with Ok () -> Ok Done | Error e -> Error e
      end
  | Sql.Insert { table; rows } -> (
      match find_table t table with
      | Error e -> Error e
      | Ok tbl -> (
          let rec insert_all = function
            | [] -> Ok ()
            | row :: rest -> (
                match typecheck tbl.schema row with
                | Error e -> Error e
                | Ok () -> (
                    let encoded = encode_row row in
                    charge t (Uksim.Cost.memcpy (Bytes.length encoded));
                    let key = rowid_key tbl.next_rowid in
                    match Btree.insert tbl.data ~key ~value:encoded with
                    | Error `Oom -> Error "out of memory"
                    | Ok () ->
                        tbl.next_rowid <- tbl.next_rowid + 1;
                        insert_all rest))
          in
          match insert_all rows with
          | Error e -> Error e
          | Ok () -> (
              match record t text with
              | Ok () -> Ok (Affected (List.length rows))
              | Error e -> Error e)))
  | Sql.Select { cols; table; where } -> (
      match find_table t table with
      | Error e -> Error e
      | Ok tbl -> (
          let out = ref [] in
          let n = ref 0 in
          match
            scan t tbl where (fun _key row ->
                incr n;
                match cols with
                | Sql.Count -> ()
                | Sql.All | Sql.Cols _ -> (
                    match project cols tbl.schema row with
                    | Ok r -> out := r :: !out
                    | Error _ -> ()))
          with
          | Error e -> Error e
          | Ok () -> (
              match cols with
              | Sql.Count -> Ok (Count !n)
              | Sql.All -> Ok (Rows { columns = List.map fst tbl.schema; rows = List.rev !out })
              | Sql.Cols names -> Ok (Rows { columns = names; rows = List.rev !out }))))
  | Sql.Delete { table; where } -> (
      match find_table t table with
      | Error e -> Error e
      | Ok tbl -> (
          let victims = ref [] in
          match scan t tbl where (fun key _row -> victims := key :: !victims) with
          | Error e -> Error e
          | Ok () ->
              List.iter (fun key -> ignore (Btree.delete tbl.data key)) !victims;
              (match record t text with
              | Ok () -> Ok (Affected (List.length !victims))
              | Error e -> Error e)))

(* SQLite allocates dozens of short-lived buffers per statement (token
   arena, parse tree, VDBE program, cursors) with statement-dependent
   sizes. Routing them through ukalloc is what exposes allocator
   behaviour in Figs 16/17: first-fit allocators accumulate stranded
   free blocks as request sizes wander. *)
let scratch_sizes i =
  [ 128 + (16 * (i mod 7)); 256 + (16 * (i mod 13)); 512 + (16 * (i mod 5));
    96 + (16 * (i mod 11)); 192 + (16 * (i mod 3)); 384 + (16 * (i mod 17)) ]

let with_scratch t f =
  let held =
    List.filter_map (fun size -> Ukalloc.Alloc.uk_malloc t.alloc size) (scratch_sizes t.stmts)
  in
  let r = f () in
  List.iter (Ukalloc.Alloc.uk_free t.alloc) held;
  r

let exec t text =
  t.stmts <- t.stmts + 1;
  charge t (parse_cost + t.per_stmt_overhead);
  match Sql.parse text with
  | Error e -> Error ("syntax error: " ^ e)
  | Ok stmt -> with_scratch t (fun () -> exec_stmt t text stmt)

let statements t = t.stmts

let table_rows t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> Some (Btree.length tbl.data)
  | None -> None
