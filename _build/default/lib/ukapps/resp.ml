type value =
  | Simple of string
  | Error of string
  | Integer of int
  | Bulk of string
  | Null
  | Array of value list

let rec encode = function
  | Simple s -> "+" ^ s ^ "\r\n"
  | Error s -> "-" ^ s ^ "\r\n"
  | Integer i -> ":" ^ string_of_int i ^ "\r\n"
  | Bulk s -> Printf.sprintf "$%d\r\n%s\r\n" (String.length s) s
  | Null -> "$-1\r\n"
  | Array vs ->
      Printf.sprintf "*%d\r\n%s" (List.length vs) (String.concat "" (List.map encode vs))

let encode_command args = encode (Array (List.map (fun a -> Bulk a) args))

module Parser = struct
  type t = { buf : Buffer.t; mutable pos : int }

  let create () = { buf = Buffer.create 256; pos = 0 }

  let feed t b = Buffer.add_bytes t.buf b

  (* Find "\r\n" starting at [from]; None if incomplete. *)
  let find_crlf t from =
    let s = Buffer.contents t.buf in
    let n = String.length s in
    let rec go i = if i + 1 >= n then None else if s.[i] = '\r' && s.[i + 1] = '\n' then Some i else go (i + 1) in
    go from

  let line t =
    match find_crlf t t.pos with
    | None -> None
    | Some i ->
        let s = Buffer.contents t.buf in
        let l = String.sub s t.pos (i - t.pos) in
        t.pos <- i + 2;
        Some l

  exception Incomplete
  exception Bad of string

  let rec parse_value t =
    match line t with
    | None -> raise Incomplete
    | Some l ->
        if String.length l = 0 then raise (Bad "empty line")
        else begin
          let body = String.sub l 1 (String.length l - 1) in
          match l.[0] with
          | '+' -> Simple body
          | '-' -> Error body
          | ':' -> (
              match int_of_string_opt body with
              | Some i -> Integer i
              | None -> raise (Bad "bad integer"))
          | '$' -> (
              match int_of_string_opt body with
              | Some -1 -> Null
              | Some n when n >= 0 ->
                  let s = Buffer.contents t.buf in
                  if String.length s < t.pos + n + 2 then raise Incomplete
                  else begin
                    let v = String.sub s t.pos n in
                    if not (s.[t.pos + n] = '\r' && s.[t.pos + n + 1] = '\n') then
                      raise (Bad "bulk not terminated");
                    t.pos <- t.pos + n + 2;
                    Bulk v
                  end
              | Some _ | None -> raise (Bad "bad bulk length"))
          | '*' -> (
              match int_of_string_opt body with
              | Some -1 -> Null
              | Some n when n >= 0 ->
                  let rec collect acc k = if k = 0 then List.rev acc else collect (parse_value t :: acc) (k - 1) in
                  Array (collect [] n)
              | Some _ | None -> raise (Bad "bad array length"))
          | _ -> raise (Bad "unknown type byte")
        end

  let compact t =
    (* Drop consumed bytes once they dominate the buffer. *)
    if t.pos > 4096 && t.pos * 2 > Buffer.length t.buf then begin
      let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.pos <- 0
    end

  let next t =
    let saved = t.pos in
    match parse_value t with
    | v ->
        compact t;
        Ok (Some v)
    | exception Incomplete ->
        t.pos <- saved;
        Ok None
    | exception Bad e -> Error e

  let buffered t = Buffer.length t.buf - t.pos
end
