(* Classic B-tree with preemptive splitting on the way down. Leaves hold
   (key, value-address, value) entries; interior nodes hold separator keys
   and children. The value bytes are kept in the OCaml heap for
   inspection, while their storage cost lives in the ukalloc backend via
   the recorded address. *)

type entry = { mutable ekey : string; mutable addr : int; mutable value : bytes }

type node = {
  mutable keys : string array; (* separators (interior) or entry keys (leaf) *)
  mutable entries : entry array; (* leaves only *)
  mutable children : node array; (* interior only; length = keys + 1 *)
  mutable nkeys : int;
  leaf : bool;
}

type t = {
  clock : Uksim.Clock.t;
  alloc : Ukalloc.Alloc.t;
  order : int;
  mutable root : node;
  mutable count : int;
  mutable nodes : int;
}

let cmp_cost = 14
let node_alloc_size = 512

let charge t c = Uksim.Clock.advance t.clock c

let dummy_entry = { ekey = ""; addr = 0; value = Bytes.empty }

let new_node t ~leaf =
  (* Node storage comes from the allocator; failure is surfaced as Oom by
     callers that can fail. *)
  (match Ukalloc.Alloc.uk_malloc t.alloc node_alloc_size with
  | Some _ -> ()
  | None -> raise Exit);
  t.nodes <- t.nodes + 1;
  let cap = t.order in
  {
    keys = Array.make cap "";
    entries = (if leaf then Array.make cap dummy_entry else [||]);
    children = [||];
    nkeys = 0;
    leaf;
  }

let create ~clock ~alloc ?(order = 32) () =
  if order < 4 then invalid_arg "Btree.create: order must be >= 4";
  let placeholder = { keys = [||]; entries = [||]; children = [||]; nkeys = 0; leaf = true } in
  let t = { clock; alloc; order; root = placeholder; count = 0; nodes = 0 } in
  let root =
    try new_node t ~leaf:true
    with Exit -> invalid_arg "Btree.create: allocator exhausted at creation"
  in
  t.root <- root;
  t

let max_keys t = t.order - 1

(* Binary search for the insertion point of [key] among the first nkeys
   keys; charges one comparison per probe. *)
let search_keys t node key =
  let lo = ref 0 and hi = ref node.nkeys in
  while !lo < !hi do
    charge t cmp_cost;
    let mid = (!lo + !hi) / 2 in
    if String.compare node.keys.(mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Split full child [i] of interior/parent [parent]. *)
let split_child t parent i =
  let child = parent.children.(i) in
  let mid = t.order / 2 in
  let right = new_node t ~leaf:child.leaf in
  charge t (Uksim.Cost.memcpy (node_alloc_size / 2));
  let right_keys = child.nkeys - mid - (if child.leaf then 0 else 1) in
  if child.leaf then begin
    (* Leaves keep all keys; separator = first key of right sibling. *)
    let right_keys = child.nkeys - mid in
    Array.blit child.keys mid right.keys 0 right_keys;
    Array.blit child.entries mid right.entries 0 right_keys;
    right.nkeys <- right_keys;
    child.nkeys <- mid
  end
  else begin
    Array.blit child.keys (mid + 1) right.keys 0 right_keys;
    right.children <- Array.sub child.children (mid + 1) (right_keys + 1);
    right.nkeys <- right_keys;
    child.children <- Array.sub child.children 0 (mid + 1);
    child.nkeys <- mid
  end;
  (* Separator: first key of the right leaf, or the median key promoted
     out of an interior child (still readable in the truncated array). *)
  let sep = if child.leaf then right.keys.(0) else child.keys.(mid) in
  (* Insert separator + right child into parent at position i. *)
  Array.blit parent.keys i parent.keys (i + 1) (parent.nkeys - i);
  parent.keys.(i) <- sep;
  let nchildren = parent.nkeys + 1 in
  let nc = Array.make (nchildren + 1) right in
  Array.blit parent.children 0 nc 0 (i + 1);
  nc.(i + 1) <- right;
  Array.blit parent.children (i + 1) nc (i + 2) (nchildren - i - 1);
  parent.children <- nc;
  parent.nkeys <- parent.nkeys + 1

let store_value t value =
  match Ukalloc.Alloc.uk_malloc t.alloc (max 16 (Bytes.length value)) with
  | Some addr ->
      charge t (Uksim.Cost.memcpy (Bytes.length value));
      Some addr
  | None -> None

let rec insert_nonfull t node key value =
  if node.leaf then begin
    let i = search_keys t node key in
    if i < node.nkeys && String.equal node.keys.(i) key then begin
      (* Replace: free old payload, store new. *)
      let e = node.entries.(i) in
      Ukalloc.Alloc.uk_free t.alloc e.addr;
      match store_value t value with
      | None -> Error `Oom
      | Some addr ->
          e.addr <- addr;
          e.value <- value;
          Ok ()
    end
    else begin
      match store_value t value with
      | None -> Error `Oom
      | Some addr ->
          Array.blit node.keys i node.keys (i + 1) (node.nkeys - i);
          Array.blit node.entries i node.entries (i + 1) (node.nkeys - i);
          node.keys.(i) <- key;
          node.entries.(i) <- { ekey = key; addr; value };
          node.nkeys <- node.nkeys + 1;
          t.count <- t.count + 1;
          Ok ()
    end
  end
  else begin
    let i = search_keys t node key in
    let i =
      if i < node.nkeys && String.compare node.keys.(i) key <= 0 then i + 1 else i
    in
    let child = node.children.(i) in
    if child.nkeys >= max_keys t then begin
      split_child t node i;
      let i = if String.compare node.keys.(i) key <= 0 then i + 1 else i in
      insert_nonfull t node.children.(i) key value
    end
    else insert_nonfull t child key value
  end

let insert t ~key ~value =
  try
    if t.root.nkeys >= max_keys t then begin
      let new_root = new_node t ~leaf:false in
      new_root.children <- [| t.root |];
      new_root.nkeys <- 0;
      split_child t new_root 0;
      t.root <- new_root
    end;
    insert_nonfull t t.root key value
  with Exit -> Error `Oom

let rec find_node t node key =
  let i = search_keys t node key in
  if node.leaf then
    if i < node.nkeys && String.equal node.keys.(i) key then Some node.entries.(i) else None
  else begin
    let i = if i < node.nkeys && String.compare node.keys.(i) key <= 0 then i + 1 else i in
    find_node t node.children.(i) key
  end

let find t key = match find_node t t.root key with Some e -> Some e.value | None -> None
let mem t key = find_node t t.root key <> None

let rec delete_in t node key =
  let i = search_keys t node key in
  if node.leaf then begin
    if i < node.nkeys && String.equal node.keys.(i) key then begin
      Ukalloc.Alloc.uk_free t.alloc node.entries.(i).addr;
      Array.blit node.keys (i + 1) node.keys i (node.nkeys - i - 1);
      Array.blit node.entries (i + 1) node.entries i (node.nkeys - i - 1);
      node.nkeys <- node.nkeys - 1;
      t.count <- t.count - 1;
      true
    end
    else false
  end
  else begin
    let i = if i < node.nkeys && String.compare node.keys.(i) key <= 0 then i + 1 else i in
    delete_in t node.children.(i) key
  end

let delete t key = delete_in t t.root key

let length t = t.count

let height t =
  let rec go node acc = if node.leaf then acc else go node.children.(0) (acc + 1) in
  go t.root 1

let iter t ?min_key ?max_key f =
  let lower k = match min_key with Some m -> String.compare k m >= 0 | None -> true in
  let upper k = match max_key with Some m -> String.compare k m <= 0 | None -> true in
  let rec go node =
    if node.leaf then
      for i = 0 to node.nkeys - 1 do
        let k = node.keys.(i) in
        if lower k && upper k then f k node.entries.(i).value
      done
    else begin
      for i = 0 to node.nkeys do
        go node.children.(i)
      done
    end
  in
  go t.root

let fold t f acc =
  let acc = ref acc in
  iter t (fun k v -> acc := f k v !acc);
  !acc

let node_count t = t.nodes
