(** Embedded SQL database — the SQLite stand-in (Figs 16, 17).

    Rows are serialized into a {!Btree} keyed by rowid; all row and node
    storage flows through the configured ukalloc backend, and statements
    can be journaled through vfscore, so both the allocator axis (Fig 16)
    and the libc/syscall-dispatch axis (Fig 17) are exercised by the same
    engine. Outside an explicit transaction every statement commits (and
    fsyncs the journal) individually, as SQLite does. *)

type t

type result_set =
  | Done  (** DDL / transaction control *)
  | Affected of int  (** INSERT / DELETE *)
  | Count of int  (** SELECT COUNT(...) *)
  | Rows of { columns : string list; rows : Sql.literal list list }

val create :
  clock:Uksim.Clock.t ->
  alloc:Ukalloc.Alloc.t ->
  ?journal:Ukvfs.Vfs.t * string ->
  ?per_stmt_overhead:int ->
  unit ->
  t
(** [journal] = (vfs, path) for write-ahead journaling. [per_stmt_overhead]
    adds cycles per statement — how the Fig 17 harness models the
    newlib-vs-musl and automatic-porting deltas. *)

val exec : t -> string -> (result_set, string) result
val statements : t -> int
val table_rows : t -> string -> int option
