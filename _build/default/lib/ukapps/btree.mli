(** B-tree ordered map used as the SQL engine's storage layer (Figs 16,
    17: the 60k-insert workload runs through here).

    Keys are strings, values are byte strings. Nodes and value payloads
    are "allocated" from a ukalloc backend — every node creation, split
    and value store goes through the configured allocator, which is how
    allocator choice shows up in SQLite-style workloads. *)

type t

val create : clock:Uksim.Clock.t -> alloc:Ukalloc.Alloc.t -> ?order:int -> unit -> t
(** [order] = max children per interior node (default 32, min 4). *)

val insert : t -> key:string -> value:bytes -> (unit, [ `Oom ]) result
(** Replaces existing bindings. *)

val find : t -> string -> bytes option
val mem : t -> string -> bool

val delete : t -> string -> bool
(** [true] if the key existed. Uses logical deletion with in-node
    compaction (interior structure is not rebalanced — the access pattern
    of the paper's workloads is insert/lookup dominated). *)

val length : t -> int
val height : t -> int

val iter : t -> ?min_key:string -> ?max_key:string -> (string -> bytes -> unit) -> unit
(** In key order, inclusive bounds. *)

val fold : t -> (string -> bytes -> 'a -> 'a) -> 'a -> 'a
val node_count : t -> int
