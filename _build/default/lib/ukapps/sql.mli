(** SQL subset understood by the embedded database (the SQLite stand-in
    of Figs 16 and 17): CREATE TABLE, INSERT (multi-row), SELECT with
    column projection / COUNT(...) and a simple WHERE, DELETE, BEGIN and
    COMMIT. *)

type ty = Tint | Ttext

type literal = Lint of int | Ltext of string

type comparison = Eq | Ne | Lt | Gt | Le | Ge

type where = { wcol : string; wop : comparison; wval : literal }

type select_cols = All | Count | Cols of string list

type stmt =
  | Create_table of { table : string; columns : (string * ty) list }
  | Insert of { table : string; rows : literal list list }
  | Select of { cols : select_cols; table : string; where : where option }
  | Delete of { table : string; where : where option }
  | Begin
  | Commit

val parse : string -> (stmt, string) result
(** One statement, optional trailing ';'. Keywords are case-insensitive;
    text literals are single-quoted with '' escaping. *)

val pp_literal : Format.formatter -> literal -> unit
val literal_equal : literal -> literal -> bool
val compare_literal : literal -> literal -> int
