(** The canonical helloworld unikernel payload (Figs 3, 8, 9, 10, 11). *)

val main : clock:Uksim.Clock.t -> ?greeting:string -> unit -> string
(** Formats and "prints" the greeting (charging the console-write cost);
    returns the line written. *)

val work_cycles : int
(** main()'s total cost — what runs after boot in the boot-time figures. *)
