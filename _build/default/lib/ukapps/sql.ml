type ty = Tint | Ttext

type literal = Lint of int | Ltext of string

type comparison = Eq | Ne | Lt | Gt | Le | Ge

type where = { wcol : string; wop : comparison; wval : literal }

type select_cols = All | Count | Cols of string list

type stmt =
  | Create_table of { table : string; columns : (string * ty) list }
  | Insert of { table : string; rows : literal list list }
  | Select of { cols : select_cols; table : string; where : where option }
  | Delete of { table : string; where : where option }
  | Begin
  | Commit

let pp_literal ppf = function
  | Lint i -> Fmt.int ppf i
  | Ltext s -> Fmt.pf ppf "'%s'" s

let literal_equal a b =
  match (a, b) with
  | Lint x, Lint y -> x = y
  | Ltext x, Ltext y -> String.equal x y
  | Lint _, Ltext _ | Ltext _, Lint _ -> false

let compare_literal a b =
  match (a, b) with
  | Lint x, Lint y -> compare x y
  | Ltext x, Ltext y -> String.compare x y
  | Lint _, Ltext _ -> -1
  | Ltext _, Lint _ -> 1

(* --- lexer -------------------------------------------------------------- *)

type token =
  | Ident of string
  | Int of int
  | Str of string
  | Punct of char (* ( ) , ; * *)
  | Op of comparison
  | Eof

exception Syntax of string

let lex input =
  let n = String.length input in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' || c = ')' || c = ',' || c = ';' || c = '*' then begin
      push (Punct c);
      incr i
    end
    else if c = '=' then begin
      push (Op Eq);
      incr i
    end
    else if c = '<' then
      if !i + 1 < n && input.[!i + 1] = '=' then begin
        push (Op Le);
        i := !i + 2
      end
      else if !i + 1 < n && input.[!i + 1] = '>' then begin
        push (Op Ne);
        i := !i + 2
      end
      else begin
        push (Op Lt);
        incr i
      end
    else if c = '>' then
      if !i + 1 < n && input.[!i + 1] = '=' then begin
        push (Op Ge);
        i := !i + 2
      end
      else begin
        push (Op Gt);
        incr i
      end
    else if c = '!' && !i + 1 < n && input.[!i + 1] = '=' then begin
      push (Op Ne);
      i := !i + 2
    end
    else if c = '\'' then begin
      (* Single-quoted string, '' escapes a quote. *)
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= n then raise (Syntax "unterminated string literal")
        else if input.[!i] = '\'' then
          if !i + 1 < n && input.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      push (Str (Buffer.contents buf))
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && input.[!i + 1] >= '0' && input.[!i + 1] <= '9')
    then begin
      let start = !i in
      incr i;
      while !i < n && input.[!i] >= '0' && input.[!i] <= '9' do
        incr i
      done;
      match int_of_string_opt (String.sub input start (!i - start)) with
      | Some v -> push (Int v)
      | None -> raise (Syntax "bad integer literal")
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      incr i;
      while
        !i < n
        && (let c = input.[!i] in
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_')
      do
        incr i
      done;
      push (Ident (String.sub input start (!i - start)))
    end
    else raise (Syntax (Printf.sprintf "unexpected character %c" c))
  done;
  List.rev (Eof :: !toks)

(* --- parser ------------------------------------------------------------- *)

type cursor = { mutable toks : token list }

let peek c = match c.toks with t :: _ -> t | [] -> Eof

let advance c = match c.toks with _ :: rest -> c.toks <- rest | [] -> ()

let next c =
  let t = peek c in
  advance c;
  t

let kw_equal s kw = String.uppercase_ascii s = kw

let expect_kw c kw =
  match next c with
  | Ident s when kw_equal s kw -> ()
  | _ -> raise (Syntax (Printf.sprintf "expected %s" kw))

let expect_punct c p =
  match next c with
  | Punct q when q = p -> ()
  | _ -> raise (Syntax (Printf.sprintf "expected '%c'" p))

let ident c =
  match next c with
  | Ident s -> s
  | _ -> raise (Syntax "expected identifier")

let literal c =
  match next c with
  | Int v -> Lint v
  | Str s -> Ltext s
  | _ -> raise (Syntax "expected literal")

let rec comma_separated c elt =
  let first = elt c in
  match peek c with
  | Punct ',' ->
      advance c;
      first :: comma_separated c elt
  | _ -> [ first ]

let parse_where c =
  match peek c with
  | Ident s when kw_equal s "WHERE" ->
      advance c;
      let wcol = ident c in
      let wop = match next c with Op o -> o | _ -> raise (Syntax "expected comparison") in
      let wval = literal c in
      Some { wcol; wop; wval }
  | _ -> None

let column_def c =
  let name = ident c in
  let ty =
    match peek c with
    | Ident s when kw_equal s "INTEGER" || kw_equal s "INT" ->
        advance c;
        Tint
    | Ident s when kw_equal s "TEXT" || kw_equal s "VARCHAR" ->
        advance c;
        Ttext
    | _ -> Ttext
  in
  (* Swallow constraint keywords (PRIMARY KEY, NOT NULL). *)
  let rec skip () =
    match peek c with
    | Ident s
      when kw_equal s "PRIMARY" || kw_equal s "KEY" || kw_equal s "NOT" || kw_equal s "NULL" ->
        advance c;
        skip ()
    | _ -> ()
  in
  skip ();
  (name, ty)

let row_values c =
  expect_punct c '(';
  let vs = comma_separated c literal in
  expect_punct c ')';
  vs

let parse_stmt c =
  match next c with
  | Ident s when kw_equal s "CREATE" ->
      expect_kw c "TABLE";
      let table = ident c in
      expect_punct c '(';
      let columns = comma_separated c column_def in
      expect_punct c ')';
      Create_table { table; columns }
  | Ident s when kw_equal s "INSERT" ->
      expect_kw c "INTO";
      let table = ident c in
      (match peek c with
      | Punct '(' ->
          (* Optional column list — accepted and ignored (values must be
             in schema order). *)
          advance c;
          let _ = comma_separated c ident in
          expect_punct c ')'
      | _ -> ());
      expect_kw c "VALUES";
      let rows = comma_separated c row_values in
      Insert { table; rows }
  | Ident s when kw_equal s "SELECT" ->
      let cols =
        match peek c with
        | Punct '*' ->
            advance c;
            All
        | Ident f when kw_equal f "COUNT" ->
            advance c;
            expect_punct c '(';
            expect_punct c '*';
            expect_punct c ')';
            Count
        | _ -> Cols (comma_separated c ident)
      in
      expect_kw c "FROM";
      let table = ident c in
      let where = parse_where c in
      Select { cols; table; where }
  | Ident s when kw_equal s "DELETE" ->
      expect_kw c "FROM";
      let table = ident c in
      let where = parse_where c in
      Delete { table; where }
  | Ident s when kw_equal s "BEGIN" -> Begin
  | Ident s when kw_equal s "COMMIT" || kw_equal s "END" -> Commit
  | _ -> raise (Syntax "expected statement")

let parse input =
  match lex input with
  | exception Syntax e -> Error e
  | toks -> (
      let c = { toks } in
      match parse_stmt c with
      | exception Syntax e -> Error e
      | stmt -> (
          (* Optional trailing ';' then EOF. *)
          (match peek c with Punct ';' -> advance c | _ -> ());
          match peek c with
          | Eof -> Ok stmt
          | _ -> Error "trailing tokens after statement"))
