(** UDP-based in-memory key-value store (paper §6.4, Table 4).

    Wire format: ["G <key>"] and ["S <key> <value>"] datagrams, answered
    with the value (or ["OK"] / ["MISS"]).

    Two server builds, matching the paper's specialization ladder:
    - {!serve_sockets}: recvmsg/sendmsg-style loop over the stack's UDP
      sockets (the "LWIP" row of Table 4);
    - {!serve_netdev}: the lwIP stack and scheduler removed — a polling
      loop directly on the uknetdev API with inline header processing and
      prebuilt reply templates (the "uknetdev" row; same porting effort
      class as the DPDK build, one core instead of two).

    {!Client} is the request generator (a second machine in the paper). *)

type store

val create_store : clock:Uksim.Clock.t -> alloc:Ukalloc.Alloc.t -> store
val store_set : store -> string -> string -> unit
val store_get : store -> string -> string option
val store_size : store -> int

val serve_sockets :
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  store:store ->
  ?port:int ->
  ?syscall_cost:int ->
  unit ->
  unit
(** Spawns a daemon service thread; [syscall_cost] cycles are charged per
    recvmsg/sendmsg pair (0 for Unikraft, where syscalls are function
    calls). Port defaults to 5000. *)

val serve_netdev :
  clock:Uksim.Clock.t ->
  sched:Uksched.Sched.t ->
  dev:Uknetdev.Netdev.t ->
  store:store ->
  mac:Uknetstack.Addr.Mac.t ->
  ip:Uknetstack.Addr.Ipv4.t ->
  ?port:int ->
  unit ->
  unit
(** The specialized build: configures queue 0 in polling mode and spawns a
    daemon thread that busy-polls, swaps ethernet/IP/UDP headers in place
    and transmits replies in bursts. *)

module Client : sig
  type result = { requests : int; replies : int; elapsed_ns : float; rate_per_sec : float }

  val run_sockets :
    clock:Uksim.Clock.t ->
    sched:Uksched.Sched.t ->
    stack:Uknetstack.Stack.t ->
    server:Uknetstack.Addr.Ipv4.t * int ->
    ?requests:int ->
    ?inflight:int ->
    unit ->
    result
  (** Windowed request/response load over a UDP socket; drives [sched]. *)

  val run_netdev :
    clock:Uksim.Clock.t ->
    sched:Uksched.Sched.t ->
    dev:Uknetdev.Netdev.t ->
    mac:Uknetstack.Addr.Mac.t ->
    ip:Uknetstack.Addr.Ipv4.t ->
    server_mac:Uknetstack.Addr.Mac.t ->
    server:Uknetstack.Addr.Ipv4.t * int ->
    ?requests:int ->
    ?batch:int ->
    unit ->
    result
  (** Raw-packet generator (the DPDK-testpmd-class peer): crafts UDP
      request frames directly on its own device. *)
end
