lib/ukapps/hello.ml: Uksim
