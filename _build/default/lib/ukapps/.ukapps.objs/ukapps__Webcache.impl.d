lib/ukapps/webcache.ml: Bytes Filename Printf String Uksim Ukvfs
