lib/ukapps/resp.mli:
