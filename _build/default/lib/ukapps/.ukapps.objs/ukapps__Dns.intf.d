lib/ukapps/dns.mli: Uknetstack Uksched Uksim
