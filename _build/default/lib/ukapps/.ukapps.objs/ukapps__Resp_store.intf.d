lib/ukapps/resp_store.mli: Resp Ukalloc Uknetstack Uksched Uksim
