lib/ukapps/btree.mli: Ukalloc Uksim
