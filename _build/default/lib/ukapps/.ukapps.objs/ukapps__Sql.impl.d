lib/ukapps/sql.ml: Buffer Fmt List Printf String
