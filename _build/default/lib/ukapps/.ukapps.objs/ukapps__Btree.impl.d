lib/ukapps/btree.ml: Array Bytes String Ukalloc Uksim
