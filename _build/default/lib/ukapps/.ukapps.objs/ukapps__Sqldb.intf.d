lib/ukapps/sqldb.mli: Sql Ukalloc Uksim Ukvfs
