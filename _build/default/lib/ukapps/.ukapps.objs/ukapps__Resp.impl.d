lib/ukapps/resp.ml: Buffer List Printf String
