lib/ukapps/udp_kv.mli: Ukalloc Uknetdev Uknetstack Uksched Uksim
