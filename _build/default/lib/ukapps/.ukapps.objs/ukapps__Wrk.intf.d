lib/ukapps/wrk.mli: Uknetstack Uksched Uksim
