lib/ukapps/httpd.ml: Buffer Bytes List Printf String Ukalloc Uknetstack Uksched Uksim Ukvfs
