lib/ukapps/wrk.ml: Buffer Bytes List Option Printf String Uknetstack Uksched Uksim
