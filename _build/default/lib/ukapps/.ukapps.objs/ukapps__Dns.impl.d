lib/ukapps/dns.ml: Buffer Bytes Char Hashtbl List String Uknetstack Uksched Uksim
