lib/ukapps/sqldb.ml: Btree Buffer Bytes Hashtbl List Printf Sql String Ukalloc Uksim Ukvfs
