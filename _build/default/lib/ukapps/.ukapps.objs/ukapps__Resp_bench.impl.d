lib/ukapps/resp_bench.ml: Buffer Printf Resp String Uknetstack Uksched Uksim
