lib/ukapps/httpd.mli: Ukalloc Uknetstack Uksched Uksim Ukvfs
