lib/ukapps/webcache.mli: Uksim Ukvfs
