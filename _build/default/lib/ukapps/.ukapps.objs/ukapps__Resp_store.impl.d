lib/ukapps/resp_store.ml: Buffer Bytes Hashtbl List Printf Resp String Ukalloc Uknetstack Uksched Uksim
