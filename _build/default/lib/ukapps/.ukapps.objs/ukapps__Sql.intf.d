lib/ukapps/sql.mli: Format
