lib/ukapps/udp_kv.ml: Array Bytes Hashtbl List Printf String Ukalloc Uknetdev Uknetstack Uksched Uksim
