lib/ukapps/resp_bench.mli: Uknetstack Uksched Uksim
