lib/ukapps/hello.mli: Uksim
