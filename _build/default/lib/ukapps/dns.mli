(** DNS wire protocol (RFC 1035 subset) and an authoritative UDP server —
    the dnsmasq/bind class of workload from the paper's syscall study, and
    a second UDP-native service for the specialization experiments.

    The codec implements real RFC 1035 framing: 12-byte header, QNAME
    label encoding with {e message compression} (0xC0 pointers), A/AAAA/
    CNAME/NS/TXT records, NXDOMAIN/FORMERR rcodes. *)

type qtype = A | Aaaa | Cname | Ns | Txt | Unknown_qtype of int

type rcode = No_error | Form_err | Serv_fail | Nx_domain | Not_impl

type question = { qname : string; qtype : qtype }

type rr = {
  name : string;
  rtype : qtype;
  ttl : int;
  rdata : rdata;
}

and rdata =
  | Ipv4_addr of Uknetstack.Addr.Ipv4.t
  | Ipv6_addr of string  (** textual; we do not model v6 elsewhere *)
  | Name of string  (** CNAME / NS target *)
  | Text of string

type message = {
  id : int;
  query : bool;
  rcode : rcode;
  recursion_desired : bool;
  questions : question list;
  answers : rr list;
  authority : rr list;
}

val encode : message -> bytes
(** Names are compressed against earlier occurrences. *)

val decode : bytes -> (message, string) result
(** Rejects malformed packets, out-of-bounds labels, and compression-
    pointer loops. *)

val query : ?id:int -> string -> qtype -> message
(** Convenience: a standard recursive-desired question. *)

(** {1 Authoritative server} *)

module Server : sig
  type t

  val create :
    clock:Uksim.Clock.t ->
    sched:Uksched.Sched.t ->
    stack:Uknetstack.Stack.t ->
    ?port:int ->
    unit ->
    t
  (** Binds UDP port 53 (default) and answers from its zone via a daemon
      thread. *)

  val add_record : t -> name:string -> rr -> unit
  (** Names are case-insensitive. *)

  val add_a : t -> name:string -> ?ttl:int -> string -> unit
  (** [add_a t ~name "10.0.0.5"]. *)

  val queries_served : t -> int
  val nxdomain_count : t -> int

  val resolve : t -> message -> message
  (** Pure lookup (used by tests and by the network path): follows CNAME
      chains (bounded), returns NXDOMAIN/empty sections as appropriate. *)
end

module Client : sig
  val lookup :
    clock:Uksim.Clock.t ->
    stack:Uknetstack.Stack.t ->
    server:Uknetstack.Addr.Ipv4.t ->
    ?port:int ->
    ?qtype:qtype ->
    string ->
    (message, string) result
  (** Blocking query over UDP (requires a scheduler on the stack). *)
end
