type backend =
  | Vfs_backed of Ukvfs.Vfs.t * string
  | Shfs_backed of Ukvfs.Shfs.t

type t = { clock : Uksim.Clock.t; backend : backend; mutable served : int }

let create ~clock backend = { clock; backend; served = 0 }

let file_name i = Printf.sprintf "f%d.html" i

let content size i =
  let base = Printf.sprintf "<html><body>object %d</body></html>" i in
  if String.length base >= size then Bytes.of_string (String.sub base 0 size)
  else Bytes.of_string (base ^ String.make (size - String.length base) '.')

let populate t ~n_files ?(size = 4096) () =
  match t.backend with
  | Shfs_backed shfs ->
      for i = 0 to n_files - 1 do
        Ukvfs.Shfs.add shfs ~name:(file_name i) (content size i)
      done;
      Ok ()
  | Vfs_backed (vfs, prefix) ->
      let rec go i =
        if i >= n_files then Ok ()
        else begin
          let path = Filename.concat prefix (file_name i) in
          match Ukvfs.Vfs.open_file vfs path ~create:true () with
          | Error e -> Error (Ukvfs.Fs.errno_to_string e)
          | Ok fd -> (
              match Ukvfs.Vfs.pwrite vfs fd ~off:0 (content size i) with
              | Error e ->
                  ignore (Ukvfs.Vfs.close vfs fd);
                  Error (Ukvfs.Fs.errno_to_string e)
              | Ok _ ->
                  ignore (Ukvfs.Vfs.close vfs fd);
                  go (i + 1))
        end
      in
      go 0

let fetch t name =
  t.served <- t.served + 1;
  match t.backend with
  | Shfs_backed shfs -> (
      match Ukvfs.Shfs.open_direct shfs name with
      | Error _ -> None
      | Ok h ->
          let size = Ukvfs.Shfs.size_direct shfs h in
          let r =
            match Ukvfs.Shfs.read_direct shfs h ~off:0 ~len:size with
            | Ok data -> Some data
            | Error _ -> None
          in
          Ukvfs.Shfs.close_direct shfs h;
          r)
  | Vfs_backed (vfs, prefix) -> (
      let path = Filename.concat prefix name in
      match Ukvfs.Vfs.open_file vfs path () with
      | Error _ -> None
      | Ok fd ->
          let r =
            match Ukvfs.Vfs.stat vfs path with
            | Ok { Ukvfs.Fs.size; _ } -> (
                match Ukvfs.Vfs.pread vfs fd ~off:0 ~len:size with
                | Ok data -> Some data
                | Error _ -> None)
            | Error _ -> None
          in
          ignore (Ukvfs.Vfs.close vfs fd);
          r)

type open_latency = { hit_ns : float; miss_ns : float }

(* One open(+close), not reading the body — the paper measures lookup +
   fd-open time. *)
let open_once t name =
  match t.backend with
  | Shfs_backed shfs -> (
      match Ukvfs.Shfs.open_direct shfs name with
      | Ok h -> Ukvfs.Shfs.close_direct shfs h
      | Error _ -> ())
  | Vfs_backed (vfs, prefix) -> (
      match Ukvfs.Vfs.open_file vfs (Filename.concat prefix name) () with
      | Ok fd -> ignore (Ukvfs.Vfs.close vfs fd)
      | Error _ -> ())

let measure_open t ?(iterations = 1000) () =
  let measure name =
    let span = Uksim.Clock.start t.clock in
    for i = 0 to iterations - 1 do
      ignore i;
      open_once t name
    done;
    Uksim.Clock.elapsed_ns t.clock span /. float_of_int iterations
  in
  let hit_ns = measure (file_name 0) in
  let miss_ns = measure "does-not-exist.html" in
  { hit_ns; miss_ns }

let requests_served t = t.served
