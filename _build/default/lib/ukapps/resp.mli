(** RESP2 — the Redis serialization protocol (wire format used by the
    Redis-like server and redis-benchmark-like client of Figs 12 and 18). *)

type value =
  | Simple of string  (** +OK\r\n *)
  | Error of string  (** -ERR ...\r\n *)
  | Integer of int  (** :42\r\n *)
  | Bulk of string  (** $3\r\nfoo\r\n *)
  | Null  (** $-1\r\n *)
  | Array of value list  (** *2\r\n... *)

val encode : value -> string

val encode_command : string list -> string
(** A client command as an array of bulk strings. *)

module Parser : sig
  type t
  (** Incremental parser over a byte stream (TCP gives no framing). *)

  val create : unit -> t
  val feed : t -> bytes -> unit

  val next : t -> (value option, string) result
  (** [Ok None] = need more input; [Error _] = protocol violation. *)

  val buffered : t -> int
end
