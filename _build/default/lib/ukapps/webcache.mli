(** MiniCache-style web cache (paper §6.3, Fig 22).

    A content cache whose hot path is open()+read() of small objects. Two
    builds:
    - {!Vfs_backed}: objects served through vfscore (fd allocation, mount
      resolution, path walk) over any mounted filesystem;
    - {!Shfs_backed}: vfscore removed — names hash straight into SHFS.

    {!measure_open} reproduces the paper's measurement: the mean virtual
    time of one open (+close) out of a loop of [iterations] requests, for
    both present and absent files. *)

type backend =
  | Vfs_backed of Ukvfs.Vfs.t * string  (** vfs + directory prefix, e.g. "/" *)
  | Shfs_backed of Ukvfs.Shfs.t

type t

val create : clock:Uksim.Clock.t -> backend -> t

val populate : t -> n_files:int -> ?size:int -> unit -> (unit, string) result
(** Create [n_files] objects named "f<i>.html" of [size] bytes (default
    4096). For VFS backends the files are created through the mounted
    filesystem; SHFS is populated directly. *)

val fetch : t -> string -> bytes option
(** Full open/read/close of an object. *)

type open_latency = { hit_ns : float; miss_ns : float }

val measure_open : t -> ?iterations:int -> unit -> open_latency
(** Mean open() latency over [iterations] (default 1000) requests, for an
    existing file and for a missing one (Fig 22's two cases). *)

val requests_served : t -> int
