let work_cycles = 2400 (* printf formatting + serial console write *)

let main ~clock ?(greeting = "Hello world!") () =
  Uksim.Clock.advance clock work_cycles;
  greeting
