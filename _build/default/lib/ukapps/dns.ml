module S = Uknetstack.Stack
module A = Uknetstack.Addr

type qtype = A | Aaaa | Cname | Ns | Txt | Unknown_qtype of int

type rcode = No_error | Form_err | Serv_fail | Nx_domain | Not_impl

type question = { qname : string; qtype : qtype }

type rr = { name : string; rtype : qtype; ttl : int; rdata : rdata }

and rdata =
  | Ipv4_addr of A.Ipv4.t
  | Ipv6_addr of string
  | Name of string
  | Text of string

type message = {
  id : int;
  query : bool;
  rcode : rcode;
  recursion_desired : bool;
  questions : question list;
  answers : rr list;
  authority : rr list;
}

let qtype_code = function
  | A -> 1
  | Ns -> 2
  | Cname -> 5
  | Txt -> 16
  | Aaaa -> 28
  | Unknown_qtype v -> v

let qtype_of_code = function
  | 1 -> A
  | 2 -> Ns
  | 5 -> Cname
  | 16 -> Txt
  | 28 -> Aaaa
  | v -> Unknown_qtype v

let rcode_code = function
  | No_error -> 0
  | Form_err -> 1
  | Serv_fail -> 2
  | Nx_domain -> 3
  | Not_impl -> 4

let rcode_of_code = function
  | 0 -> No_error
  | 1 -> Form_err
  | 2 -> Serv_fail
  | 3 -> Nx_domain
  | _ -> Not_impl

let normalize name = String.lowercase_ascii name

(* --- encoding ------------------------------------------------------------- *)

let u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let u32 buf v =
  u16 buf (v lsr 16);
  u16 buf (v land 0xffff)

(* Write a domain name, compressing against suffixes already emitted.
   [seen] maps a normalized suffix ("example.com") to its offset. *)
let write_name buf seen name =
  let labels = List.filter (fun l -> l <> "") (String.split_on_char '.' (normalize name)) in
  let rec go = function
    | [] -> Buffer.add_char buf '\000'
    | (label :: rest) as suffix_labels ->
        let suffix = String.concat "." suffix_labels in
        (match Hashtbl.find_opt seen suffix with
        | Some off ->
            (* 2-byte compression pointer: 0b11 prefix. *)
            u16 buf (0xc000 lor off)
        | None ->
            if Buffer.length buf < 0x3fff then Hashtbl.replace seen suffix (Buffer.length buf);
            if String.length label > 63 then invalid_arg "Dns: label too long";
            Buffer.add_char buf (Char.chr (String.length label));
            Buffer.add_string buf label;
            go rest)
  in
  go labels

let write_rdata buf seen = function
  | Ipv4_addr ip -> u32 buf (A.Ipv4.to_int ip)
  | Ipv6_addr s | Text s ->
      Buffer.add_char buf (Char.chr (min 255 (String.length s)));
      Buffer.add_string buf (String.sub s 0 (min 255 (String.length s)))
  | Name n -> write_name buf seen n

let write_rr buf seen (r : rr) =
  write_name buf seen r.name;
  u16 buf (qtype_code r.rtype);
  u16 buf 1 (* class IN *);
  u32 buf r.ttl;
  (* rdlength back-patched. *)
  let len_pos = Buffer.length buf in
  u16 buf 0;
  let before = Buffer.length buf in
  write_rdata buf seen r.rdata;
  let rdlen = Buffer.length buf - before in
  let out = Buffer.to_bytes buf in
  Bytes.set out len_pos (Char.chr ((rdlen lsr 8) land 0xff));
  Bytes.set out (len_pos + 1) (Char.chr (rdlen land 0xff));
  Buffer.clear buf;
  Buffer.add_bytes buf out

let encode m =
  let buf = Buffer.create 128 in
  let seen = Hashtbl.create 16 in
  u16 buf m.id;
  let flags =
    (if m.query then 0 else 0x8000)
    lor (if m.recursion_desired then 0x0100 else 0)
    lor rcode_code m.rcode
  in
  u16 buf flags;
  u16 buf (List.length m.questions);
  u16 buf (List.length m.answers);
  u16 buf (List.length m.authority);
  u16 buf 0 (* additional *);
  List.iter
    (fun q ->
      write_name buf seen q.qname;
      u16 buf (qtype_code q.qtype);
      u16 buf 1)
    m.questions;
  List.iter (fun r -> write_rr buf seen r) m.answers;
  List.iter (fun r -> write_rr buf seen r) m.authority;
  Buffer.to_bytes buf

(* --- decoding ------------------------------------------------------------- *)

exception Bad of string

let rd_u8 b pos =
  if pos >= Bytes.length b then raise (Bad "truncated");
  Char.code (Bytes.get b pos)

let rd_u16 b pos = (rd_u8 b pos lsl 8) lor rd_u8 b (pos + 1)
let rd_u32 b pos = (rd_u16 b pos lsl 16) lor rd_u16 b (pos + 2)

(* Returns (name, next position). Follows compression pointers with a hop
   bound so crafted loops cannot hang the parser. *)
let rd_name b pos =
  let rec go pos hops acc =
    if hops > 32 then raise (Bad "compression loop");
    let len = rd_u8 b pos in
    if len = 0 then (String.concat "." (List.rev acc), pos + 1)
    else if len land 0xc0 = 0xc0 then begin
      let target = ((len land 0x3f) lsl 8) lor rd_u8 b (pos + 1) in
      if target >= pos then raise (Bad "forward compression pointer");
      let name, _ = go target (hops + 1) acc in
      (name, pos + 2)
    end
    else begin
      if len > 63 then raise (Bad "bad label length");
      if pos + 1 + len > Bytes.length b then raise (Bad "label out of bounds");
      go (pos + 1 + len) hops (Bytes.sub_string b (pos + 1) len :: acc)
    end
  in
  go pos 0 []

let rd_question b pos =
  let qname, pos = rd_name b pos in
  let qtype = qtype_of_code (rd_u16 b pos) in
  ({ qname; qtype }, pos + 4)

let rd_rr b pos =
  let name, pos = rd_name b pos in
  let rtype = qtype_of_code (rd_u16 b pos) in
  let ttl = rd_u32 b (pos + 4) in
  let rdlen = rd_u16 b (pos + 8) in
  let rstart = pos + 10 in
  if rstart + rdlen > Bytes.length b then raise (Bad "rdata out of bounds");
  let rdata =
    match rtype with
    | A ->
        if rdlen <> 4 then raise (Bad "bad A rdata");
        Ipv4_addr (A.Ipv4.of_int (rd_u32 b rstart))
    | Cname | Ns ->
        let target, _ = rd_name b rstart in
        Name target
    | Txt | Aaaa ->
        let n = rd_u8 b rstart in
        if rstart + 1 + n > Bytes.length b then raise (Bad "bad txt rdata");
        let s = Bytes.sub_string b (rstart + 1) n in
        if rtype = Txt then Text s else Ipv6_addr s
    | Unknown_qtype _ -> Text (Bytes.sub_string b rstart rdlen)
  in
  ({ name; rtype; ttl; rdata }, rstart + rdlen)

let decode b =
  match
    if Bytes.length b < 12 then raise (Bad "short header");
    let id = rd_u16 b 0 in
    let flags = rd_u16 b 2 in
    let qd = rd_u16 b 4 and an = rd_u16 b 6 and ns = rd_u16 b 8 in
    let rec read_n f pos n acc =
      if n = 0 then (List.rev acc, pos)
      else begin
        let item, pos = f b pos in
        read_n f pos (n - 1) (item :: acc)
      end
    in
    let questions, pos = read_n rd_question 12 qd [] in
    let answers, pos = read_n rd_rr pos an [] in
    let authority, _ = read_n rd_rr pos ns [] in
    {
      id;
      query = flags land 0x8000 = 0;
      rcode = rcode_of_code (flags land 0xf);
      recursion_desired = flags land 0x0100 <> 0;
      questions;
      answers;
      authority;
    }
  with
  | m -> Ok m
  | exception Bad e -> Error ("dns: " ^ e)

let query ?(id = 0x1234) qname qtype =
  {
    id;
    query = true;
    rcode = No_error;
    recursion_desired = true;
    questions = [ { qname = normalize qname; qtype } ];
    answers = [];
    authority = [];
  }

(* --- server ----------------------------------------------------------------- *)

module Server = struct
  type t = {
    clock : Uksim.Clock.t;
    zone : (string, rr list ref) Hashtbl.t; (* normalized name -> records *)
    mutable served : int;
    mutable nx : int;
  }

  let lookup_cost = 350 (* zone hash + response assembly *)

  let add_record t ~name r =
    let key = normalize name in
    match Hashtbl.find_opt t.zone key with
    | Some l -> l := r :: !l
    | None -> Hashtbl.replace t.zone key (ref [ r ])

  let add_a t ~name ?(ttl = 300) addr =
    add_record t ~name
      { name = normalize name; rtype = A; ttl; rdata = Ipv4_addr (A.Ipv4.of_string addr) }

  let records_for t name rtype =
    match Hashtbl.find_opt t.zone (normalize name) with
    | None -> None
    | Some l ->
        Some
          (List.filter
             (fun r -> r.rtype = rtype || r.rtype = Cname)
             (List.rev !l))

  let resolve t (m : message) =
    t.served <- t.served + 1;
    Uksim.Clock.advance t.clock lookup_cost;
    let reply rcode answers =
      { m with query = false; rcode; answers; authority = [] }
    in
    match m.questions with
    | [] -> reply Form_err []
    | { qname; qtype } :: _ -> (
        match qtype with
        | Unknown_qtype _ -> reply Not_impl []
        | _ -> (
            (* Follow CNAME chains up to 8 deep, accumulating records. *)
            let rec chase name depth acc =
              if depth > 8 then List.rev acc
              else
                match records_for t name qtype with
                | None -> List.rev acc
                | Some rs ->
                    let acc = List.rev_append rs acc in
                    (match
                       List.find_opt (fun r -> r.rtype = Cname) rs
                     with
                    | Some { rdata = Name target; _ } -> chase target (depth + 1) acc
                    | Some _ | None -> List.rev acc)
            in
            match chase qname 0 [] with
            | [] ->
                t.nx <- t.nx + 1;
                reply Nx_domain []
            | answers -> reply No_error answers))

  let create ~clock ~sched ~stack ?(port = 53) () =
    let t = { clock; zone = Hashtbl.create 64; served = 0; nx = 0 } in
    let _ =
      Uksched.Sched.spawn sched ~name:"dnsd" ~daemon:true (fun () ->
          let sock = S.Udp_socket.bind stack ~port in
          let rec loop () =
            match S.Udp_socket.recvfrom ~block:true sock with
            | None -> ()
            | Some (src, sport, payload) ->
                (match decode payload with
                | Ok m when m.query ->
                    let reply = resolve t m in
                    S.Udp_socket.sendto sock ~dst:(src, sport) (encode reply)
                | Ok _ -> () (* ignore stray responses *)
                | Error _ ->
                    (* FORMERR with whatever id we can salvage. *)
                    let id = if Bytes.length payload >= 2 then
                        (Char.code (Bytes.get payload 0) lsl 8) lor Char.code (Bytes.get payload 1)
                      else 0
                    in
                    let err =
                      { id; query = false; rcode = Form_err; recursion_desired = false;
                        questions = []; answers = []; authority = [] }
                    in
                    S.Udp_socket.sendto sock ~dst:(src, sport) (encode err));
                loop ()
          in
          loop ())
    in
    t

  let queries_served t = t.served
  let nxdomain_count t = t.nx
end

module Client = struct
  let lookup ~clock ~stack ~server ?(port = 53) ?(qtype = A) qname =
    ignore clock;
    let sock = S.Udp_socket.bind stack ~port:(20000 + (Hashtbl.hash qname land 0x3fff)) in
    let m = query qname qtype in
    S.Udp_socket.sendto sock ~dst:(server, port) (encode m);
    let result =
      match S.Udp_socket.recvfrom ~block:true sock with
      | Some (_, _, payload) -> (
          match decode payload with
          | Ok reply when reply.id = m.id -> Ok reply
          | Ok _ -> Error "dns: mismatched transaction id"
          | Error e -> Error e)
      | None -> Error "dns: socket closed"
    in
    S.Udp_socket.close sock;
    result
end
