module S = Uknetstack.Stack

type workload = Get | Set

type result = {
  requests : int;
  elapsed_ns : float;
  rate_per_sec : float;
  errors : int;
}

(* Client-side cost of producing a command and consuming a reply — the
   benchmark tool runs on its own pinned core in the paper, so this only
   matters for pipelining depth, not for contention with the server. *)
let client_cmd_cost = 120

let run ~clock ~sched ~stack ~server ?(connections = 30) ?(pipeline = 16) ?(requests = 100_000)
    ?(value_size = 3) workload =
  let value = String.make value_size 'x' in
  let per_conn = max 1 (requests / connections) in
  let total = per_conn * connections in
  let errors = ref 0 in
  let done_count = ref 0 in
  let t_start = ref 0.0 in
  let t_end = ref 0.0 in
  let key_of i = Printf.sprintf "key:%06d" (i land 0xfff) in
  let command i =
    match workload with
    | Get -> Resp.encode_command [ "GET"; key_of i ]
    | Set -> Resp.encode_command [ "SET"; key_of i; value ]
  in
  let client_thread ci () =
    let flow = S.Tcp_socket.connect stack ~dst:server in
    let parser = Resp.Parser.create () in
    let replies_needed = ref 0 in
    let sent = ref 0 in
    let received = ref 0 in
    let rec read_replies () =
      if !replies_needed > 0 then begin
        match S.Tcp_socket.recv ~block:true stack flow ~max:65536 with
        | None -> failwith "resp_bench: server closed connection"
        | Some data ->
            Resp.Parser.feed parser data;
            let rec drain () =
              if !replies_needed > 0 then
                match Resp.Parser.next parser with
                | Ok (Some v) ->
                    Uksim.Clock.advance clock client_cmd_cost;
                    (match v with Resp.Error _ -> incr errors | _ -> ());
                    decr replies_needed;
                    incr received;
                    drain ()
                | Ok None -> ()
                | Error _ ->
                    incr errors;
                    decr replies_needed;
                    drain ()
            in
            drain ();
            read_replies ()
      end
    in
    while !sent < per_conn do
      let batch = min pipeline (per_conn - !sent) in
      let buf = Buffer.create (batch * 40) in
      for k = 0 to batch - 1 do
        Uksim.Clock.advance clock client_cmd_cost;
        Buffer.add_string buf (command ((ci * per_conn) + !sent + k))
      done;
      sent := !sent + batch;
      replies_needed := batch;
      ignore (S.Tcp_socket.send ~block:true stack flow (Buffer.to_bytes buf));
      read_replies ()
    done;
    ignore !received;
    S.Tcp_socket.close stack flow;
    done_count := !done_count + 1;
    if !done_count = connections then t_end := Uksim.Clock.ns clock
  in
  t_start := Uksim.Clock.ns clock;
  for ci = 0 to connections - 1 do
    ignore (Uksched.Sched.spawn sched ~name:(Printf.sprintf "bench-%d" ci) (client_thread ci))
  done;
  Uksched.Sched.run sched;
  let elapsed = !t_end -. !t_start in
  {
    requests = total;
    elapsed_ns = elapsed;
    rate_per_sec = Uksim.Stats.throughput_per_sec ~events:total ~elapsed_ns:elapsed;
    errors = !errors;
  }
