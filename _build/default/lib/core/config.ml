module K = Ukconf.Kopt
module E = Ukconf.Expr

type alloc_backend = Buddy | Tlsf | Tinyalloc | Mimalloc | Bootalloc | Oscar
type sched_kind = Coop | Preempt | None_
type fs_kind = No_fs | Ramfs | Ninep | Shfs_fs
type paging = Static_pt | Dynamic_pt | Protected32_pt
type libc = Nolibc | Musl | Newlib
type net_backend = No_net | Vhost_net | Vhost_user

type t = {
  app : string;
  platform : string;
  alloc : alloc_backend;
  sched : sched_kind;
  net : net_backend;
  fs : fs_kind;
  paging : paging;
  libc : libc;
  mem_bytes : int;
  dce : bool;
  lto : bool;
  asan : bool;
  mpk : bool;
}

let alloc_backend_name = function
  | Buddy -> "buddy"
  | Tlsf -> "tlsf"
  | Tinyalloc -> "tinyalloc"
  | Mimalloc -> "mimalloc"
  | Bootalloc -> "bootalloc"
  | Oscar -> "oscar"

let alloc_lib b = "alloc-" ^ alloc_backend_name b

let sched_name = function Coop -> "coop" | Preempt -> "preempt" | None_ -> "none"
let sched_lib = function Coop -> Some "sched-coop" | Preempt -> Some "sched-preempt" | None_ -> None
let net_name = function No_net -> "none" | Vhost_net -> "vhost-net" | Vhost_user -> "vhost-user"
let fs_name = function No_fs -> "none" | Ramfs -> "ramfs" | Ninep -> "9pfs" | Shfs_fs -> "shfs"

let paging_name = function
  | Static_pt -> "static"
  | Dynamic_pt -> "dynamic"
  | Protected32_pt -> "protected32"

let libc_name = function Nolibc -> "nolibc" | Musl -> "musl" | Newlib -> "newlib"

let schema () =
  let s = Ukconf.Schema.create () in
  let menu_core = [ "Unikraft" ] in
  let menu_lib = [ "Library Configuration" ] in
  Ukconf.Schema.add_all s
    [
      K.choice "PLAT" ~doc:"target platform" ~default:"plat-kvm"
        ~alternatives:Ukbuild.Catalog.platforms ~menu:menu_core;
      K.choice "APP" ~doc:"application" ~default:"app-hello" ~alternatives:Ukbuild.Catalog.apps
        ~menu:menu_core;
      K.bool "HAVE_SCHED" ~doc:"threading support" ~menu:menu_lib;
      K.choice "SCHED" ~doc:"scheduler implementation" ~default:"coop"
        ~alternatives:[ "coop"; "preempt"; "none" ] ~menu:menu_lib;
      K.bool "HAVE_ALLOC" ~doc:"dynamic memory" ~default:true ~menu:menu_lib;
      K.choice "ALLOC" ~doc:"allocator backend" ~default:"tlsf"
        ~alternatives:[ "buddy"; "tlsf"; "tinyalloc"; "mimalloc"; "bootalloc"; "oscar" ]
        ~menu:menu_lib;
      (* mimalloc needs a worker thread (paper §3.2: pthread dependency). *)
      K.bool "ALLOC_MIMALLOC" ~doc:"mimalloc selected" ~selects:[ "HAVE_SCHED" ] ~menu:menu_lib;
      K.bool "HAVE_NETDEV" ~doc:"uknetdev API" ~menu:menu_lib;
      K.bool "LWIP" ~doc:"lwip network stack"
        ~depends:(E.Var "HAVE_NETDEV") ~selects:[ "HAVE_SCHED" ] ~menu:menu_lib;
      K.choice "NETDEV_BACKEND" ~doc:"virtio datapath" ~default:"vhost-net"
        ~alternatives:[ "none"; "vhost-net"; "vhost-user" ] ~menu:menu_lib;
      K.bool "VFSCORE" ~doc:"VFS layer" ~menu:menu_lib;
      K.choice "ROOTFS" ~doc:"root filesystem" ~default:"none"
        ~alternatives:[ "none"; "ramfs"; "9pfs"; "shfs" ] ~menu:menu_lib;
      K.bool "FS_9P" ~doc:"9pfs selected" ~selects:[ "VFSCORE" ] ~menu:menu_lib;
      K.bool "FS_RAM" ~doc:"ramfs selected" ~selects:[ "VFSCORE" ] ~menu:menu_lib;
      K.choice "PAGING" ~doc:"page-table strategy" ~default:"static"
        ~alternatives:[ "static"; "dynamic"; "protected32" ] ~menu:menu_lib;
      K.choice "LIBC" ~doc:"C library" ~default:"musl"
        ~alternatives:[ "nolibc"; "musl"; "newlib" ] ~menu:menu_lib;
      K.int "MEM_MB" ~doc:"guest memory (MiB)" ~default:32 ~min:2 ~max:4096 ~menu:menu_core;
      K.bool "OPT_DCE" ~doc:"dead code elimination" ~default:true ~menu:menu_core;
      K.bool "OPT_LTO" ~doc:"link-time optimization" ~default:true ~menu:menu_core;
      K.bool "ASAN" ~doc:"address sanitizer on the heap" ~menu:[ "Security" ]
        ~depends:(E.Var "HAVE_ALLOC");
      K.bool "MPK" ~doc:"MPK compartmentalization support" ~menu:[ "Security" ];
    ];
  s

let to_kconfig t =
  [
    ("PLAT", K.Choice t.platform);
    ("APP", K.Choice t.app);
    ("HAVE_SCHED", K.Bool (t.sched <> None_));
    ("SCHED", K.Choice (sched_name t.sched));
    ("HAVE_ALLOC", K.Bool true);
    ("ALLOC", K.Choice (alloc_backend_name t.alloc));
    ("ALLOC_MIMALLOC", K.Bool (t.alloc = Mimalloc));
    ("HAVE_NETDEV", K.Bool (t.net <> No_net));
    ("LWIP", K.Bool (t.net <> No_net));
    ("NETDEV_BACKEND", K.Choice (net_name t.net));
    ("VFSCORE", K.Bool (match t.fs with Ramfs | Ninep -> true | No_fs | Shfs_fs -> false));
    ("ROOTFS", K.Choice (fs_name t.fs));
    ("FS_9P", K.Bool (t.fs = Ninep));
    ("FS_RAM", K.Bool (t.fs = Ramfs));
    ("PAGING", K.Choice (paging_name t.paging));
    ("LIBC", K.Choice (libc_name t.libc));
    ("MEM_MB", K.Int (t.mem_bytes / (1024 * 1024)));
    ("OPT_DCE", K.Bool t.dce);
    ("OPT_LTO", K.Bool t.lto);
    ("ASAN", K.Bool t.asan);
    ("MPK", K.Bool t.mpk);
  ]

let resolve t =
  match Ukconf.Config.resolve (schema ()) (to_kconfig t) with
  | Ok c -> Ok c
  | Error errs ->
      Error (String.concat "; " (List.map Ukconf.Config.error_to_string errs))

let make ~app ?(platform = "plat-kvm") ?(alloc = Tlsf) ?(sched = Coop) ?(net = No_net)
    ?(fs = No_fs) ?(paging = Static_pt) ?(libc = Musl) ?(mem_mb = 32) ?(dce = true)
    ?(lto = true) ?(asan = false) ?(mpk = false) () =
  if not (List.mem app Ukbuild.Catalog.apps) then
    Error (Printf.sprintf "unknown application %s" app)
  else if not (List.mem platform Ukbuild.Catalog.platforms) then
    Error (Printf.sprintf "unknown platform %s" platform)
  else begin
    let t =
      { app; platform; alloc; sched; net; fs; paging; libc;
        mem_bytes = mem_mb * 1024 * 1024; dce; lto; asan; mpk }
    in
    (* mimalloc's worker thread needs a scheduler (select would flip
       HAVE_SCHED silently; surface it instead). *)
    if alloc = Mimalloc && sched = None_ then
      Error "mimalloc requires a scheduler (pthread dependency)"
    else
      match resolve t with
      | Ok _ -> Ok t
      | Error e -> Error e
  end

let pp ppf t =
  Fmt.pf ppf "%s on %s [alloc=%s sched=%s net=%s fs=%s paging=%s libc=%s mem=%a dce=%b lto=%b]"
    t.app t.platform (alloc_backend_name t.alloc) (sched_name t.sched) (net_name t.net)
    (fs_name t.fs) (paging_name t.paging) (libc_name t.libc) Uksim.Units.pp_bytes t.mem_bytes
    t.dce t.lto;
  if t.asan then Fmt.pf ppf " +asan";
  if t.mpk then Fmt.pf ppf " +mpk"
