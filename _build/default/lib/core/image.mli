(** Image building: configuration -> linked unikernel (Figs 2, 3, 8, 9). *)

type t = {
  config : Config.t;
  link : Ukbuild.Linker.image;
}

val build : Config.t -> (t, string) result
(** Derive the root micro-libraries from the configuration (application,
    selected backends, driver stacks) and run the linker with the
    configured DCE/LTO flags. *)

val size_bytes : t -> int
val dep_graph : t -> Ukgraph.Digraph.t
val libs : t -> string list
val pp : Format.formatter -> t -> unit
