lib/core/image.mli: Config Format Ukbuild Ukgraph
