lib/core/config.mli: Format Ukconf
