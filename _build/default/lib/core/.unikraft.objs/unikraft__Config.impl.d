lib/core/config.ml: Fmt List Printf String Ukbuild Ukconf Uksim
