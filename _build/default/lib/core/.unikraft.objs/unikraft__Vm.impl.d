lib/core/vm.ml: Config Option Printf Ukalloc Ukboot Ukdebug Uklibparam Ukmmu Ukmpk Uknetdev Uknetstack Ukplat Uksched Uksim Uksyscall Ukvfs
