lib/core/image.ml: Config Ukbuild
