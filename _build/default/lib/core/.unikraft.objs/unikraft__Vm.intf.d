lib/core/vm.mli: Config Ukalloc Ukboot Ukdebug Uklibparam Ukmmu Ukmpk Uknetdev Uknetstack Ukplat Uksched Uksim Uksyscall Ukvfs
