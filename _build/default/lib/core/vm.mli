(** VM instantiation: boot a configured image on a VMM and obtain live
    runtime components (the execution side of the paper's Fig 4).

    Booting runs the real initialization of every selected micro-library —
    page-table construction, allocator bring-up over the configured heap,
    scheduler creation, virtio device attach, filesystem mounts — on the
    virtual clock, so per-phase boot costs (Figs 10, 14, 21) come out of
    the same code that the application then uses. *)

type env = {
  config : Config.t;
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  sched : Uksched.Sched.t option;
  alloc : Ukalloc.Alloc.t;  (** the configured main allocator *)
  registry : Ukalloc.Alloc.Registry.t;
  mmu : Ukmmu.Pagetable.t;
  shim : Uksyscall.Shim.t;
  dev : Uknetdev.Netdev.t option;
  stack : Uknetstack.Stack.t option;
  vfs : Ukvfs.Vfs.t option;
  shfs : Ukvfs.Shfs.t option;
  debug : Ukdebug.Debug.t;  (** ukdebug instance; boot fires "boot.ctor" trace points *)
  params : Uklibparam.Libparam.t;  (** boot command-line tunables *)
  argv : string list;  (** remainder of the command line after "--" *)
  asan : Ukalloc.Asan.t option;  (** present when the config enables the sanitizer *)
  mpk : Ukmpk.Mpk.t option;  (** present when the config enables MPK *)
  breakdown : Ukplat.Vmm.boot_breakdown;
  report : Ukboot.Boot.report;
}

val boot :
  vmm:Ukplat.Vmm.t ->
  ?clock:Uksim.Clock.t ->
  ?engine:Uksim.Engine.t ->
  ?wire:Uknetdev.Wire.endpoint ->
  ?ip:string ->
  ?netmask:string ->
  ?gateway:string ->
  ?mac:int ->
  ?host_share:Ukvfs.Fs.t ->
  ?cmdline:string ->
  Config.t ->
  (env, string) result
(** [engine] must be the engine the attached [wire] was created on (a
    fresh one is made otherwise). [wire] is mandatory when networking is
    configured; [host_share] backs the 9p server when the root filesystem
    is 9pfs (default: an empty host-side ramfs). Default addressing:
    172.44.0.2/24 — overridable from [cmdline] via uklibparam
    ("netdev.ip=10.0.0.5 ukdebug.loglevel=4 -- app args"). *)

val run_main : env -> (env -> unit) -> unit
(** Execute the application entry point: spawned on the scheduler when one
    is configured (then the scheduler runs to quiescence), called inline
    otherwise. *)

val heap_base : int
(** Base simulated address of the guest heap. *)
