type t = { config : Config.t; link : Ukbuild.Linker.image }

let roots_of (c : Config.t) =
  let base = [ c.app ] in
  let base = Config.alloc_lib c.alloc :: base in
  let base = match Config.sched_lib c.sched with Some l -> l :: base | None -> base in
  let base = if c.net <> Config.No_net then "virtio-net" :: "lwip" :: base else base in
  let base =
    match c.fs with
    | Config.No_fs -> base
    | Config.Ramfs -> "ramfs" :: base
    | Config.Ninep -> "virtio-9p" :: base
    | Config.Shfs_fs -> "shfs" :: base
  in
  let base =
    match c.libc with
    | Config.Nolibc -> "nolibc" :: base
    | Config.Musl -> "musl" :: "glibc-compat" :: base
    | Config.Newlib -> "newlib" :: base
  in
  let base = if c.paging = Config.Dynamic_pt then "ukmmu" :: base else base in
  let base = if c.mpk then "ukmpk" :: base else base in
  let base = if c.asan then "ukasan" :: base else base in
  base

let build config =
  match Config.resolve config with
  | Error e -> Error e
  | Ok _ -> (
      let registry = Ukbuild.Catalog.registry () in
      let flags = { Ukbuild.Linker.dce = config.Config.dce; lto = config.Config.lto } in
      match
        Ukbuild.Linker.link registry ~name:config.Config.app ~platform:config.Config.platform
          ~roots:(roots_of config) ~flags ()
      with
      | Ok link -> Ok { config; link }
      | Error e -> Error e)

let size_bytes t = t.link.Ukbuild.Linker.image_bytes
let dep_graph t = t.link.Ukbuild.Linker.dep_graph
let libs t = t.link.Ukbuild.Linker.libs
let pp ppf t = Ukbuild.Linker.pp_image ppf t.link
