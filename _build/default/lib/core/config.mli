(** The Unikraft configuration menu (paper §3: "a Kconfig-based menu for
    users to select which micro-libraries to use in an application
    build").

    Build a configuration with {!make} (or {!resolve} for raw option
    lists); the result selects which micro-libraries are linked into the
    image ({!Image}) and which runtime components a VM instantiates
    ({!Vm}). *)

val schema : unit -> Ukconf.Schema.t
(** The full menu: platform/app/allocator/scheduler choices, network and
    filesystem stacks, paging mode, memory size, libc, DCE/LTO. Dependency
    edges mirror the paper's (e.g. lwip depends on uknetdev; mimalloc
    selects threading for its worker; 9pfs selects vfscore). *)

type alloc_backend = Buddy | Tlsf | Tinyalloc | Mimalloc | Bootalloc | Oscar
type sched_kind = Coop | Preempt | None_
type fs_kind = No_fs | Ramfs | Ninep | Shfs_fs
type paging = Static_pt | Dynamic_pt | Protected32_pt
type libc = Nolibc | Musl | Newlib
type net_backend = No_net | Vhost_net | Vhost_user

type t = {
  app : string;  (** catalog app name, e.g. "app-nginx" *)
  platform : string;  (** catalog platform, e.g. "plat-kvm" *)
  alloc : alloc_backend;
  sched : sched_kind;
  net : net_backend;
  fs : fs_kind;
  paging : paging;
  libc : libc;
  mem_bytes : int;
  dce : bool;
  lto : bool;
  asan : bool;  (** wrap the allocator with the sanitizer (§7) *)
  mpk : bool;  (** provision MPK compartmentalization (§7) *)
}

val make :
  app:string ->
  ?platform:string ->
  ?alloc:alloc_backend ->
  ?sched:sched_kind ->
  ?net:net_backend ->
  ?fs:fs_kind ->
  ?paging:paging ->
  ?libc:libc ->
  ?mem_mb:int ->
  ?dce:bool ->
  ?lto:bool ->
  ?asan:bool ->
  ?mpk:bool ->
  unit ->
  (t, string) result
(** Defaults: plat-kvm, tlsf, coop, no net, no fs, static page table,
    musl, 32 MB, DCE+LTO on, sanitizer and MPK off. Validates through the
    Kconfig schema, so dependency violations (e.g. mimalloc with
    [sched = None_]) are reported. *)

val to_kconfig : t -> (string * Ukconf.Kopt.value) list
(** The option assignment this configuration denotes. *)

val resolve : t -> (Ukconf.Config.t, string) result
(** Validate against {!schema}. *)

val alloc_backend_name : alloc_backend -> string
val alloc_lib : alloc_backend -> string
(** Catalog micro-library name ("alloc-tlsf"). *)

val sched_lib : sched_kind -> string option
val pp : Format.formatter -> t -> unit
