type key = int

type rights = No_access | Read_only | Read_write

exception Protection_fault of { addr : int; key : int; write : bool }

let page = 4096
let n_keys = 16
let wrpkru_cost = 23
let check_cost = 2 (* the PKRU check is done by the MMU in parallel *)

type t = {
  clock : Uksim.Clock.t;
  names : string option array; (* allocated keys *)
  pages : (int, key) Hashtbl.t; (* page number -> key *)
  pkru : rights array;
  mutable total_crossings : int;
  mutable fault_count : int;
}

let default_key = 0

let create ~clock =
  let t =
    {
      clock;
      names = Array.make n_keys None;
      pages = Hashtbl.create 256;
      pkru = Array.make n_keys Read_write;
      total_crossings = 0;
      fault_count = 0;
    }
  in
  t.names.(0) <- Some "default";
  t

let alloc_key t ?name () =
  let rec find i =
    if i >= n_keys then Error "no free protection keys (hardware has 16)"
    else if t.names.(i) = None then begin
      t.names.(i) <- Some (Option.value name ~default:(Printf.sprintf "pkey%d" i));
      (* Fresh keys start inaccessible, as pkey_alloc with access rights
         would configure. *)
      t.pkru.(i) <- No_access;
      Ok i
    end
    else find (i + 1)
  in
  find 1

let key_name t k =
  match t.names.(k) with Some n -> n | None -> "(unallocated)"

let free_key t k =
  if k = 0 then invalid_arg "Mpk.free_key: cannot free the default key";
  t.names.(k) <- None;
  t.pkru.(k) <- Read_write;
  Hashtbl.iter
    (fun pg key -> if key = k then Hashtbl.replace t.pages pg default_key)
    (Hashtbl.copy t.pages)

let bind_range t k ~base ~len =
  if len <= 0 || base < 0 then invalid_arg "Mpk.bind_range: bad range";
  if t.names.(k) = None then invalid_arg "Mpk.bind_range: unallocated key";
  let first = base / page and last = (base + len - 1) / page in
  for pg = first to last do
    match Hashtbl.find_opt t.pages pg with
    | Some existing when existing <> k && existing <> default_key ->
        invalid_arg
          (Printf.sprintf "Mpk.bind_range: page %#x already bound to key %d" (pg * page)
             existing)
    | Some _ | None -> ()
  done;
  for pg = first to last do
    Hashtbl.replace t.pages pg k
  done

let key_of_addr t addr =
  match Hashtbl.find_opt t.pages (addr / page) with Some k -> k | None -> default_key

let set_rights t k r =
  Uksim.Clock.advance t.clock wrpkru_cost;
  t.pkru.(k) <- r

let rights t k = t.pkru.(k)

let check ~write t addr =
  Uksim.Clock.advance t.clock check_cost;
  let k = key_of_addr t addr in
  let ok =
    match t.pkru.(k) with
    | Read_write -> true
    | Read_only -> not write
    | No_access -> false
  in
  if not ok then begin
    t.fault_count <- t.fault_count + 1;
    raise (Protection_fault { addr; key = k; write })
  end

let check_read t addr = check ~write:false t addr
let check_write t addr = check ~write:true t addr

let load t addr =
  check_read t addr;
  Uksim.Clock.advance t.clock Uksim.Cost.cache_hit

let store t addr =
  check_write t addr;
  Uksim.Clock.advance t.clock Uksim.Cost.cache_hit

module Gate = struct
  type mpk = t

  type t = { mpk : mpk; gname : string; target : key; mutable count : int }

  let create mpk ~name ~target_key = { mpk; gname = name; target = target_key; count = 0 }

  let enter g f =
    let saved_target = g.mpk.pkru.(g.target) in
    let saved_default = g.mpk.pkru.(default_key) in
    g.count <- g.count + 1;
    g.mpk.total_crossings <- g.mpk.total_crossings + 1;
    (* Two WRPKRU writes in, two out — the measured gate cost of the
       MPK-isolation papers. *)
    set_rights g.mpk g.target Read_write;
    set_rights g.mpk default_key Read_only;
    let restore () =
      set_rights g.mpk g.target saved_target;
      set_rights g.mpk default_key saved_default
    in
    match f () with
    | v ->
        restore ();
        v
    | exception e ->
        restore ();
        raise e

  let crossings g = g.count
end

let crossings_total t = t.total_crossings
let faults t = t.fault_count
