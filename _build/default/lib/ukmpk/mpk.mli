(** Intra-unikernel compartmentalization with Intel MPK (paper §7:
    "initial support for hardware compartmentalization with Intel MPK",
    and the Iso-Unik / libmpk line of work it cites).

    MPK tags pages with one of 16 protection keys; a per-thread register
    (PKRU) grants or denies read/write per key, switchable in user mode in
    ~20-30 cycles (no page-table walk). We model exactly that: a
    {!Domain_}: a protection key; address ranges are bound to keys at page
    granularity; every access is checked against the current PKRU value;
    {!Gate}s implement the call-gate discipline (switch PKRU, call,
    restore) used to cross compartments safely. *)

type t
type key = private int

exception Protection_fault of { addr : int; key : int; write : bool }

val create : clock:Uksim.Clock.t -> t

val alloc_key : t -> ?name:string -> unit -> (key, string) result
(** At most 15 allocatable keys (key 0 is the default domain), as in
    hardware. *)

val key_name : t -> key -> string
val free_key : t -> key -> unit
(** Unbinds all ranges bound to the key. *)

val default_key : key

val bind_range : t -> key -> base:int -> len:int -> unit
(** Tag [base, base+len) (page-granular, 4 KiB) with [key]; raises
    [Invalid_argument] if any page is already bound to another key. *)

val key_of_addr : t -> int -> key
(** [default_key] for unbound addresses. *)

(** {1 PKRU} *)

type rights = No_access | Read_only | Read_write

val set_rights : t -> key -> rights -> unit
(** Update the current thread's PKRU entry for [key]. Charges the WRPKRU
    cost. *)

val rights : t -> key -> rights

val check_read : t -> int -> unit
val check_write : t -> int -> unit
(** Validate an access at the current PKRU; raise {!Protection_fault}
    otherwise. Charges the (cheap) check cost. *)

val load : t -> int -> unit
(** [check_read] + memory-access cost. *)

val store : t -> int -> unit

(** {1 Call gates} *)

module Gate : sig
  type mpk := t
  type t

  val create : mpk -> name:string -> target_key:key -> t
  (** A gate into the compartment [target_key]. *)

  val enter : t -> (unit -> 'a) -> 'a
  (** Switch PKRU to grant [Read_write] on the target key and revoke
      write on the default domain for the duration of the call, then
      restore the previous PKRU — the paper's "maintain safety properties
      as the image is linked together" discipline. Exceptions restore the
      PKRU before propagating. *)

  val crossings : t -> int
end

val wrpkru_cost : int
(** Cycles per PKRU update (~23 on Skylake-class hardware). *)

val crossings_total : t -> int
val faults : t -> int
