lib/ukmpk/mpk.mli: Uksim
