lib/ukmpk/mpk.ml: Array Hashtbl Option Printf Uksim
