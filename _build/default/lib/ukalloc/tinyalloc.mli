(** tinyalloc (thi.ng; paper §5.5) — a small first-fit allocator.

    Blocks live on three lists (fresh / used / free). Allocation walks the
    free list first-fit and otherwise carves a fresh block from the heap
    top; free moves the block to the address-ordered free list and then
    compacts (merges address-adjacent free blocks). The list walks make it
    very fast for small live sets and progressively slower under churn —
    the behaviour behind the paper's Fig 16 crossover at ~1000 queries. *)

val create : ?max_blocks:int -> clock:Uksim.Clock.t -> base:int -> len:int -> unit -> Alloc.t
(** [max_blocks] caps block descriptors as in the C original (default
    2^20 — the paper's port raises the C default of 256 to run SQLite's
    60k-insert workload). *)
