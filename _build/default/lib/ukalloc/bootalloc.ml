(* Cycle costs for the trivial bump-pointer paths. *)
let op_cost = 10
let init_cost = 400

let create ~clock ~base ~len =
  if len <= 0 || base < 0 then invalid_arg "Bootalloc.create";
  Uksim.Clock.advance clock init_cost;
  let cursor = ref base in
  let limit = base + len in
  let st = ref Alloc.zero_stats in
  let bump inc f =
    st := { !st with bytes_in_use = !st.bytes_in_use + inc };
    if !st.bytes_in_use > !st.peak_bytes then st := { !st with peak_bytes = !st.bytes_in_use };
    st := f !st
  in
  let memalign ~align size =
    Uksim.Clock.advance clock op_cost;
    if size <= 0 || not (Alloc.is_power_of_two align) then None
    else begin
      let addr = Alloc.round_up !cursor align in
      if addr + size > limit then begin
        st := { !st with failed = !st.failed + 1 };
        None
      end
      else begin
        cursor := addr + size;
        bump size (fun s -> { s with allocs = s.allocs + 1 });
        Some addr
      end
    end
  in
  let malloc size = memalign ~align:16 size in
  let calloc n size = if n <= 0 || size <= 0 then None else malloc (n * size) in
  let free _addr =
    (* Region allocator: individual frees are ignored by design. *)
    Uksim.Clock.advance clock 2;
    st := { !st with frees = !st.frees + 1 }
  in
  let realloc addr size =
    if addr = 0 then malloc size
    else
      match malloc size with
      | None -> None
      | Some naddr ->
          (* Old contents would be copied; charge a conservative copy. *)
          Uksim.Clock.advance clock (Uksim.Cost.memcpy size);
          Some naddr
  in
  let availmem () = limit - !cursor in
  {
    Alloc.name = "bootalloc";
    malloc;
    calloc;
    memalign;
    free;
    realloc;
    availmem;
    stats = (fun () -> !st);
  }
