(** mimalloc-style allocator (Leijen et al.; paper §5.5).

    Free-list sharding: memory is carved into 64 KiB pages, each dedicated
    to one size class and carrying its own free list split in two shards
    ([free] for allocation, [local_free] collecting frees). The hot path is
    a single list pop; when [free] runs dry the shards are swapped; when a
    page is exhausted a fresh page is carved from the segment area. This
    gives the flat, load-insensitive profile that wins the paper's
    high-load SQLite and Redis runs (Figs 16, 18).

    The paper notes mimalloc has a pthread dependency and needs a second
    boot-time allocator to start its worker; we charge that extra
    initialization here, which is why it boots slower than tlsf/tinyalloc
    in Fig 14. *)

val page_size : int
val huge_threshold : int
(** Requests above this bypass pages and are bump-allocated. *)

val create : clock:Uksim.Clock.t -> base:int -> len:int -> Alloc.t
