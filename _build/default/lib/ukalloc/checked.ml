exception Violation of string

module Imap = Map.Make (Int)

type t = {
  inner : Alloc.t;
  mutable live : int Imap.t; (* addr -> size *)
  checked : Alloc.t;
}

let violation fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

let overlaps live addr size =
  (* A block [addr, addr+size) overlaps a live block iff the closest live
     block starting at or below addr extends past addr, or a live block
     starts inside the new block. *)
  let below = Imap.find_last_opt (fun a -> a <= addr) live in
  let above = Imap.find_first_opt (fun a -> a >= addr) live in
  (match below with Some (a, s) -> a + s > addr | None -> false)
  || (match above with Some (a, _) -> a < addr + size | None -> false)

let record t ~what ~align addr size =
  if addr land (align - 1) <> 0 then
    violation "%s: %s returned %#x not aligned to %d" t.inner.Alloc.name what addr align;
  if overlaps t.live addr size then
    violation "%s: %s returned %#x..%#x overlapping a live block" t.inner.Alloc.name what addr
      (addr + size);
  t.live <- Imap.add addr size t.live

let forget t ~what addr =
  if not (Imap.mem addr t.live) then
    violation "%s: %s of unknown address %#x" t.inner.Alloc.name what addr;
  t.live <- Imap.remove addr t.live

let wrap inner =
  let rec t =
    {
      inner;
      live = Imap.empty;
      checked =
        {
          Alloc.name = inner.Alloc.name ^ "+checked";
          malloc =
            (fun size ->
              match inner.Alloc.malloc size with
              | None -> None
              | Some addr ->
                  record t ~what:"malloc" ~align:16 addr size;
                  Some addr);
          calloc =
            (fun n size ->
              match inner.Alloc.calloc n size with
              | None -> None
              | Some addr ->
                  record t ~what:"calloc" ~align:16 addr (n * size);
                  Some addr);
          memalign =
            (fun ~align size ->
              match inner.Alloc.memalign ~align size with
              | None -> None
              | Some addr ->
                  record t ~what:"memalign" ~align addr size;
                  Some addr);
          free =
            (fun addr ->
              forget t ~what:"free" addr;
              inner.Alloc.free addr);
          realloc =
            (fun addr size ->
              if addr <> 0 && not (Imap.mem addr t.live) then
                violation "%s: realloc of unknown address %#x" inner.Alloc.name addr;
              match inner.Alloc.realloc addr size with
              | None -> None
              | Some naddr ->
                  if addr <> 0 then t.live <- Imap.remove addr t.live;
                  if overlaps t.live naddr size then
                    violation "%s: realloc returned overlapping block %#x" inner.Alloc.name naddr;
                  t.live <- Imap.add naddr size t.live;
                  Some naddr);
          availmem = inner.Alloc.availmem;
          stats = inner.Alloc.stats;
        };
    }
  in
  t

let alloc t = t.checked
let live_count t = Imap.cardinal t.live
let live_bytes t = Imap.fold (fun _ s acc -> acc + s) t.live 0
