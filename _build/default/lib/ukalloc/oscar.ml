let page = 4096
let permission_cost = 450 (* page-table permission update per alloc/free *)
let base_cost = 40
let init_cost = 3000

type state = {
  clock : Uksim.Clock.t;
  mutable shadow : int; (* monotonically advancing shadow address *)
  mutable phys_used : int;
  phys_len : int;
  live : (int, int) Hashtbl.t; (* shadow addr -> payload size *)
  mutable st : Alloc.stats;
}

let charge t c = Uksim.Clock.advance t.clock c

let do_malloc t ~align size =
  charge t (base_cost + permission_cost);
  if size <= 0 || not (Alloc.is_power_of_two align) then None
  else begin
    let pages = (size + page - 1) / page in
    let need = pages * page in
    if t.phys_used + need > t.phys_len then begin
      t.st <- { t.st with failed = t.st.failed + 1 };
      None
    end
    else begin
      let addr = Alloc.round_up t.shadow (max align page) in
      t.shadow <- addr + need + page (* guard page *);
      t.phys_used <- t.phys_used + need;
      Hashtbl.replace t.live addr size;
      let in_use = t.st.bytes_in_use + size in
      t.st <-
        {
          t.st with
          allocs = t.st.allocs + 1;
          bytes_in_use = in_use;
          peak_bytes = max t.st.peak_bytes in_use;
        };
      Some addr
    end
  end

let do_free t addr =
  charge t (base_cost + permission_cost);
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg (Printf.sprintf "Oscar.free: unknown address %#x" addr)
  | Some size ->
      Hashtbl.remove t.live addr;
      let pages = (size + page - 1) / page in
      t.phys_used <- t.phys_used - (pages * page);
      t.st <- { t.st with frees = t.st.frees + 1; bytes_in_use = t.st.bytes_in_use - size }

let create ~clock ~base ~len =
  if len < page then invalid_arg "Oscar.create: region too small";
  Uksim.Clock.advance clock init_cost;
  let t =
    {
      clock;
      shadow = base;
      phys_used = 0;
      phys_len = len;
      live = Hashtbl.create 128;
      st = Alloc.zero_stats;
    }
  in
  let malloc size = do_malloc t ~align:16 size in
  let calloc n size = if n <= 0 || size <= 0 then None else malloc (n * size) in
  let realloc addr size =
    if addr = 0 then malloc size
    else
      match Hashtbl.find_opt t.live addr with
      | None -> None
      | Some old ->
          (* Oscar never reuses addresses: realloc always moves. *)
          (match malloc size with
          | None -> None
          | Some naddr ->
              charge t (Uksim.Cost.memcpy (min old size));
              do_free t addr;
              Some naddr)
  in
  {
    Alloc.name = "oscar";
    malloc;
    calloc;
    memalign = (fun ~align size -> do_malloc t ~align size);
    free = (fun a -> do_free t a);
    realloc;
    availmem = (fun () -> t.phys_len - t.phys_used);
    stats = (fun () -> { t.st with metadata_bytes = Hashtbl.length t.live * 16 });
  }
