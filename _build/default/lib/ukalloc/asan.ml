type violation =
  | Heap_buffer_overflow of { addr : int; block : int }
  | Use_after_free of { addr : int; block : int }
  | Double_free of { addr : int }
  | Wild_access of { addr : int }

exception Asan of violation

let violation_to_string = function
  | Heap_buffer_overflow { addr; block } ->
      Printf.sprintf "heap-buffer-overflow at %#x (block %#x)" addr block
  | Use_after_free { addr; block } -> Printf.sprintf "use-after-free at %#x (block %#x)" addr block
  | Double_free { addr } -> Printf.sprintf "double-free of %#x" addr
  | Wild_access { addr } -> Printf.sprintf "wild access at %#x" addr

let shadow_check_cost = 6 (* shadow byte load + compare per access *)
let poison_base_cost = 28 (* quarantine bookkeeping per malloc/free *)

(* Poisoning writes one shadow byte per 8 payload bytes plus the two
   redzones. *)
let poison_cost ~redzone size = poison_base_cost + ((size / 8) + (redzone / 4)) / 4

module Imap = Map.Make (Int)

type region = { payload : int; size : int; inner : int (* inner block start *) }

type t = {
  clock : Uksim.Clock.t;
  inner_alloc : Alloc.t;
  redzone : int;
  quarantine_cap : int;
  mutable live : region Imap.t; (* payload addr -> region *)
  mutable freed : region Imap.t; (* payload addr -> region, quarantined *)
  quarantine : int Queue.t; (* payload addrs, FIFO *)
  checked : Alloc.t;
  mutable checks : int;
}

let charge t c = Uksim.Clock.advance t.clock c

(* Locate the region (live or quarantined) whose padded footprint covers
   [addr], distinguishing payload from redzone hits. *)
let covering_with_redzone t map addr =
  match Imap.find_last_opt (fun p -> p <= addr + t.redzone) map with
  | Some (_, r) ->
      if addr >= r.payload - t.redzone && addr < r.payload + r.size + t.redzone then
        if addr >= r.payload && addr < r.payload + r.size then Some (`Payload r)
        else Some (`Redzone r)
      else None
  | None -> None

let check_one t addr =
  t.checks <- t.checks + 1;
  charge t shadow_check_cost;
  match covering_with_redzone t t.live addr with
  | Some (`Payload _) -> ()
  | Some (`Redzone r) -> raise (Asan (Heap_buffer_overflow { addr; block = r.payload }))
  | None -> (
      match covering_with_redzone t t.freed addr with
      | Some (`Payload r | `Redzone r) ->
          raise (Asan (Use_after_free { addr; block = r.payload }))
      | None -> raise (Asan (Wild_access { addr })))

let check_range t ~addr ~len =
  if len <= 0 then invalid_arg "Asan.check: non-positive length";
  (* First, last, and the shadow granule boundaries in between. *)
  check_one t addr;
  if len > 1 then check_one t (addr + len - 1);
  let granule = 8 in
  let first = (addr / granule) + 1 in
  let last = (addr + len - 1) / granule in
  for g = first to last - 1 do
    t.checks <- t.checks + 1;
    charge t shadow_check_cost;
    ignore g
  done

let release_overflow t =
  while Queue.length t.quarantine > t.quarantine_cap do
    let payload = Queue.pop t.quarantine in
    match Imap.find_opt payload t.freed with
    | Some r ->
        t.freed <- Imap.remove payload t.freed;
        t.inner_alloc.Alloc.free r.inner
    | None -> ()
  done

let wrap ~clock ?(redzone = 32) ?(quarantine = 64) inner_alloc =
  if redzone < 8 then invalid_arg "Asan.wrap: redzone too small";
  let rec t =
    {
      clock;
      inner_alloc;
      redzone;
      quarantine_cap = quarantine;
      live = Imap.empty;
      freed = Imap.empty;
      quarantine = Queue.create ();
      checks = 0;
      checked =
        {
          Alloc.name = inner_alloc.Alloc.name ^ "+asan";
          malloc = (fun size -> asan_malloc t size);
          calloc = (fun n size -> if n <= 0 || size <= 0 then None else asan_malloc t (n * size));
          memalign = (fun ~align:_ size -> asan_malloc t size);
          free = (fun addr -> asan_free t addr);
          realloc =
            (fun addr size ->
              if addr = 0 then asan_malloc t size
              else
                match Imap.find_opt addr t.live with
                | None -> None
                | Some r -> (
                    match asan_malloc t size with
                    | None -> None
                    | Some naddr ->
                        Uksim.Clock.advance clock (Uksim.Cost.memcpy (min r.size size));
                        asan_free t addr;
                        Some naddr));
          availmem = inner_alloc.Alloc.availmem;
          stats = inner_alloc.Alloc.stats;
        };
    }
  and asan_malloc t size =
    if size <= 0 then None
    else
      match t.inner_alloc.Alloc.malloc (size + (2 * t.redzone)) with
      | None -> None
      | Some inner ->
          charge t (poison_cost ~redzone:t.redzone size);
          let payload = inner + t.redzone in
          t.live <- Imap.add payload { payload; size; inner } t.live;
          Some payload
  and asan_free t payload =
    match Imap.find_opt payload t.live with
    | Some r ->
        charge t (poison_cost ~redzone:t.redzone r.size);
        t.live <- Imap.remove payload t.live;
        t.freed <- Imap.add payload r t.freed;
        Queue.push payload t.quarantine;
        release_overflow t
    | None ->
        if Imap.mem payload t.freed then raise (Asan (Double_free { addr = payload }))
        else raise (Asan (Wild_access { addr = payload }))
  in
  t

let alloc t = t.checked
let check_read t ~addr ~len = check_range t ~addr ~len
let check_write t ~addr ~len = check_range t ~addr ~len
let checks_performed t = t.checks
