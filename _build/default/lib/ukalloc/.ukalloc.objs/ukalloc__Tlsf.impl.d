lib/ukalloc/tlsf.ml: Alloc Array Hashtbl Printf Uksim
