lib/ukalloc/tinyalloc.ml: Alloc Hashtbl List Printf Uksim
