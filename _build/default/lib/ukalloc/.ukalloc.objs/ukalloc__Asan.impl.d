lib/ukalloc/asan.ml: Alloc Int Map Printf Queue Uksim
