lib/ukalloc/buddy.mli: Alloc Uksim
