lib/ukalloc/alloc.mli:
