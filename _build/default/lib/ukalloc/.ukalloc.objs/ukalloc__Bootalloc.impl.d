lib/ukalloc/bootalloc.ml: Alloc Uksim
