lib/ukalloc/mimalloc.mli: Alloc Uksim
