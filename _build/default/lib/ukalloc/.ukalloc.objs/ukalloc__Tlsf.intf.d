lib/ukalloc/tlsf.mli: Alloc Uksim
