lib/ukalloc/checked.mli: Alloc
