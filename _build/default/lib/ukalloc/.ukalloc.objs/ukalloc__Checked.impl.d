lib/ukalloc/checked.ml: Alloc Int Map Printf
