lib/ukalloc/tinyalloc.mli: Alloc Uksim
