lib/ukalloc/buddy.ml: Alloc Array Hashtbl Printf Uksim
