lib/ukalloc/bootalloc.mli: Alloc Uksim
