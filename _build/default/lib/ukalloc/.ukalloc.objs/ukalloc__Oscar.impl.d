lib/ukalloc/oscar.ml: Alloc Hashtbl Printf Uksim
