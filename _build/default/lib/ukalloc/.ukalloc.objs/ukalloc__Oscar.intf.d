lib/ukalloc/oscar.mli: Alloc Uksim
