lib/ukalloc/alloc.ml: List Printf String
