lib/ukalloc/asan.mli: Alloc Uksim
