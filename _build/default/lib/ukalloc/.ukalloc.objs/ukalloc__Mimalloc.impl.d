lib/ukalloc/mimalloc.ml: Alloc Hashtbl List Printf Uksim
