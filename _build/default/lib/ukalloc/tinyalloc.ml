(* Port of tinyalloc's structure: a bounded pool of block descriptors, a
   first-fit free list kept in address order, a bump "fresh" area, and
   compaction on free. Costs are dominated by list walks, which is the
   point: tinyalloc degrades under fragmentation. *)

let walk_cost = 8 (* per free-list node visited *)
let base_cost = 10 (* the hot path really is tiny *)
let compact_cost = 26 (* per merge *)
let init_cost = 1500

type block = { mutable addr : int; mutable size : int }

type state = {
  clock : Uksim.Clock.t;
  limit : int;
  max_blocks : int;
  mutable top : int; (* bump pointer for fresh blocks *)
  mutable free : block list; (* address-ordered *)
  mutable used : (int, block) Hashtbl.t;
  mutable st : Alloc.stats;
}

let charge t c = Uksim.Clock.advance t.clock c
let n_blocks t = Hashtbl.length t.used + List.length t.free

let bump_stats t payload =
  let in_use = t.st.bytes_in_use + payload in
  t.st <-
    {
      t.st with
      allocs = t.st.allocs + 1;
      bytes_in_use = in_use;
      peak_bytes = max t.st.peak_bytes in_use;
    }

(* First fit over the address-ordered free list; charges per node walked. *)
let take_free t size =
  let rec go acc = function
    | [] -> None
    | b :: rest ->
        charge t walk_cost;
        if b.size >= size then begin
          t.free <- List.rev_append acc rest;
          Some b
        end
        else go (b :: acc) rest
  in
  go [] t.free

let do_malloc t ~align size =
  charge t base_cost;
  if size <= 0 || not (Alloc.is_power_of_two align) then None
  else begin
    let want = Alloc.round_up size (max align 16) in
    match take_free t want with
    | Some b ->
        (* tinyalloc reuses the whole block without splitting. *)
        Hashtbl.replace t.used b.addr b;
        bump_stats t b.size;
        Some b.addr
    | None ->
        let addr = Alloc.round_up t.top (max align 16) in
        if addr + want > t.limit || n_blocks t >= t.max_blocks then begin
          t.st <- { t.st with failed = t.st.failed + 1 };
          None
        end
        else begin
          t.top <- addr + want;
          let b = { addr; size = want } in
          Hashtbl.replace t.used addr b;
          bump_stats t want;
          Some addr
        end
  end

(* Insert in address order, then merge adjacent runs (tinyalloc's
   compact step). *)
let insert_free t b =
  let rec insert = function
    | [] -> [ b ]
    | x :: rest ->
        charge t walk_cost;
        if b.addr < x.addr then b :: x :: rest else x :: insert rest
  in
  t.free <- insert t.free;
  let rec compact = function
    | x :: y :: rest when x.addr + x.size = y.addr ->
        charge t compact_cost;
        x.size <- x.size + y.size;
        compact (x :: rest)
    | x :: rest -> x :: compact rest
    | [] -> []
  in
  t.free <- compact t.free

let do_free t addr =
  charge t base_cost;
  match Hashtbl.find_opt t.used addr with
  | None -> invalid_arg (Printf.sprintf "Tinyalloc.free: unknown address %#x" addr)
  | Some b ->
      Hashtbl.remove t.used addr;
      (* Payload accounting uses block size as the C version does not keep
         requested sizes; stats track block-granularity live bytes. *)
      t.st <- { t.st with frees = t.st.frees + 1; bytes_in_use = max 0 (t.st.bytes_in_use - b.size) };
      insert_free t b

let create ?(max_blocks = 1 lsl 20) ~clock ~base ~len () =
  if len <= 0 then invalid_arg "Tinyalloc.create";
  Uksim.Clock.advance clock init_cost;
  let t =
    {
      clock;
      limit = base + len;
      max_blocks;
      top = base;
      free = [];
      used = Hashtbl.create 128;
      st = Alloc.zero_stats;
    }
  in
  let malloc size = do_malloc t ~align:16 size in
  let calloc n size = if n <= 0 || size <= 0 then None else malloc (n * size) in
  let realloc addr size =
    if addr = 0 then malloc size
    else
      match Hashtbl.find_opt t.used addr with
      | None -> None
      | Some b ->
          if size <= b.size then Some addr
          else (
            match malloc size with
            | None -> None
            | Some naddr ->
                charge t (Uksim.Cost.memcpy b.size);
                do_free t addr;
                Some naddr)
  in
  let availmem () =
    t.limit - t.top + List.fold_left (fun acc b -> acc + b.size) 0 t.free
  in
  {
    Alloc.name = "tinyalloc";
    malloc;
    calloc;
    memalign = (fun ~align size -> do_malloc t ~align size);
    free = (fun a -> do_free t a);
    realloc;
    availmem;
    stats = (fun () -> { t.st with metadata_bytes = n_blocks t * 24 });
  }
