(** TLSF — Two-Level Segregated Fits (Masmano et al., ECRTS'04; paper §5.5).

    O(1) malloc and free with bounded fragmentation: a first-level bitmap
    indexes power-of-two size ranges, a second-level bitmap subdivides each
    range into 16 classes; free blocks live on doubly-linked segregated
    lists and are coalesced with their physical neighbours on free.
    Initialization is O(1) — one free block spanning the region — making it
    one of the fastest allocators to boot in the paper's Fig 14 while
    keeping deterministic run-time behaviour. *)

val overhead : int
(** Per-block header overhead in bytes. *)

val min_payload : int

val create : clock:Uksim.Clock.t -> base:int -> len:int -> Alloc.t
(** Raises [Invalid_argument] if [len] is too small for one block. *)
