(** Oscar (Dang et al., USENIX Security'17) — page-permission-based secure
    allocator, listed among Unikraft's backends in §3.2.

    Every allocation lives on its own page(s) behind a fresh "shadow"
    virtual address that is never reused, so dangling pointers fault instead
    of aliasing new objects. The price is page-granular space overhead and a
    permission-update cost on each allocation and free. *)

val create : clock:Uksim.Clock.t -> base:int -> len:int -> Alloc.t
(** [len] bounds *physical* backing; shadow addresses advance monotonically
    past [base + len] by design. *)
