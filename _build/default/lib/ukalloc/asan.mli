(** Address-sanitizer wrapper for any ukalloc backend (paper §7: Unikraft
    "already supports ... Address Sanitisation").

    Wraps an allocator with:
    - {e redzones}: each allocation is padded left and right; touching a
      redzone reports a heap-buffer-overflow;
    - {e quarantine}: freed blocks are poisoned and parked for a number of
      subsequent frees before real release, so use-after-free and
      double-free are caught instead of silently recycling memory.

    Every check charges the shadow-memory lookup cost, so sanitized builds
    are measurably slower — the classic debug/performance trade-off. *)

type violation =
  | Heap_buffer_overflow of { addr : int; block : int }
  | Use_after_free of { addr : int; block : int }
  | Double_free of { addr : int }
  | Wild_access of { addr : int }  (** not in any live allocation *)

exception Asan of violation

val violation_to_string : violation -> string

type t

val wrap : clock:Uksim.Clock.t -> ?redzone:int -> ?quarantine:int -> Alloc.t -> t
(** Defaults: 32-byte redzones, 64-entry quarantine. *)

val alloc : t -> Alloc.t
(** The sanitized allocator (same API; [free] of a quarantined address
    raises [Double_free]). *)

val check_read : t -> addr:int -> len:int -> unit
val check_write : t -> addr:int -> len:int -> unit
(** Validate an access; raise {!Asan} on redzone / freed / wild hits. *)

val checks_performed : t -> int
val shadow_check_cost : int
