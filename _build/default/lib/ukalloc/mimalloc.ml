let page_size = 65536
let page_header = 64
let huge_threshold = 16384

(* Cycle costs. *)
let fast_cost = 14 (* pop from sharded free list *)
let free_cost = 12 (* push onto local_free *)
let swap_cost = 28 (* collect local_free into free *)
let page_init_base = 260
let page_init_per_block = 2
let init_cost = 1_300_000 (* pthread + heap bring-up, ~0.36 ms *)

type page = {
  block_size : int;
  page_addr : int;
  mutable free : int list;
  mutable local_free : int list;
  mutable used : int;
}

type state = {
  clock : Uksim.Clock.t;
  base : int;
  limit : int;
  mutable bump : int; (* segment carve pointer, page-aligned *)
  avail : (int, page list) Hashtbl.t; (* class size -> pages with space *)
  page_of : (int, page) Hashtbl.t; (* addr / page_size -> page *)
  huge : (int, int) Hashtbl.t; (* addr -> rounded size *)
  req_sizes : (int, int) Hashtbl.t; (* payload addr -> requested size *)
  mutable huge_free : int; (* bytes returned from huge frees *)
  mutable n_pages : int;
  mutable st : Alloc.stats;
}

let charge t c = Uksim.Clock.advance t.clock c

let class_of_size size =
  if size <= 16 then 16
  else if size <= 1024 then Alloc.round_up size 16
  else if size <= 8192 then Alloc.round_up size 512
  else Alloc.round_up size 1024

let page_index addr = addr / page_size

let avail_pages t cls = match Hashtbl.find_opt t.avail cls with Some l -> l | None -> []

let carve_page t cls =
  let addr = Alloc.round_up t.bump page_size in
  if addr + page_size > t.limit then None
  else begin
    t.bump <- addr + page_size;
    (* Power-of-two classes lay blocks out class-aligned (mimalloc keeps
       natural alignment for pow2 sizes); others start after the header. *)
    let start =
      if Alloc.is_power_of_two cls && cls > page_header then cls else page_header
    in
    let capacity = (page_size - start) / cls in
    charge t (page_init_base + (capacity * page_init_per_block));
    let blocks = List.init capacity (fun i -> addr + start + (i * cls)) in
    let p = { block_size = cls; page_addr = addr; free = blocks; local_free = []; used = 0 } in
    Hashtbl.replace t.page_of (page_index addr) p;
    t.n_pages <- t.n_pages + 1;
    Some p
  end

let bump_stats t payload =
  let in_use = t.st.bytes_in_use + payload in
  t.st <-
    {
      t.st with
      allocs = t.st.allocs + 1;
      bytes_in_use = in_use;
      peak_bytes = max t.st.peak_bytes in_use;
    }

(* Pop a block from a page, swapping in local_free when the allocation
   shard runs dry (mimalloc's "collect"). *)
let rec page_pop t p =
  match p.free with
  | addr :: rest ->
      p.free <- rest;
      p.used <- p.used + 1;
      Some addr
  | [] ->
      if p.local_free <> [] then begin
        charge t swap_cost;
        p.free <- List.rev p.local_free;
        p.local_free <- [];
        page_pop t p
      end
      else None

let rec alloc_small t cls size =
  match avail_pages t cls with
  | p :: rest -> (
      charge t fast_cost;
      match page_pop t p with
      | Some addr ->
          Hashtbl.replace t.req_sizes addr size;
          bump_stats t size;
          Some addr
      | None ->
          (* Page exhausted: rotate it out and retry. *)
          Hashtbl.replace t.avail cls rest;
          alloc_small t cls size)
  | [] -> (
      match carve_page t cls with
      | None ->
          t.st <- { t.st with failed = t.st.failed + 1 };
          None
      | Some p ->
          Hashtbl.replace t.avail cls [ p ];
          alloc_small t cls size)

let alloc_huge t size =
  let rounded = Alloc.round_up size 4096 in
  let addr = Alloc.round_up t.bump 4096 in
  charge t (fast_cost * 8);
  if addr + rounded > t.limit then begin
    t.st <- { t.st with failed = t.st.failed + 1 };
    None
  end
  else begin
    t.bump <- addr + rounded;
    Hashtbl.replace t.huge addr rounded;
    Hashtbl.replace t.req_sizes addr size;
    bump_stats t size;
    Some addr
  end

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let do_malloc t ~align size =
  if size <= 0 || not (Alloc.is_power_of_two align) then None
  else if align > 4096 then None
  else if size > huge_threshold || align > 1024 then alloc_huge t (max size align)
  else if align > 16 then
    (* Aligned requests go to a power-of-two class: blocks in such pages
       are naturally class-aligned. *)
    alloc_small t (next_pow2 (max size align)) size
  else alloc_small t (class_of_size size) size

let do_free t addr =
  charge t free_cost;
  match Hashtbl.find_opt t.req_sizes addr with
  | None -> invalid_arg (Printf.sprintf "Mimalloc.free: unknown address %#x" addr)
  | Some size ->
      Hashtbl.remove t.req_sizes addr;
      t.st <- { t.st with frees = t.st.frees + 1; bytes_in_use = t.st.bytes_in_use - size };
      (match Hashtbl.find_opt t.huge addr with
      | Some rounded ->
          Hashtbl.remove t.huge addr;
          t.huge_free <- t.huge_free + rounded
      | None -> (
          match Hashtbl.find_opt t.page_of (page_index addr) with
          | None -> invalid_arg "Mimalloc.free: address outside any page"
          | Some p ->
              p.local_free <- addr :: p.local_free;
              p.used <- p.used - 1;
              (* Pages with reclaimed space rejoin the allocation ring. *)
              let ring = avail_pages t p.block_size in
              if not (List.memq p ring) then Hashtbl.replace t.avail p.block_size (p :: ring)))

let create ~clock ~base ~len =
  if len < page_size then invalid_arg "Mimalloc.create: region too small";
  Uksim.Clock.advance clock init_cost;
  let t =
    {
      clock;
      base;
      limit = base + len;
      bump = base;
      avail = Hashtbl.create 32;
      page_of = Hashtbl.create 64;
      huge = Hashtbl.create 16;
      req_sizes = Hashtbl.create 256;
      huge_free = 0;
      n_pages = 0;
      st = Alloc.zero_stats;
    }
  in
  let malloc size = do_malloc t ~align:16 size in
  let calloc n size = if n <= 0 || size <= 0 then None else malloc (n * size) in
  let realloc addr size =
    if addr = 0 then malloc size
    else
      match Hashtbl.find_opt t.req_sizes addr with
      | None -> None
      | Some old ->
          let fits =
            match Hashtbl.find_opt t.page_of (page_index addr) with
            | Some p -> size <= p.block_size
            | None -> ( match Hashtbl.find_opt t.huge addr with Some r -> size <= r | None -> false)
          in
          if fits then Some addr
          else (
            match malloc size with
            | None -> None
            | Some naddr ->
                charge t (Uksim.Cost.memcpy old);
                do_free t addr;
                Some naddr)
  in
  let availmem () = t.limit - t.bump + t.huge_free in
  {
    Alloc.name = "mimalloc";
    malloc;
    calloc;
    memalign = (fun ~align size -> do_malloc t ~align size);
    free = (fun a -> do_free t a);
    realloc;
    availmem;
    stats = (fun () -> { t.st with metadata_bytes = t.n_pages * page_header });
  }
