(** Invariant-checking wrapper around any allocator.

    Intercepts the {!Alloc.t} operations and asserts, on every call:
    - returned blocks never overlap a live block;
    - returned addresses respect the requested alignment;
    - [free]/[realloc] only touch live addresses.

    Violations raise {!Violation}. Used by the unit and property tests to
    validate every backend under randomized workloads. *)

exception Violation of string

type t

val wrap : Alloc.t -> t
val alloc : t -> Alloc.t
(** The checked view, same interface as the wrapped allocator. *)

val live_count : t -> int
val live_bytes : t -> int
(** Payload bytes across live allocations, by the wrapper's own accounting. *)
