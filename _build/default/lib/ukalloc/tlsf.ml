(* Faithful port of the canonical TLSF structure:
   - first level: power-of-two ranges, [fl_shift]-based
   - second level: [sl_count] linear subdivisions per range
   - block headers with physical-neighbour links for O(1) coalescing. *)

let sl_count_log2 = 4
let sl_count = 1 lsl sl_count_log2 (* 16 *)
let fl_shift = 8 (* sizes below 2^8 map linearly into fl = 0 *)
let small_block = 1 lsl fl_shift
let fl_count = 40
let overhead = 16
let min_payload = 16
let min_block = overhead + min_payload

(* Cycle costs per structural step (O(1) paths). *)
let base_cost = 20
let mapping_cost = 5
let split_cost = 22
let merge_cost = 22
let init_cost = 2200

type block = {
  mutable addr : int;
  mutable size : int; (* whole block, header included *)
  mutable free : bool;
  mutable prev_phys : block option;
  mutable next_phys : block option;
  mutable prev_free : block option;
  mutable next_free : block option;
  mutable payload : int; (* live payload bytes while allocated *)
}

type state = {
  clock : Uksim.Clock.t;
  heads : block option array array; (* fl x sl *)
  mutable fl_bitmap : int;
  sl_bitmap : int array;
  by_payload_addr : (int, block) Hashtbl.t; (* payload addr -> block *)
  mutable free_bytes : int;
  mutable st : Alloc.stats;
  mutable n_blocks : int;
}

let charge t c = Uksim.Clock.advance t.clock c

let fls n = if n <= 0 then -1 else Alloc.log2_floor n

(* (fl, sl) of a block of [size] for insertion. *)
let mapping_insert size =
  if size < small_block then (0, size / (small_block / sl_count))
  else begin
    let f = fls size in
    let sl = (size lsr (f - sl_count_log2)) lxor sl_count in
    (f - fl_shift + 1, sl)
  end

(* (fl, sl) for searching: round the request up so any block in the class
   fits. *)
let mapping_search size =
  if size < small_block then mapping_insert size
  else begin
    let round = (1 lsl (fls size - sl_count_log2)) - 1 in
    mapping_insert (size + round)
  end

let insert_block t b =
  charge t mapping_cost;
  let fl, sl = mapping_insert b.size in
  let head = t.heads.(fl).(sl) in
  b.prev_free <- None;
  b.next_free <- head;
  (match head with Some h -> h.prev_free <- Some b | None -> ());
  t.heads.(fl).(sl) <- Some b;
  b.free <- true;
  t.free_bytes <- t.free_bytes + b.size;
  t.fl_bitmap <- t.fl_bitmap lor (1 lsl fl);
  t.sl_bitmap.(fl) <- t.sl_bitmap.(fl) lor (1 lsl sl)

let remove_block t b =
  charge t mapping_cost;
  let fl, sl = mapping_insert b.size in
  (match b.prev_free with
  | Some p -> p.next_free <- b.next_free
  | None -> t.heads.(fl).(sl) <- b.next_free);
  (match b.next_free with Some n -> n.prev_free <- b.prev_free | None -> ());
  b.prev_free <- None;
  b.next_free <- None;
  b.free <- false;
  t.free_bytes <- t.free_bytes - b.size;
  if t.heads.(fl).(sl) = None then begin
    t.sl_bitmap.(fl) <- t.sl_bitmap.(fl) land lnot (1 lsl sl);
    if t.sl_bitmap.(fl) = 0 then t.fl_bitmap <- t.fl_bitmap land lnot (1 lsl fl)
  end

let ffs_from word from =
  let masked = word land lnot ((1 lsl from) - 1) in
  if masked = 0 then None else Some (fls (masked land -masked))

let search_suitable t size =
  let fl, sl = mapping_search size in
  if fl >= fl_count then None
  else
    match ffs_from t.sl_bitmap.(fl) sl with
    | Some sl' -> t.heads.(fl).(sl')
    | None -> (
        match ffs_from t.fl_bitmap (fl + 1) with
        | None -> None
        | Some fl' -> (
            match ffs_from t.sl_bitmap.(fl') 0 with
            | None -> None (* bitmap invariant violated *)
            | Some sl' -> t.heads.(fl').(sl')))

let split t b want =
  (* [want] includes the header. Split off the tail if big enough. *)
  if b.size >= want + min_block then begin
    charge t split_cost;
    let rest =
      {
        addr = b.addr + want;
        size = b.size - want;
        free = false;
        prev_phys = Some b;
        next_phys = b.next_phys;
        prev_free = None;
        next_free = None;
        payload = 0;
      }
    in
    (match b.next_phys with Some n -> n.prev_phys <- Some rest | None -> ());
    b.next_phys <- Some rest;
    b.size <- want;
    t.n_blocks <- t.n_blocks + 1;
    insert_block t rest
  end

let merge_with_neighbours t b0 =
  (* Physical coalescing; neighbours must be pulled off their free lists
     before their sizes are absorbed. *)
  let b =
    match b0.prev_phys with
    | Some p when p.free ->
        charge t merge_cost;
        remove_block t p;
        p.size <- p.size + b0.size;
        p.next_phys <- b0.next_phys;
        (match b0.next_phys with Some n -> n.prev_phys <- Some p | None -> ());
        t.n_blocks <- t.n_blocks - 1;
        p
    | Some _ | None -> b0
  in
  (match b.next_phys with
  | Some n when n.free ->
      charge t merge_cost;
      remove_block t n;
      b.size <- b.size + n.size;
      b.next_phys <- n.next_phys;
      (match n.next_phys with Some nn -> nn.prev_phys <- Some b | None -> ());
      t.n_blocks <- t.n_blocks - 1
  | Some _ | None -> ());
  b

let bump_stats t payload =
  let in_use = t.st.bytes_in_use + payload in
  t.st <-
    {
      t.st with
      allocs = t.st.allocs + 1;
      bytes_in_use = in_use;
      peak_bytes = max t.st.peak_bytes in_use;
    }

let do_memalign t ~align size =
  charge t base_cost;
  if size <= 0 || not (Alloc.is_power_of_two align) then None
  else begin
    let align = max align 16 in
    (* Over-allocate so a aligned payload always fits, then trim. *)
    let payload_sz = Alloc.round_up (max size min_payload) 16 in
    let want = payload_sz + overhead + (if align > 16 then align else 0) in
    match search_suitable t want with
    | None ->
        t.st <- { t.st with failed = t.st.failed + 1 };
        None
    | Some b ->
        remove_block t b;
        split t b (Alloc.round_up want 16);
        let payload_addr = Alloc.round_up (b.addr + overhead) align in
        b.payload <- size;
        Hashtbl.replace t.by_payload_addr payload_addr b;
        bump_stats t size;
        Some payload_addr
  end

let do_free t payload_addr =
  charge t base_cost;
  match Hashtbl.find_opt t.by_payload_addr payload_addr with
  | None -> invalid_arg (Printf.sprintf "Tlsf.free: unknown address %#x" payload_addr)
  | Some b ->
      Hashtbl.remove t.by_payload_addr payload_addr;
      t.st <- { t.st with frees = t.st.frees + 1; bytes_in_use = t.st.bytes_in_use - b.payload };
      b.payload <- 0;
      let merged = merge_with_neighbours t b in
      insert_block t merged

let create ~clock ~base ~len =
  if len < min_block then invalid_arg "Tlsf.create: region too small";
  Uksim.Clock.advance clock init_cost;
  let t =
    {
      clock;
      heads = Array.init fl_count (fun _ -> Array.make sl_count None);
      fl_bitmap = 0;
      sl_bitmap = Array.make fl_count 0;
      by_payload_addr = Hashtbl.create 256;
      free_bytes = 0;
      st = Alloc.zero_stats;
      n_blocks = 1;
    }
  in
  let initial =
    {
      addr = base;
      size = len;
      free = false;
      prev_phys = None;
      next_phys = None;
      prev_free = None;
      next_free = None;
      payload = 0;
    }
  in
  insert_block t initial;
  let malloc size = do_memalign t ~align:16 size in
  let calloc n size = if n <= 0 || size <= 0 then None else malloc (n * size) in
  let realloc addr size =
    if addr = 0 then malloc size
    else
      match Hashtbl.find_opt t.by_payload_addr addr with
      | None -> None
      | Some b ->
          if size <= b.payload then Some addr
          else (
            match malloc size with
            | None -> None
            | Some naddr ->
                charge t (Uksim.Cost.memcpy b.payload);
                do_free t addr;
                Some naddr)
  in
  {
    Alloc.name = "tlsf";
    malloc;
    calloc;
    memalign = (fun ~align size -> do_memalign t ~align size);
    free = (fun a -> do_free t a);
    realloc;
    availmem = (fun () -> t.free_bytes);
    stats = (fun () -> { t.st with metadata_bytes = t.n_blocks * overhead });
  }
