(** Binary buddy allocator (the Mini-OS allocator of the paper, §5.5).

    Classic power-of-two buddy system: blocks are split down to the request
    order and coalesced with their buddy on free. Initialization walks the
    whole region page by page to build the free map (as Mini-OS's [mm.c]
    does), which is why it is the slowest allocator to boot in Fig 14 while
    performing competitively at run time. *)

val min_order : int
(** Smallest block order (2^min_order bytes). *)

val create : clock:Uksim.Clock.t -> base:int -> len:int -> Alloc.t
(** [len] must be a power of two and at least [2^min_order]; [base] must be
    aligned to [len]. Raises [Invalid_argument] otherwise. *)
