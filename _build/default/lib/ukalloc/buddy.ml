let min_order = 5 (* 32-byte blocks *)

(* Cycle costs per structural step. *)
let base_cost = 26
let split_cost = 20
let merge_cost = 22
let init_cost_per_page = 82 (* Mini-OS walks and maps the page map at init *)
let page_size = 4096

type state = {
  clock : Uksim.Clock.t;
  base : int;
  len : int;
  max_order : int;
  free_lists : (int, unit) Hashtbl.t array; (* index: order; keys: block addr *)
  allocated : (int, int) Hashtbl.t; (* addr -> order *)
  sizes : (int, int) Hashtbl.t; (* addr -> requested payload size *)
  mutable st : Alloc.stats;
}

let charge t c = Uksim.Clock.advance t.clock c

let order_of_size size =
  let s = max size (1 lsl min_order) in
  Alloc.log2_ceil s

let pop_free t order =
  let tbl = t.free_lists.(order) in
  let found = ref None in
  (try
     Hashtbl.iter
       (fun addr () ->
         found := Some addr;
         raise Exit)
       tbl
   with Exit -> ());
  match !found with
  | None -> None
  | Some addr ->
      Hashtbl.remove tbl addr;
      Some addr

let rec alloc_order t order =
  if order > t.max_order then None
  else
    match pop_free t order with
    | Some addr -> Some addr
    | None -> (
        (* Split a block of the next order up. *)
        match alloc_order t (order + 1) with
        | None -> None
        | Some addr ->
            charge t split_cost;
            let half = 1 lsl order in
            Hashtbl.replace t.free_lists.(order) (addr + half) ();
            Some addr)

let buddy_of t addr order =
  let rel = addr - t.base in
  t.base + (rel lxor (1 lsl order))

let record_alloc t addr order size =
  Hashtbl.replace t.allocated addr order;
  Hashtbl.replace t.sizes addr size;
  let in_use = t.st.bytes_in_use + size in
  t.st <-
    {
      t.st with
      allocs = t.st.allocs + 1;
      bytes_in_use = in_use;
      peak_bytes = max t.st.peak_bytes in_use;
    }

let do_malloc t ~align size =
  charge t base_cost;
  if size <= 0 || not (Alloc.is_power_of_two align) then None
  else begin
    (* Buddy blocks are naturally aligned to their size, so alignment is
       satisfied by rounding the order up to cover the alignment. *)
    let order = max (order_of_size size) (order_of_size align) in
    match alloc_order t order with
    | None ->
        t.st <- { t.st with failed = t.st.failed + 1 };
        None
    | Some addr ->
        record_alloc t addr order size;
        Some addr
  end

let rec coalesce t addr order =
  if order < t.max_order then begin
    let buddy = buddy_of t addr order in
    if Hashtbl.mem t.free_lists.(order) buddy then begin
      charge t merge_cost;
      Hashtbl.remove t.free_lists.(order) buddy;
      let merged = min addr buddy in
      coalesce t merged (order + 1)
    end
    else Hashtbl.replace t.free_lists.(order) addr ()
  end
  else Hashtbl.replace t.free_lists.(order) addr ()

let do_free t addr =
  charge t base_cost;
  match Hashtbl.find_opt t.allocated addr with
  | None -> invalid_arg (Printf.sprintf "Buddy.free: unknown address %#x" addr)
  | Some order ->
      let size = try Hashtbl.find t.sizes addr with Not_found -> 0 in
      Hashtbl.remove t.allocated addr;
      Hashtbl.remove t.sizes addr;
      t.st <- { t.st with frees = t.st.frees + 1; bytes_in_use = t.st.bytes_in_use - size };
      coalesce t addr order

let availmem t () =
  let free = ref 0 in
  Array.iteri (fun order tbl -> free := !free + (Hashtbl.length tbl * (1 lsl order))) t.free_lists;
  !free

let create ~clock ~base ~len =
  if not (Alloc.is_power_of_two len) || len < 1 lsl min_order then
    invalid_arg "Buddy.create: len must be a power of two >= 2^min_order";
  if base land (len - 1) <> 0 then invalid_arg "Buddy.create: base must be aligned to len";
  let max_order = Alloc.log2_floor len in
  (* Mini-OS-style init: build the page map over the whole region. *)
  Uksim.Clock.advance clock (len / page_size * init_cost_per_page);
  let t =
    {
      clock;
      base;
      len;
      max_order;
      free_lists = Array.init (max_order + 1) (fun _ -> Hashtbl.create 8);
      allocated = Hashtbl.create 64;
      sizes = Hashtbl.create 64;
      st = Alloc.zero_stats;
    }
  in
  Hashtbl.replace t.free_lists.(max_order) base ();
  let malloc size = do_malloc t ~align:16 size in
  let calloc n size = if n <= 0 || size <= 0 then None else malloc (n * size) in
  let realloc addr size =
    if addr = 0 then malloc size
    else
      match Hashtbl.find_opt t.sizes addr with
      | None -> None
      | Some old ->
          if size <= old then Some addr
          else (
            match malloc size with
            | None -> None
            | Some naddr ->
                charge t (Uksim.Cost.memcpy old);
                do_free t addr;
                Some naddr)
  in
  let metadata () = (Hashtbl.length t.allocated * 16) + (t.len / page_size) in
  {
    Alloc.name = "buddy";
    malloc;
    calloc;
    memalign = (fun ~align size -> do_malloc t ~align size);
    free = (fun addr -> do_free t addr);
    realloc;
    availmem = availmem t;
    stats = (fun () -> { t.st with metadata_bytes = metadata () });
  }
