type stats = {
  allocs : int;
  frees : int;
  failed : int;
  bytes_in_use : int;
  peak_bytes : int;
  metadata_bytes : int;
}

type t = {
  name : string;
  malloc : int -> int option;
  calloc : int -> int -> int option;
  memalign : align:int -> int -> int option;
  free : int -> unit;
  realloc : int -> int -> int option;
  availmem : unit -> int;
  stats : unit -> stats;
}

let uk_malloc a size = a.malloc size
let uk_calloc a n size = a.calloc n size
let uk_free a addr = a.free addr
let uk_memalign a ~align size = a.memalign ~align size
let uk_realloc a addr size = a.realloc addr size

let zero_stats =
  { allocs = 0; frees = 0; failed = 0; bytes_in_use = 0; peak_bytes = 0; metadata_bytes = 0 }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let round_up n align =
  if not (is_power_of_two align) then invalid_arg "Alloc.round_up: align not a power of two";
  (n + align - 1) land lnot (align - 1)

let log2_floor n =
  if n <= 0 then invalid_arg "Alloc.log2_floor";
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let log2_ceil n =
  let f = log2_floor n in
  if 1 lsl f = n then f else f + 1

module Registry = struct
  type allocator = t

  type t = { mutable order : allocator list (* reversed *) }

  let create () = { order = [] }

  let find t name = List.find_opt (fun (a : allocator) -> String.equal a.name name) t.order

  let register t (a : allocator) =
    if List.exists (fun (x : allocator) -> String.equal x.name a.name) t.order then
      invalid_arg (Printf.sprintf "Alloc.Registry.register: duplicate allocator %s" a.name);
    t.order <- a :: t.order

  let all t = List.rev t.order

  let default t = match all t with [] -> None | a :: _ -> Some a
end
