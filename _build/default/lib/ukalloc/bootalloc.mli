(** Region ("bump-pointer") allocator for fast booting (paper §5.5, Fig 14).

    Allocation advances a cursor; [free] is a no-op. Initialization is O(1),
    which is why the paper's nginx image boots in 0.49 ms with it. Intended
    for boot-time allocations or short-lived unikernels; memory is only
    reclaimed when the whole region is discarded. *)

val create : clock:Uksim.Clock.t -> base:int -> len:int -> Alloc.t
(** Raises [Invalid_argument] if [len <= 0] or [base < 0]. *)
