lib/uksched/sched.mli: Uksim
