lib/uksched/sched.ml: Effect Hashtbl Queue Uksim
