(** x86-64 paging micro-library (paper §6.1, Fig 21).

    Three boot-time strategies, as in the paper:
    - {!Static}: the binary ships a pre-initialized page-table structure;
      boot merely enables paging and loads the page-table base register —
      O(1), the 30 µs / 1 GB case of Fig 21. The mapping covers all of RAM
      identity-mapped and cannot be changed at run time (no [mmap]).
    - {!Dynamic}: the full 4-level structure is populated entry by entry at
      boot, enabling later virtual-address-space changes; boot cost grows
      linearly with RAM.
    - {!Protected32}: 32-bit protected mode with paging disabled — zero
      paging cost, 4 GB address-space limit, no TLB misses.

    The structure built is a real 4-level radix tree (PML4/PDPT/PD/PT with
    512 entries per level over 4 KiB pages); translation walks it and an
    associated direct-mapped TLB model. *)

type mode = Static | Dynamic | Protected32

val page_size : int
val entries_per_table : int
val levels : int

type t

val create : clock:Uksim.Clock.t -> mode:mode -> ram_bytes:int -> t
(** Builds the boot-time mapping for [ram_bytes] of identity-mapped RAM,
    charging the strategy's boot cost to [clock]. [ram_bytes] is rounded up
    to a whole page. For [Protected32], [ram_bytes] must be <= 4 GiB. *)

val mode : t -> mode
val ram_bytes : t -> int

val map_page : t -> vaddr:int -> paddr:int -> unit
(** Map one 4 KiB page. Only valid in [Dynamic] mode (the static structure
    is read-only and protected mode has no paging): raises
    [Invalid_argument] otherwise, or if addresses are not page-aligned. *)

val unmap_page : t -> vaddr:int -> unit

val translate : t -> int -> int option
(** Translate a virtual address, charging TLB-hit or full-walk cost.
    [None] for unmapped addresses. In [Protected32] translation is the
    identity (bounded by RAM). *)

val mapped_pages : t -> int
val table_count : t -> int
(** Page-table pages in the structure (all levels). *)

val table_bytes : t -> int
val tlb_flush : t -> unit
val tlb_hits : t -> int
val tlb_misses : t -> int

val boot_entry_writes : t -> int
(** Page-table entry writes performed during [create] — the quantity that
    grows with RAM in Fig 21's dynamic line. *)
