type mode = Static | Dynamic | Protected32

let page_size = 4096
let entries_per_table = 512
let levels = 4
let tlb_entries = 64
let enable_paging_cost = 5400 (* load CR3, set CR0.PG, serialize: ~1.5us *)

type node = { level : int; slots : (int, node) Hashtbl.t; mutable pages : (int, int) Hashtbl.t }
(* Levels 4..2 use [slots] (pointers to lower tables); level 1 uses [pages]
   (PTE index -> physical frame address). *)

type t = {
  clock : Uksim.Clock.t;
  pmode : mode;
  ram : int;
  root : node;
  mutable n_pages : int;
  mutable n_tables : int;
  mutable entry_writes : int; (* during boot-time population *)
  tlb : int array; (* direct-mapped: vpn by index, -1 empty *)
  tlb_paddr : int array;
  mutable hits : int;
  mutable misses : int;
}

let fresh_node level = { level; slots = Hashtbl.create 8; pages = Hashtbl.create 64 }

let index_at ~level vaddr =
  (* 9 bits per level, level 1 lowest. *)
  (vaddr lsr (12 + (9 * (level - 1)))) land (entries_per_table - 1)

(* Walk (creating intermediate tables when [create_missing]); returns the
   leaf level-1 node. Counts entry writes for created links. *)
let rec walk_to_leaf t node vaddr ~create_missing ~charge =
  if node.level = 1 then Some node
  else begin
    let idx = index_at ~level:node.level vaddr in
    match Hashtbl.find_opt node.slots idx with
    | Some child -> walk_to_leaf t child vaddr ~create_missing ~charge
    | None ->
        if not create_missing then None
        else begin
          let child = fresh_node (node.level - 1) in
          Hashtbl.replace node.slots idx child;
          t.n_tables <- t.n_tables + 1;
          t.entry_writes <- t.entry_writes + 1;
          if charge then Uksim.Clock.advance t.clock Uksim.Cost.page_table_entry_write;
          walk_to_leaf t child vaddr ~create_missing ~charge
        end
  end

let set_pte t leaf vaddr paddr ~charge =
  let idx = index_at ~level:1 vaddr in
  if not (Hashtbl.mem leaf.pages idx) then t.n_pages <- t.n_pages + 1;
  Hashtbl.replace leaf.pages idx paddr;
  t.entry_writes <- t.entry_writes + 1;
  if charge then Uksim.Clock.advance t.clock Uksim.Cost.page_table_entry_write

let populate_identity t ~charge =
  let n = t.ram / page_size in
  for i = 0 to n - 1 do
    let addr = i * page_size in
    match walk_to_leaf t t.root addr ~create_missing:true ~charge with
    | Some leaf -> set_pte t leaf addr addr ~charge
    | None -> assert false
  done

let create ~clock ~mode:pmode ~ram_bytes =
  if ram_bytes <= 0 then invalid_arg "Pagetable.create: ram_bytes must be positive";
  if pmode = Protected32 && ram_bytes > 4096 * 1024 * 1024 then
    invalid_arg "Pagetable.create: protected mode limited to 4GiB";
  let ram = (ram_bytes + page_size - 1) / page_size * page_size in
  let t =
    {
      clock;
      pmode;
      ram;
      root = fresh_node levels;
      n_pages = 0;
      n_tables = 1;
      entry_writes = 0;
      tlb = Array.make tlb_entries (-1);
      tlb_paddr = Array.make tlb_entries 0;
      hits = 0;
      misses = 0;
    }
  in
  (match pmode with
  | Static ->
      (* Structure ships inside the binary: build it without charging
         per-entry work, then pay only the constant paging-enable cost. *)
      populate_identity t ~charge:false;
      t.entry_writes <- 0;
      Uksim.Clock.advance clock enable_paging_cost
  | Dynamic ->
      Uksim.Clock.advance clock enable_paging_cost;
      populate_identity t ~charge:true
  | Protected32 -> ());
  t

let mode t = t.pmode
let ram_bytes t = t.ram

let check_aligned what addr =
  if addr land (page_size - 1) <> 0 then
    invalid_arg (Printf.sprintf "Pagetable.%s: %#x not page-aligned" what addr)

let tlb_insert t vaddr paddr =
  let vpn = vaddr / page_size in
  let slot = vpn land (tlb_entries - 1) in
  t.tlb.(slot) <- vpn;
  t.tlb_paddr.(slot) <- paddr land lnot (page_size - 1)

let tlb_evict t vaddr =
  let vpn = vaddr / page_size in
  let slot = vpn land (tlb_entries - 1) in
  if t.tlb.(slot) = vpn then t.tlb.(slot) <- -1

let map_page t ~vaddr ~paddr =
  (match t.pmode with
  | Dynamic -> ()
  | Static -> invalid_arg "Pagetable.map_page: static page table is immutable"
  | Protected32 -> invalid_arg "Pagetable.map_page: paging disabled");
  check_aligned "map_page" vaddr;
  check_aligned "map_page" paddr;
  match walk_to_leaf t t.root vaddr ~create_missing:true ~charge:true with
  | Some leaf -> set_pte t leaf vaddr paddr ~charge:true
  | None -> assert false

let unmap_page t ~vaddr =
  (match t.pmode with
  | Dynamic -> ()
  | Static | Protected32 -> invalid_arg "Pagetable.unmap_page: immutable mapping");
  check_aligned "unmap_page" vaddr;
  match walk_to_leaf t t.root vaddr ~create_missing:false ~charge:false with
  | None -> ()
  | Some leaf ->
      let idx = index_at ~level:1 vaddr in
      if Hashtbl.mem leaf.pages idx then begin
        Hashtbl.remove leaf.pages idx;
        t.n_pages <- t.n_pages - 1;
        Uksim.Clock.advance t.clock Uksim.Cost.page_table_entry_write;
        tlb_evict t vaddr
      end

let translate t vaddr =
  if vaddr < 0 then None
  else
    match t.pmode with
    | Protected32 ->
        Uksim.Clock.advance t.clock Uksim.Cost.cache_hit;
        if vaddr < t.ram then Some vaddr else None
    | Static | Dynamic -> (
        let vpn = vaddr / page_size in
        let slot = vpn land (tlb_entries - 1) in
        if t.tlb.(slot) = vpn then begin
          t.hits <- t.hits + 1;
          Uksim.Clock.advance t.clock Uksim.Cost.cache_hit;
          Some (t.tlb_paddr.(slot) lor (vaddr land (page_size - 1)))
        end
        else begin
          t.misses <- t.misses + 1;
          Uksim.Clock.advance t.clock Uksim.Cost.tlb_miss;
          match walk_to_leaf t t.root vaddr ~create_missing:false ~charge:false with
          | None -> None
          | Some leaf -> (
              match Hashtbl.find_opt leaf.pages (index_at ~level:1 vaddr) with
              | None -> None
              | Some frame ->
                  tlb_insert t vaddr frame;
                  Some (frame lor (vaddr land (page_size - 1))))
        end)

let mapped_pages t = t.n_pages
let table_count t = t.n_tables
let table_bytes t = t.n_tables * page_size

let tlb_flush t =
  Array.fill t.tlb 0 tlb_entries (-1)

let tlb_hits t = t.hits
let tlb_misses t = t.misses
let boot_entry_writes t = t.entry_writes
