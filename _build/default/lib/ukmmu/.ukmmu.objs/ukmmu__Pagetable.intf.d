lib/ukmmu/pagetable.mli: Uksim
