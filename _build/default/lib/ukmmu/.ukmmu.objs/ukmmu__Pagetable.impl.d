lib/ukmmu/pagetable.ml: Array Hashtbl Printf Uksim
