(** uk_ring: bounded single-producer/single-consumer ring buffer — the
    descriptor-ring shape under every virtio queue (FreeBSD's buf_ring,
    which Unikraft's lib/ukring ports).

    A power-of-two slot array indexed by free-running head/tail counters;
    producer touches only [tail], consumer only [head], so in a real
    kernel the two sides never contend on a lock. Burst variants mirror
    the uknetdev/ukblock batch APIs. *)

type 'a t

val create : capacity:int -> 'a t
(** Rounded up to a power of two; capacity must be positive. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val enqueue : 'a t -> 'a -> bool
(** [false] when full. *)

val dequeue : 'a t -> 'a option

val peek : 'a t -> 'a option

val enqueue_burst : 'a t -> 'a array -> int
(** As many as fit; returns the count accepted. *)

val dequeue_burst : 'a t -> max:int -> 'a list
(** In FIFO order. *)

val enqueued_total : 'a t -> int
val dropped_total : 'a t -> int
(** Rejected enqueues (ring-full events). *)
