lib/ukring/ring.ml: Array List Option
