lib/ukring/ring.mli:
