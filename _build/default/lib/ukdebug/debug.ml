type level = Crit | Error | Warn | Info | Debug

let level_to_string = function
  | Crit -> "CRIT"
  | Error -> "ERROR"
  | Warn -> "WARN"
  | Info -> "INFO"
  | Debug -> "DEBUG"

let severity = function Crit -> 0 | Error -> 1 | Warn -> 2 | Info -> 3 | Debug -> 4

let print_cost = 900 (* format + serial console write *)
let trace_cost = 40 (* ring-buffer slot write *)
let ring_capacity = 256

type trace_event = { tp_name : string; at_ns : float; arg : int }

type plugin = { arch : string; render : int -> string }

type t = {
  clock : Uksim.Clock.t;
  mutable thr : level;
  assertions : bool;
  print_stack_bottom : int option;
  sink : string -> unit;
  mutable emitted : int;
  mutable suppressed : int;
  (* trace points *)
  registered : (string, int ref) Hashtbl.t;
  ring : trace_event option array;
  mutable ring_next : int;
  mutable ring_len : int;
  mutable plugins : plugin list;
}

let create ~clock ?(threshold = Info) ?(assertions = true) ?(print_stack_bottom = None)
    ?(sink = fun _ -> ()) () =
  {
    clock;
    thr = threshold;
    assertions;
    print_stack_bottom;
    sink;
    emitted = 0;
    suppressed = 0;
    registered = Hashtbl.create 16;
    ring = Array.make ring_capacity None;
    ring_next = 0;
    ring_len = 0;
    plugins = [];
  }

let set_threshold t l = t.thr <- l
let threshold t = t.thr

let printk t level msg =
  if severity level <= severity t.thr then begin
    t.emitted <- t.emitted + 1;
    Uksim.Clock.advance t.clock print_cost;
    let prefix =
      match t.print_stack_bottom with
      | Some bottom -> Printf.sprintf "[%s @%#x] " (level_to_string level) bottom
      | None -> Printf.sprintf "[%s] " (level_to_string level)
    in
    t.sink (prefix ^ msg)
  end
  else t.suppressed <- t.suppressed + 1

let messages_emitted t = t.emitted
let messages_suppressed t = t.suppressed

exception Assertion_failed of string

let uk_assert t cond msg = if t.assertions && not cond then raise (Assertion_failed msg)
let assertions_enabled t = t.assertions

module Trace = struct
  type event = trace_event = { tp_name : string; at_ns : float; arg : int }

  let register t name =
    if not (Hashtbl.mem t.registered name) then Hashtbl.replace t.registered name (ref 0)

  let fire t name arg =
    match Hashtbl.find_opt t.registered name with
    | None -> invalid_arg (Printf.sprintf "Trace.fire: unregistered trace point %s" name)
    | Some counter ->
        incr counter;
        Uksim.Clock.advance t.clock trace_cost;
        t.ring.(t.ring_next) <- Some { tp_name = name; at_ns = Uksim.Clock.ns t.clock; arg };
        t.ring_next <- (t.ring_next + 1) mod ring_capacity;
        t.ring_len <- min ring_capacity (t.ring_len + 1)

  let events t =
    let start = (t.ring_next - t.ring_len + ring_capacity) mod ring_capacity in
    List.init t.ring_len (fun i ->
        match t.ring.((start + i) mod ring_capacity) with
        | Some e -> e
        | None -> assert false)

  let count t name =
    match Hashtbl.find_opt t.registered name with Some c -> !c | None -> 0

  let clear t =
    Array.fill t.ring 0 ring_capacity None;
    t.ring_next <- 0;
    t.ring_len <- 0
end

module Disasm = struct
  type nonrec plugin = plugin = { arch : string; render : int -> string }

  let register t p = t.plugins <- p :: t.plugins

  let disassemble t ~arch words =
    match List.find_opt (fun p -> String.equal p.arch arch) t.plugins with
    | None -> Result.Error (Printf.sprintf "no disassembler registered for %s" arch)
    | Some p -> Result.Ok (List.map p.render words)

  (* A toy x86-flavoured renderer standing in for the Zydis port: decodes
     a (opcode, operand) word pair encoding. *)
  let zydis_like =
    {
      arch = "x86_64";
      render =
        (fun word ->
          let op = (word lsr 24) land 0xff in
          let a = (word lsr 12) land 0xfff in
          let b = word land 0xfff in
          let reg r = [| "rax"; "rbx"; "rcx"; "rdx"; "rsi"; "rdi"; "rbp"; "rsp" |].(r land 7) in
          match op with
          | 0x90 -> "nop"
          | 0xc3 -> "ret"
          | 0x89 -> Printf.sprintf "mov %s, %s" (reg a) (reg b)
          | 0x01 -> Printf.sprintf "add %s, %s" (reg a) (reg b)
          | 0x39 -> Printf.sprintf "cmp %s, %s" (reg a) (reg b)
          | 0xe8 -> Printf.sprintf "call %#x" ((a lsl 12) lor b)
          | 0x0f -> Printf.sprintf "syscall ; nr=%d" b
          | _ -> Printf.sprintf "db %#010x" word);
    }
end
