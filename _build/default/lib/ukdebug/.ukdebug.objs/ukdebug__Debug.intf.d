lib/ukdebug/debug.mli: Uksim
