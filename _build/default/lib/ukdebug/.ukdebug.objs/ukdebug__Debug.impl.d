lib/ukdebug/debug.ml: Array Hashtbl List Printf Result String Uksim
