(** The ukdebug micro-library (paper §7, "Debugging").

    Three facilities, as described in the paper:
    - criticality-levelled message printing with a configurable threshold
      (and the bottom-of-stack annotation option);
    - a trace-point system recording into a fixed-size ring buffer;
    - an abstraction to plug in disassemblers (the paper ports Zydis for
      x86; here a plug-in renders "instruction" words to text).

    Assertions can be compiled in or out; when in, failures raise. All
    output goes through a sink function so unikernels can route it to
    their console model. *)

type level = Crit | Error | Warn | Info | Debug

val level_to_string : level -> string

type t

val create :
  clock:Uksim.Clock.t ->
  ?threshold:level ->
  ?assertions:bool ->
  ?print_stack_bottom:int option ->
  ?sink:(string -> unit) ->
  unit ->
  t
(** Defaults: threshold [Info], assertions on, no stack annotation, sink
    discards (messages are still counted). Each emitted message charges a
    console-write cost. *)

val set_threshold : t -> level -> unit
val threshold : t -> level

val printk : t -> level -> string -> unit
(** Emit if [level] is at or above the threshold. *)

val messages_emitted : t -> int
val messages_suppressed : t -> int

(** {1 Assertions} *)

exception Assertion_failed of string

val uk_assert : t -> bool -> string -> unit
(** Raises {!Assertion_failed} when assertions are compiled in and the
    condition is false; free no-op otherwise. *)

val assertions_enabled : t -> bool

(** {1 Trace points} *)

module Trace : sig
  type event = { tp_name : string; at_ns : float; arg : int }

  val register : t -> string -> unit
  (** Declare a trace point; firing an undeclared one raises
      [Invalid_argument]. *)

  val fire : t -> string -> int -> unit
  (** Record an event (overwrites the oldest once the ring is full). *)

  val events : t -> event list
  (** Oldest first; at most the ring capacity (256). *)

  val count : t -> string -> int
  (** Total fires of one trace point (including overwritten ones). *)

  val clear : t -> unit
end

(** {1 Disassembler plug-ins} *)

module Disasm : sig
  type plugin = { arch : string; render : int -> string }

  val register : t -> plugin -> unit
  val disassemble : t -> arch:string -> int list -> (string list, string) result
  (** [Error] if no plug-in handles [arch]. *)

  val zydis_like : plugin
  (** A toy x86-ish renderer standing in for the paper's Zydis port. *)
end
