lib/ukos/profiles.mli:
