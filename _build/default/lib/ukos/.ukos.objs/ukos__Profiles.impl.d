lib/ukos/profiles.ml: List String Uksim
