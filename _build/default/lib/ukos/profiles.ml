type t = {
  os_name : string;
  image_kb : (string * int) list;
  min_mem_mb : (string * int) list;
  boot_ns : float option;
  relative_request_cost : (string * float) list;
  notes : string;
}

let ms = Uksim.Units.msec

(* §5.3: Unikraft is 10-60% faster than native Linux (syscall cost + KPTI,
   and mimalloc as the system-wide allocator). *)
let linux_native =
  {
    os_name = "linux-native";
    image_kb = [ ("hello", 16); ("nginx", 1200); ("redis", 1800); ("sqlite", 1100) ];
    (* App binaries only; glibc and the kernel are not counted (paper Fig 9
       caption). *)
    min_mem_mb = [ ("hello", 3); ("nginx", 4); ("redis", 5); ("sqlite", 4) ];
    boot_ns = None;
    relative_request_cost = [ ("nginx", 1.35); ("redis", 1.2); ("sqlite", 1.15) ];
    notes = "bare-metal host Linux 4.19, KPTI on";
  }

(* §5.3: 70-170% faster than the same app in a Linux VM. *)
let linux_vm =
  {
    os_name = "linux-vm";
    image_kb = [ ("hello", 52000); ("nginx", 53000); ("redis", 53600); ("sqlite", 53100) ];
    (* Debian kernel + initrd + rootfs slice. *)
    min_mem_mb = [ ("hello", 80); ("nginx", 96); ("redis", 112); ("sqlite", 96) ];
    boot_ns = Some (ms 1600.0);
    relative_request_cost = [ ("nginx", 2.4); ("redis", 1.9); ("sqlite", 1.5) ];
    notes = "Debian guest, QEMU/KVM, virtio";
  }

(* §5.3: 30-80% faster than a Docker container. *)
let docker =
  {
    os_name = "docker";
    image_kb = [ ("hello", 5200); ("nginx", 22800); ("redis", 31500); ("sqlite", 24100) ];
    min_mem_mb = [ ("hello", 6); ("nginx", 7); ("redis", 9); ("sqlite", 7) ];
    boot_ns = Some (ms 650.0);
    relative_request_cost = [ ("nginx", 1.65); ("redis", 1.4); ("sqlite", 1.2) ];
    notes = "containerized on host Linux (bridge + veth + seccomp)";
  }

(* §5.3: Unikraft ~35% faster on Redis, ~25% on nginx; §5.1: OSv boots in
   4-5 ms on Firecracker with a read-only filesystem. *)
let osv =
  {
    os_name = "osv";
    image_kb = [ ("hello", 6700); ("nginx", 8900); ("redis", 8100); ("sqlite", 7600) ];
    min_mem_mb = [ ("hello", 35); ("nginx", 38); ("redis", 40); ("sqlite", 38) ];
    boot_ns = Some (ms 4.5);
    relative_request_cost = [ ("nginx", 1.25); ("redis", 1.35); ("sqlite", 1.25) ];
    notes = "binary-compatible unikernel, monolithic kernel";
  }

(* §5.3: Rump performs poorly, unmaintained (couldn't raise file limits);
   §5.1: 14-15 ms boot on Solo5. *)
let rump =
  {
    os_name = "rump";
    image_kb = [ ("hello", 9800); ("nginx", 12800); ("redis", 12100); ("sqlite", 11400) ];
    min_mem_mb = [ ("hello", 64); ("nginx", 64); ("redis", 64); ("sqlite", 64) ];
    boot_ns = Some (ms 14.5);
    relative_request_cost = [ ("nginx", 2.8); ("redis", 2.8); ("sqlite", 1.6) ];
    notes = "NetBSD anykernel; configuration limited by bitrot";
  }

(* §5.3: no nginx support; Redis unstable (no virtio, uHyve bottlenecks);
   §5.1: 30-32 ms boot on uHyve. *)
let hermitux =
  {
    os_name = "hermitux";
    image_kb = [ ("hello", 3200); ("redis", 4900); ("sqlite", 4400) ];
    min_mem_mb = [ ("hello", 16); ("redis", 18); ("sqlite", 16) ];
    boot_ns = Some (ms 31.0);
    relative_request_cost = [ ("redis", 3.2); ("sqlite", 1.4) ];
    notes = "binary-compatible via syscall rewriting; uHyve VMM";
  }

(* §5.3: Unikraft ~50% faster on both apps (Lupine ported to QEMU/KVM);
   §5.1: 70 ms boot on Firecracker with KML. *)
let lupine =
  {
    os_name = "lupine";
    image_kb = [ ("hello", 34000); ("nginx", 36000); ("redis", 35600); ("sqlite", 35100) ];
    min_mem_mb = [ ("hello", 38); ("nginx", 40); ("redis", 42); ("sqlite", 40) ];
    boot_ns = Some (ms 70.0);
    relative_request_cost = [ ("nginx", 1.5); ("redis", 1.5); ("sqlite", 1.3) ];
    notes = "specialized Linux + KML patches";
  }

let lupine_nokml =
  {
    lupine with
    os_name = "lupine-nokml";
    boot_ns = Some (ms 18.0);
    relative_request_cost = [ ("nginx", 1.62); ("redis", 1.62); ("sqlite", 1.35) ];
    notes = "specialized Linux without Kernel Mode Linux";
  }

(* §5.1: MirageOS boots in 1-2 ms on Solo5; §5.3/Fig 13: its HTTP-reply
   server is well below the other systems. *)
let mirageos =
  {
    os_name = "mirageos";
    image_kb = [ ("hello", 1100); ("nginx", 1900) ];
    (* "nginx" slot holds the Mirage HTTP-reply server of Fig 13. *)
    min_mem_mb = [ ("hello", 10); ("nginx", 10) ];
    boot_ns = Some (ms 1.5);
    relative_request_cost = [ ("nginx", 3.0) ];
    notes = "OCaml-only unikernel; HTTP-reply stands in for nginx";
  }

(* §5.1: Alpine Linux boots in ~330 ms on Firecracker. *)
let alpine_fc =
  {
    os_name = "alpine-fc";
    image_kb = [ ("hello", 28000); ("nginx", 30000); ("redis", 30800); ("sqlite", 29900) ];
    min_mem_mb = [ ("hello", 48); ("nginx", 52); ("redis", 56); ("sqlite", 52) ];
    boot_ns = Some (ms 330.0);
    relative_request_cost = [ ("nginx", 2.6); ("redis", 2.2); ("sqlite", 1.5) ];
    notes = "minimal Linux distribution on Firecracker";
  }

let all =
  [ linux_native; linux_vm; docker; osv; rump; hermitux; lupine; lupine_nokml; mirageos;
    alpine_fc ]

let find name = List.find_opt (fun p -> String.equal p.os_name name) all
let request_cost_factor t ~app = List.assoc_opt app t.relative_request_cost

(* Firecracker's emulated virtio path costs throughput vs QEMU/KVM
   (paper [24], §5.3). *)
let firecracker_penalty = 0.82
