(** Baseline operating systems the paper compares against (Figs 9, 11, 12,
    13 and the boot-time baselines in §5.1).

    Each profile composes two kinds of information:

    - {e measured anchors} published in the paper itself (boot times in
      §5.1; the throughput relationships of §5.3; image-size and
      memory-floor orders of magnitude of Figs 9/11), encoded as data;
    - {e mechanistic overheads} (syscall dispatch class, per-request extra
      kernel-path cycles) used by the throughput harness to derive
      baseline request rates from the simulated Unikraft workload: a
      baseline's rate is computed by adding its per-request overhead to
      the measured Unikraft per-request cycle cost. *)

type t = {
  os_name : string;
  image_kb : (string * int) list;
      (** per app ("hello", "nginx", "redis", "sqlite"): stripped image
          size, KB (Fig 9); apps the OS cannot run are absent *)
  min_mem_mb : (string * int) list;  (** Fig 11 memory floor, MB *)
  boot_ns : float option;  (** §5.1 boot-time baseline; None = not reported *)
  relative_request_cost : (string * float) list;
      (** per app: per-request path length relative to the Unikraft
          QEMU/KVM path (1.0 = equal; 2.4 = each request costs 2.4x the
          cycles, i.e. Unikraft is 140% faster). Encodes the §5.3
          relationships; apps the OS cannot run are absent. *)
  notes : string;
}

val request_cost_factor : t -> app:string -> float option

val linux_native : t
val linux_vm : t
val docker : t
val osv : t
val rump : t
val hermitux : t
val lupine : t
val lupine_nokml : t
val mirageos : t
val alpine_fc : t

val all : t list
val find : string -> t option

val firecracker_penalty : float
(** Multiplicative throughput penalty for Firecracker vs QEMU/KVM
    (paper §5.3 and [24]): FC's emulated virtio path is slower. *)
