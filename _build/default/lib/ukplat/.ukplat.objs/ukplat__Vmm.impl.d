lib/ukplat/vmm.ml: List String Ukboot Uksim
