lib/ukplat/vmm.mli: Ukboot Uksim
