(* Varghese-Lauck hashed hierarchical wheel: 4 levels x 256 slots.
   Level 0 slots are one tick wide; level k slots cover 256^k ticks.
   Cancellation is O(1) by marking; slots skip dead entries when they
   fire or cascade. *)

let slots_per_level = 256
let levels = 4

type state = Pending | Fired | Cancelled

type timer = {
  deadline_tick : int;
  callback : unit -> unit;
  mutable st : state;
}

type t = {
  granularity : int;
  mutable cur_tick : int;
  wheel : timer list ref array array; (* level x slot, reversed insertion *)
  mutable n_pending : int;
  mutable n_fired : int;
  mutable n_cascades : int;
}

let create ?(granularity = 256) ~now () =
  if granularity <= 0 then invalid_arg "Wheel.create: granularity must be positive";
  {
    granularity;
    cur_tick = now / granularity;
    wheel = Array.init levels (fun _ -> Array.init slots_per_level (fun _ -> ref []));
    n_pending = 0;
    n_fired = 0;
    n_cascades = 0;
  }

let span_of_level level =
  (* ticks covered by one slot of [level] *)
  let rec pow acc k = if k = 0 then acc else pow (acc * slots_per_level) (k - 1) in
  pow 1 level

(* Place a pending timer into the right slot for the current time. *)
let place t (timer : timer) =
  let delta = max 1 (timer.deadline_tick - t.cur_tick) in
  let rec find_level level =
    if level >= levels - 1 then levels - 1
    else if delta < span_of_level (level + 1) then level
    else find_level (level + 1)
  in
  let level = find_level 0 in
  let span = span_of_level level in
  let slot = timer.deadline_tick / span mod slots_per_level in
  let cell = t.wheel.(level).(slot) in
  cell := timer :: !cell

let arm t ~deadline callback =
  let deadline_tick = max (t.cur_tick + 1) (deadline / t.granularity) in
  let timer = { deadline_tick; callback; st = Pending } in
  place t timer;
  t.n_pending <- t.n_pending + 1;
  timer

let cancel t timer =
  match timer.st with
  | Pending ->
      timer.st <- Cancelled;
      t.n_pending <- t.n_pending - 1;
      true
  | Fired | Cancelled -> false

(* Fire or re-place every live timer in a level-0 slot that is due. *)
let fire_slot t slot =
  let cell = t.wheel.(0).(slot) in
  let entries = List.rev !cell in
  cell := [];
  List.iter
    (fun timer ->
      match timer.st with
      | Cancelled | Fired -> ()
      | Pending ->
          if timer.deadline_tick <= t.cur_tick then begin
            timer.st <- Fired;
            t.n_pending <- t.n_pending - 1;
            t.n_fired <- t.n_fired + 1;
            timer.callback ()
          end
          else
            (* Same slot index, later lap: goes around again. *)
            place t timer)
    entries

(* Pull a higher-level slot's timers down into finer wheels. *)
let cascade t level slot =
  let cell = t.wheel.(level).(slot) in
  let entries = !cell in
  cell := [];
  List.iter
    (fun timer ->
      match timer.st with
      | Cancelled | Fired -> ()
      | Pending ->
          t.n_cascades <- t.n_cascades + 1;
          place t timer)
    entries

let tick t =
  t.cur_tick <- t.cur_tick + 1;
  (* Cascade on wrap boundaries, highest level first so timers settle. *)
  for level = levels - 1 downto 1 do
    let span = span_of_level level in
    if t.cur_tick mod span = 0 then cascade t level (t.cur_tick / span mod slots_per_level)
  done;
  fire_slot t (t.cur_tick mod slots_per_level)

let advance t ~now =
  let target = now / t.granularity in
  if target < t.cur_tick then invalid_arg "Wheel.advance: time went backwards";
  let before = t.n_fired in
  if t.n_pending = 0 then t.cur_tick <- target
  else
    while t.cur_tick < target do
      if t.n_pending = 0 then t.cur_tick <- target else tick t
    done;
  t.n_fired - before

let pending t = t.n_pending
let fired t = t.n_fired
let cascades t = t.n_cascades
