(** Hierarchical timing wheel — the uktime micro-library's timer engine.

    Kernel network stacks arm and cancel enormous numbers of short timers
    (TCP retransmission, delayed ACK); a hashed hierarchical wheel gives
    O(1) insert/cancel where a heap pays O(log n). Four levels of 256
    slots at increasing granularity, cascading on overflow — the classic
    Varghese-Lauck design used by Linux and lwIP.

    Time is the simulation's cycle counter; {!advance} fires due timers in
    order of their slots (within one slot, insertion order). *)

type t
type timer

val create : ?granularity:int -> now:int -> unit -> t
(** [granularity] = cycles per level-0 tick (default 256). *)

val arm : t -> deadline:int -> (unit -> unit) -> timer
(** Schedule a callback at an absolute cycle deadline (clamped to now+1
    if in the past). O(1). *)

val cancel : t -> timer -> bool
(** [true] if the timer was pending (O(1)); firing and double-cancel
    return [false]. *)

val advance : t -> now:int -> int
(** Move time forward, firing every timer whose deadline has passed;
    returns the number fired. Raises [Invalid_argument] if [now] goes
    backwards. *)

val pending : t -> int
val fired : t -> int
val cascades : t -> int
(** Slot-migration operations performed (the wheel's only non-O(1)
    moments). *)
