lib/uktime/wheel.ml: Array List
