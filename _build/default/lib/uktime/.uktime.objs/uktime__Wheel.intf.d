lib/uktime/wheel.mli:
