lib/uklibparam/libparam.mli: Format
