lib/uklibparam/libparam.ml: Buffer Fmt Hashtbl List Option Printf String
