(** uklibparam: kernel command-line parameters.

    Unikraft libraries export tunables addressed as [lib.param]; the boot
    command line assigns them ("netdev.ip=172.44.0.2 vfs.rootfs=9pfs --
    app args"). Everything after ["--"] is left for the application's
    argv. Integer parameters accept K/M/G size suffixes. *)

type value = Int of int | Bool of bool | String of string

val pp_value : Format.formatter -> value -> unit

type t

val create : unit -> t

val register : t -> lib:string -> name:string -> ?doc:string -> value -> unit
(** Declare a parameter with its default. Raises [Invalid_argument] on
    duplicates. *)

val get : t -> lib:string -> name:string -> value option
(** Current value (default until {!parse} assigns it). *)

val get_int : t -> lib:string -> name:string -> int option
val get_bool : t -> lib:string -> name:string -> bool option
val get_string : t -> lib:string -> name:string -> string option

val parse : t -> string -> (string list, string) result
(** Apply a command line; returns the application argv remainder.
    Errors on unknown parameters, missing '=', or type mismatches
    (booleans accept on/off/true/false/1/0). *)

val assignments : t -> (string * string * value) list
(** (lib, name, current value), sorted. *)

val usage : t -> string
(** Help text listing every registered parameter. *)
