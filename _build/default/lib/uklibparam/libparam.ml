type value = Int of int | Bool of bool | String of string

let pp_value ppf = function
  | Int i -> Fmt.int ppf i
  | Bool b -> Fmt.bool ppf b
  | String s -> Fmt.string ppf s

type param = { doc : string; default : value; mutable current : value }

type t = { params : (string * string, param) Hashtbl.t }

let create () = { params = Hashtbl.create 32 }

let register t ~lib ~name ?(doc = "") default =
  let key = (lib, name) in
  if Hashtbl.mem t.params key then
    invalid_arg (Printf.sprintf "Libparam.register: duplicate %s.%s" lib name);
  Hashtbl.replace t.params key { doc; default; current = default }

let get t ~lib ~name =
  Option.map (fun p -> p.current) (Hashtbl.find_opt t.params (lib, name))

let get_int t ~lib ~name =
  match get t ~lib ~name with Some (Int i) -> Some i | Some _ | None -> None

let get_bool t ~lib ~name =
  match get t ~lib ~name with Some (Bool b) -> Some b | Some _ | None -> None

let get_string t ~lib ~name =
  match get t ~lib ~name with Some (String s) -> Some s | Some _ | None -> None

(* "64", "16K", "32M", "1G" *)
let parse_int s =
  let n = String.length s in
  if n = 0 then None
  else begin
    let mult, digits =
      match s.[n - 1] with
      | 'K' | 'k' -> (1024, String.sub s 0 (n - 1))
      | 'M' | 'm' -> (1024 * 1024, String.sub s 0 (n - 1))
      | 'G' | 'g' -> (1024 * 1024 * 1024, String.sub s 0 (n - 1))
      | _ -> (1, s)
    in
    Option.map (fun v -> v * mult) (int_of_string_opt digits)
  end

let parse_bool = function
  | "1" | "on" | "true" | "yes" -> Some true
  | "0" | "off" | "false" | "no" -> Some false
  | _ -> None

let apply t token =
  match String.index_opt token '=' with
  | None -> Error (Printf.sprintf "missing '=' in %S" token)
  | Some eq -> (
      let lhs = String.sub token 0 eq in
      let rhs = String.sub token (eq + 1) (String.length token - eq - 1) in
      match String.index_opt lhs '.' with
      | None -> Error (Printf.sprintf "parameter %S is not of the form lib.param" lhs)
      | Some dot -> (
          let lib = String.sub lhs 0 dot in
          let name = String.sub lhs (dot + 1) (String.length lhs - dot - 1) in
          match Hashtbl.find_opt t.params (lib, name) with
          | None -> Error (Printf.sprintf "unknown parameter %s.%s" lib name)
          | Some p -> (
              match p.default with
              | Int _ -> (
                  match parse_int rhs with
                  | Some v ->
                      p.current <- Int v;
                      Ok ()
                  | None -> Error (Printf.sprintf "%s.%s expects an integer" lib name))
              | Bool _ -> (
                  match parse_bool rhs with
                  | Some v ->
                      p.current <- Bool v;
                      Ok ()
                  | None -> Error (Printf.sprintf "%s.%s expects a boolean" lib name))
              | String _ ->
                  p.current <- String rhs;
                  Ok ())))

let parse t cmdline =
  let tokens = List.filter (fun s -> s <> "") (String.split_on_char ' ' cmdline) in
  let rec go = function
    | [] -> Ok []
    | "--" :: rest -> Ok rest
    | tok :: rest -> (
        match apply t tok with
        | Ok () -> go rest
        | Error e -> Error e)
  in
  go tokens

let assignments t =
  Hashtbl.fold (fun (lib, name) p acc -> (lib, name, p.current) :: acc) t.params []
  |> List.sort compare

let usage t =
  let buf = Buffer.create 128 in
  List.iter
    (fun ((lib, name), p) ->
      Buffer.add_string buf
        (Fmt.str "%-24s %a (default %a) %s\n"
           (Printf.sprintf "%s.%s" lib name)
           pp_value p.current pp_value p.default p.doc))
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.params [] |> List.sort compare);
  Buffer.contents buf
