(** Directed graphs with string-named nodes and integer-weighted edges.

    Used for micro-library dependency graphs (Figs 2, 3), the Linux kernel
    component graph (Fig 1), and link-time symbol reachability. *)

type t

val create : unit -> t

val add_node : t -> string -> unit
(** Idempotent. *)

val add_edge : ?weight:int -> t -> string -> string -> unit
(** [add_edge g a b] adds (or reinforces, summing weights; default weight 1)
    an edge a -> b. Creates missing nodes. *)

val mem_node : t -> string -> bool
val mem_edge : t -> string -> string -> bool
val weight : t -> string -> string -> int
(** Edge weight, 0 if absent. *)

val nodes : t -> string list
(** Sorted. *)

val succs : t -> string -> string list
(** Sorted successors; [] for unknown nodes. *)

val preds : t -> string -> string list

val n_nodes : t -> int
val n_edges : t -> int
(** Distinct directed edges. *)

val total_weight : t -> int
(** Sum of all edge weights (total dependency count in Fig 1 terms). *)

val out_degree : t -> string -> int
val in_degree : t -> string -> int

val reachable : t -> string list -> (string -> bool)
(** [reachable g roots] is the membership predicate of the set of nodes
    reachable from [roots] (roots included when present in the graph). *)

val reachable_set : t -> string list -> string list
(** Sorted list form of {!reachable}. *)

val topo_sort : t -> (string list, string list) result
(** [Ok order] with dependencies-first order, or [Error cycle] exhibiting a
    cycle. *)

val has_cycle : t -> bool

val transpose : t -> t

val subgraph : t -> (string -> bool) -> t
(** Induced subgraph on nodes satisfying the predicate. *)

val to_dot : ?name:string -> t -> string
(** Graphviz rendering with edge-weight labels. *)

val fold_edges : (string -> string -> int -> 'a -> 'a) -> t -> 'a -> 'a
