module Smap = Map.Make (String)
module Sset = Set.Make (String)

type t = {
  mutable adj : int Smap.t Smap.t; (* node -> successor -> weight *)
  mutable radj : Sset.t Smap.t; (* node -> predecessors *)
}

let create () = { adj = Smap.empty; radj = Smap.empty }

let add_node g n =
  if not (Smap.mem n g.adj) then begin
    g.adj <- Smap.add n Smap.empty g.adj;
    g.radj <- Smap.add n Sset.empty g.radj
  end

let add_edge ?(weight = 1) g a b =
  add_node g a;
  add_node g b;
  let succ = Smap.find a g.adj in
  let w = match Smap.find_opt b succ with Some w -> w + weight | None -> weight in
  g.adj <- Smap.add a (Smap.add b w succ) g.adj;
  g.radj <- Smap.add b (Sset.add a (Smap.find b g.radj)) g.radj

let mem_node g n = Smap.mem n g.adj

let mem_edge g a b =
  match Smap.find_opt a g.adj with
  | None -> false
  | Some succ -> Smap.mem b succ

let weight g a b =
  match Smap.find_opt a g.adj with
  | None -> 0
  | Some succ -> ( match Smap.find_opt b succ with Some w -> w | None -> 0)

let nodes g = Smap.fold (fun n _ acc -> n :: acc) g.adj [] |> List.rev

let succs g n =
  match Smap.find_opt n g.adj with
  | None -> []
  | Some succ -> Smap.fold (fun m _ acc -> m :: acc) succ [] |> List.rev

let preds g n =
  match Smap.find_opt n g.radj with
  | None -> []
  | Some set -> Sset.elements set

let n_nodes g = Smap.cardinal g.adj
let n_edges g = Smap.fold (fun _ succ acc -> acc + Smap.cardinal succ) g.adj 0
let total_weight g = Smap.fold (fun _ succ acc -> Smap.fold (fun _ w a -> a + w) succ acc) g.adj 0
let out_degree g n = List.length (succs g n)
let in_degree g n = List.length (preds g n)

let reachable g roots =
  let visited = ref Sset.empty in
  let rec visit n =
    if mem_node g n && not (Sset.mem n !visited) then begin
      visited := Sset.add n !visited;
      List.iter visit (succs g n)
    end
  in
  List.iter visit roots;
  let set = !visited in
  fun n -> Sset.mem n set

let reachable_set g roots =
  let p = reachable g roots in
  List.filter p (nodes g)

let topo_sort g =
  (* Depth-first with colouring; grey-edge hit exhibits a cycle. *)
  let state = Hashtbl.create 64 in (* 1 = grey, 2 = black *)
  let order = ref [] in
  let exception Cycle of string list in
  let rec prefix_until n = function
    | [] -> []
    | x :: rest -> if String.equal x n then [] else x :: prefix_until n rest
  in
  let rec visit path n =
    match Hashtbl.find_opt state n with
    | Some 2 -> ()
    | Some _ -> raise (Cycle (List.rev (n :: prefix_until n path)))
    | None ->
        Hashtbl.replace state n 1;
        List.iter (visit (n :: path)) (succs g n);
        Hashtbl.replace state n 2;
        order := n :: !order
  in
  try
    List.iter (visit []) (nodes g);
    (* !order has dependents first (post-order reversed); dependencies-first
       means successors (dependencies) come before the node. *)
    Ok (List.rev !order)
  with Cycle c -> Error c

let has_cycle g = match topo_sort g with Ok _ -> false | Error _ -> true

let transpose g =
  let t = create () in
  Smap.iter
    (fun a succ ->
      add_node t a;
      Smap.iter (fun b w -> add_edge ~weight:w t b a) succ)
    g.adj;
  t

let subgraph g p =
  let s = create () in
  Smap.iter
    (fun a succ ->
      if p a then begin
        add_node s a;
        Smap.iter (fun b w -> if p b then add_edge ~weight:w s a b) succ
      end)
    g.adj;
  s

let to_dot ?(name = "g") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" name);
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" n)) (nodes g);
  Smap.iter
    (fun a succ ->
      Smap.iter
        (fun b w ->
          Buffer.add_string buf (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%d\"];\n" a b w))
        succ)
    g.adj;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let fold_edges f g acc =
  Smap.fold (fun a succ acc -> Smap.fold (fun b w acc -> f a b w acc) succ acc) g.adj acc
