lib/ukgraph/linux_kernel.mli: Digraph
