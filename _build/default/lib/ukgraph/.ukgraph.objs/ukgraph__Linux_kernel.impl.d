lib/ukgraph/linux_kernel.ml: Digraph List String
