lib/ukgraph/digraph.mli:
