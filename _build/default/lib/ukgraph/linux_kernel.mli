(** Linux kernel component dependency dataset (paper Fig. 1).

    The paper approximates Linux components by top-level source
    subdirectories and counts cross-component function calls extracted with
    cscope. We encode that analysis' output as a dataset: the component list
    and the pairwise cross-call counts (synthesized to match the published
    graph's structure — a dense graph in which every major component depends
    on nearly every other, with kernel/mm/lib as universal sinks). *)

val components : string list
(** Top-level components in the analysis. *)

val graph : unit -> Digraph.t
(** The cross-call dependency graph; edge weights are call counts. *)

val dependency_count : from_:string -> to_:string -> int
(** Cross-call count, 0 if none recorded. *)

val density : unit -> float
(** Fraction of ordered component pairs connected by an edge. *)

val removal_impact : string -> string list
(** [removal_impact c] lists the components that directly depend on [c] —
    the set one must understand and fix to remove [c] (the paper's point
    about Fig 1). *)
