let components =
  [ "arch"; "block"; "crypto"; "drivers"; "fs"; "init"; "ipc"; "kernel";
    "lib"; "mm"; "net"; "security"; "sound"; "virt" ]

(* (from, to, cross-component call count). Synthesized to reproduce the
   structure of the paper's Fig 1: a near-complete digraph where kernel, mm
   and lib are depended upon by everything, drivers/fs/net are the largest
   callers, and even "leaf" components like sound reach into half the
   kernel. Counts are in the same order of magnitude as a cscope pass over
   Linux 4.19. *)
let edges =
  [ ("arch", "kernel", 2790); ("arch", "mm", 1460); ("arch", "lib", 830);
    ("arch", "drivers", 640); ("arch", "fs", 210); ("arch", "init", 95);
    ("arch", "crypto", 60); ("arch", "security", 35); ("arch", "virt", 320);
    ("block", "kernel", 1180); ("block", "mm", 740); ("block", "lib", 460);
    ("block", "fs", 230); ("block", "drivers", 150); ("block", "crypto", 45);
    ("crypto", "kernel", 620); ("crypto", "lib", 540); ("crypto", "mm", 230);
    ("drivers", "kernel", 12400); ("drivers", "mm", 4900); ("drivers", "lib", 4100);
    ("drivers", "net", 2600); ("drivers", "fs", 980); ("drivers", "block", 760);
    ("drivers", "crypto", 310); ("drivers", "sound", 120); ("drivers", "arch", 540);
    ("drivers", "security", 85);
    ("fs", "kernel", 5200); ("fs", "mm", 3800); ("fs", "lib", 1900);
    ("fs", "block", 1450); ("fs", "security", 620); ("fs", "crypto", 280);
    ("fs", "drivers", 190); ("fs", "net", 170); ("fs", "ipc", 30);
    ("init", "kernel", 310); ("init", "mm", 140); ("init", "fs", 120);
    ("init", "drivers", 90); ("init", "lib", 70); ("init", "security", 25);
    ("ipc", "kernel", 340); ("ipc", "mm", 210); ("ipc", "fs", 130);
    ("ipc", "lib", 80); ("ipc", "security", 60);
    ("kernel", "mm", 1650); ("kernel", "lib", 1200); ("kernel", "fs", 540);
    ("kernel", "drivers", 230); ("kernel", "security", 180); ("kernel", "arch", 420);
    ("kernel", "block", 40); ("kernel", "net", 60);
    ("lib", "kernel", 480); ("lib", "mm", 260);
    ("mm", "kernel", 1900); ("mm", "lib", 640); ("mm", "fs", 580);
    ("mm", "block", 120); ("mm", "arch", 230);
    ("net", "kernel", 6100); ("net", "mm", 2300); ("net", "lib", 1750);
    ("net", "crypto", 520); ("net", "security", 430); ("net", "drivers", 380);
    ("net", "fs", 260); ("net", "ipc", 20);
    ("security", "kernel", 760); ("security", "fs", 520); ("security", "mm", 310);
    ("security", "lib", 240); ("security", "net", 160); ("security", "crypto", 110);
    ("sound", "kernel", 1350); ("sound", "mm", 520); ("sound", "lib", 430);
    ("sound", "drivers", 380); ("sound", "fs", 90);
    ("virt", "kernel", 540); ("virt", "mm", 380); ("virt", "arch", 290);
    ("virt", "lib", 70) ]

let graph () =
  let g = Digraph.create () in
  List.iter (Digraph.add_node g) components;
  List.iter (fun (a, b, w) -> Digraph.add_edge ~weight:w g a b) edges;
  g

let dependency_count ~from_ ~to_ =
  match List.find_opt (fun (a, b, _) -> String.equal a from_ && String.equal b to_) edges with
  | Some (_, _, w) -> w
  | None -> 0

let density () =
  let g = graph () in
  let n = Digraph.n_nodes g in
  float_of_int (Digraph.n_edges g) /. float_of_int (n * (n - 1))

let removal_impact c = Digraph.preds (graph ()) c
