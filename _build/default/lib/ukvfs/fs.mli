(** Filesystem provider interface consumed by vfscore.

    A filesystem is a record of operations (the OCaml rendering of
    Unikraft's vnode ops), addressed by paths relative to its mount point
    ("/" = the filesystem root, components separated by '/'). *)

type errno =
  | Enoent
  | Eexist
  | Enotdir
  | Eisdir
  | Ebadf
  | Enospc
  | Einval
  | Eio
  | Enosys

val errno_to_string : errno -> string

type filetype = Regular | Directory

type stat = { size : int; ftype : filetype }

type handle = int

type t = {
  fsname : string;
  open_file : string -> create:bool -> (handle, errno) result;
  read : handle -> off:int -> len:int -> (bytes, errno) result;
      (** Short reads at EOF; empty at/after EOF. *)
  write : handle -> off:int -> bytes -> (int, errno) result;
  close : handle -> unit;
  stat : string -> (stat, errno) result;
  mkdir : string -> (unit, errno) result;
  unlink : string -> (unit, errno) result;
  readdir : string -> (string list, errno) result;
  fsync : handle -> (unit, errno) result;
}

val split_path : string -> string list
(** "/a/b//c" -> ["a"; "b"; "c"]. *)

val not_supported : string -> t
(** A provider whose every operation fails with [Enosys] — a base to
    derive partial filesystems from. *)
