type errno =
  | Enoent
  | Eexist
  | Enotdir
  | Eisdir
  | Ebadf
  | Enospc
  | Einval
  | Eio
  | Enosys

let errno_to_string = function
  | Enoent -> "ENOENT"
  | Eexist -> "EEXIST"
  | Enotdir -> "ENOTDIR"
  | Eisdir -> "EISDIR"
  | Ebadf -> "EBADF"
  | Enospc -> "ENOSPC"
  | Einval -> "EINVAL"
  | Eio -> "EIO"
  | Enosys -> "ENOSYS"

type filetype = Regular | Directory

type stat = { size : int; ftype : filetype }

type handle = int

type t = {
  fsname : string;
  open_file : string -> create:bool -> (handle, errno) result;
  read : handle -> off:int -> len:int -> (bytes, errno) result;
  write : handle -> off:int -> bytes -> (int, errno) result;
  close : handle -> unit;
  stat : string -> (stat, errno) result;
  mkdir : string -> (unit, errno) result;
  unlink : string -> (unit, errno) result;
  readdir : string -> (string list, errno) result;
  fsync : handle -> (unit, errno) result;
}

let split_path p = List.filter (fun c -> c <> "") (String.split_on_char '/' p)

let not_supported fsname =
  {
    fsname;
    open_file = (fun _ ~create:_ -> Error Enosys);
    read = (fun _ ~off:_ ~len:_ -> Error Enosys);
    write = (fun _ ~off:_ _ -> Error Enosys);
    close = (fun _ -> ());
    stat = (fun _ -> Error Enosys);
    mkdir = (fun _ -> Error Enosys);
    unlink = (fun _ -> Error Enosys);
    readdir = (fun _ -> Error Enosys);
    fsync = (fun _ -> Error Enosys);
  }
