type qid = { qtype : int; version : int; path : int }

let qid_file path = { qtype = 0x00; version = 0; path }
let qid_dir path = { qtype = 0x80; version = 0; path }

type msg =
  | Tversion of { msize : int; version : string }
  | Rversion of { msize : int; version : string }
  | Tattach of { fid : int; uname : string; aname : string }
  | Rattach of qid
  | Twalk of { fid : int; newfid : int; wnames : string list }
  | Rwalk of qid list
  | Topen of { fid : int; mode : int }
  | Ropen of { q : qid; iounit : int }
  | Tcreate of { fid : int; name : string; perm : int; mode : int }
  | Rcreate of { q : qid; iounit : int }
  | Tread of { fid : int; offset : int; count : int }
  | Rread of bytes
  | Twrite of { fid : int; offset : int; data : bytes }
  | Rwrite of int
  | Tclunk of int
  | Rclunk
  | Tremove of int
  | Rremove
  | Tstat of int
  | Rstat of { name : string; length : int; is_dir : bool }
  | Rerror of string

type tagged = { tag : int; body : msg }

let type_code = function
  | Tversion _ -> 100
  | Rversion _ -> 101
  | Tattach _ -> 104
  | Rattach _ -> 105
  | Rerror _ -> 107
  | Twalk _ -> 110
  | Rwalk _ -> 111
  | Topen _ -> 112
  | Ropen _ -> 113
  | Tcreate _ -> 114
  | Rcreate _ -> 115
  | Tread _ -> 116
  | Rread _ -> 117
  | Twrite _ -> 118
  | Rwrite _ -> 119
  | Tclunk _ -> 120
  | Rclunk -> 121
  | Tremove _ -> 122
  | Rremove -> 123
  | Tstat _ -> 124
  | Rstat _ -> 125

let msg_name m =
  match m with
  | Tversion _ -> "Tversion"
  | Rversion _ -> "Rversion"
  | Tattach _ -> "Tattach"
  | Rattach _ -> "Rattach"
  | Rerror _ -> "Rerror"
  | Twalk _ -> "Twalk"
  | Rwalk _ -> "Rwalk"
  | Topen _ -> "Topen"
  | Ropen _ -> "Ropen"
  | Tcreate _ -> "Tcreate"
  | Rcreate _ -> "Rcreate"
  | Tread _ -> "Tread"
  | Rread _ -> "Rread"
  | Twrite _ -> "Twrite"
  | Rwrite _ -> "Rwrite"
  | Tclunk _ -> "Tclunk"
  | Rclunk -> "Rclunk"
  | Tremove _ -> "Tremove"
  | Rremove -> "Rremove"
  | Tstat _ -> "Tstat"
  | Rstat _ -> "Rstat"

(* --- little-endian writer/reader ---------------------------------------- *)

module Wr = struct
  let u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

  let u16 buf v =
    u8 buf v;
    u8 buf (v lsr 8)

  let u32 buf v =
    u16 buf v;
    u16 buf (v lsr 16)

  let u64 buf v =
    u32 buf v;
    u32 buf (v lsr 32)

  let str buf s =
    u16 buf (String.length s);
    Buffer.add_string buf s

  let data buf b =
    u32 buf (Bytes.length b);
    Buffer.add_bytes buf b

  let qid buf (q : qid) =
    u8 buf q.qtype;
    u32 buf q.version;
    u64 buf q.path
end

module Rd = struct
  type cursor = { b : bytes; mutable pos : int }

  exception Truncated

  let check c n = if c.pos + n > Bytes.length c.b then raise Truncated

  let u8 c =
    check c 1;
    let v = Char.code (Bytes.get c.b c.pos) in
    c.pos <- c.pos + 1;
    v

  let u16 c =
    let lo = u8 c in
    lo lor (u8 c lsl 8)

  let u32 c =
    let lo = u16 c in
    lo lor (u16 c lsl 16)

  let u64 c =
    let lo = u32 c in
    lo lor (u32 c lsl 32)

  let str c =
    let n = u16 c in
    check c n;
    let s = Bytes.sub_string c.b c.pos n in
    c.pos <- c.pos + n;
    s

  let data c =
    let n = u32 c in
    check c n;
    let b = Bytes.sub c.b c.pos n in
    c.pos <- c.pos + n;
    b

  let qid c =
    let qtype = u8 c in
    let version = u32 c in
    let path = u64 c in
    { qtype; version; path }
end

let encode { tag; body } =
  let buf = Buffer.create 64 in
  Wr.u32 buf 0 (* size patched below *);
  Wr.u8 buf (type_code body);
  Wr.u16 buf tag;
  (match body with
  | Tversion { msize; version } | Rversion { msize; version } ->
      Wr.u32 buf msize;
      Wr.str buf version
  | Tattach { fid; uname; aname } ->
      Wr.u32 buf fid;
      Wr.str buf uname;
      Wr.str buf aname
  | Rattach q -> Wr.qid buf q
  | Twalk { fid; newfid; wnames } ->
      Wr.u32 buf fid;
      Wr.u32 buf newfid;
      Wr.u16 buf (List.length wnames);
      List.iter (Wr.str buf) wnames
  | Rwalk qids ->
      Wr.u16 buf (List.length qids);
      List.iter (Wr.qid buf) qids
  | Topen { fid; mode } ->
      Wr.u32 buf fid;
      Wr.u8 buf mode
  | Ropen { q; iounit } | Rcreate { q; iounit } ->
      Wr.qid buf q;
      Wr.u32 buf iounit
  | Tcreate { fid; name; perm; mode } ->
      Wr.u32 buf fid;
      Wr.str buf name;
      Wr.u32 buf perm;
      Wr.u8 buf mode
  | Tread { fid; offset; count } ->
      Wr.u32 buf fid;
      Wr.u64 buf offset;
      Wr.u32 buf count
  | Rread b -> Wr.data buf b
  | Twrite { fid; offset; data } ->
      Wr.u32 buf fid;
      Wr.u64 buf offset;
      Wr.data buf data
  | Rwrite n -> Wr.u32 buf n
  | Tclunk fid | Tremove fid | Tstat fid -> Wr.u32 buf fid
  | Rclunk | Rremove -> ()
  | Rstat { name; length; is_dir } ->
      Wr.str buf name;
      Wr.u64 buf length;
      Wr.u8 buf (if is_dir then 1 else 0)
  | Rerror e -> Wr.str buf e);
  let out = Buffer.to_bytes buf in
  (* Patch the size field (little-endian). *)
  let size = Bytes.length out in
  Bytes.set out 0 (Char.chr (size land 0xff));
  Bytes.set out 1 (Char.chr ((size lsr 8) land 0xff));
  Bytes.set out 2 (Char.chr ((size lsr 16) land 0xff));
  Bytes.set out 3 (Char.chr ((size lsr 24) land 0xff));
  out

(* Sequential n-element read ([List.init]'s application order is
   unspecified, which would scramble the cursor). *)
let rec read_n n f = if n <= 0 then [] else let x = f () in x :: read_n (n - 1) f

let decode b =
  let c = { Rd.b; pos = 0 } in
  match
    let size = Rd.u32 c in
    if size <> Bytes.length b then Error "ninep: size mismatch"
    else begin
      let ty = Rd.u8 c in
      let tag = Rd.u16 c in
      let body =
        match ty with
        | 100 ->
            let msize = Rd.u32 c in
            Ok (Tversion { msize; version = Rd.str c })
        | 101 ->
            let msize = Rd.u32 c in
            Ok (Rversion { msize; version = Rd.str c })
        | 104 ->
            let fid = Rd.u32 c in
            let uname = Rd.str c in
            Ok (Tattach { fid; uname; aname = Rd.str c })
        | 105 -> Ok (Rattach (Rd.qid c))
        | 107 -> Ok (Rerror (Rd.str c))
        | 110 ->
            let fid = Rd.u32 c in
            let newfid = Rd.u32 c in
            let n = Rd.u16 c in
            Ok (Twalk { fid; newfid; wnames = read_n n (fun () -> Rd.str c) })
        | 111 ->
            let n = Rd.u16 c in
            Ok (Rwalk (read_n n (fun () -> Rd.qid c)))
        | 112 ->
            let fid = Rd.u32 c in
            Ok (Topen { fid; mode = Rd.u8 c })
        | 113 ->
            let q = Rd.qid c in
            Ok (Ropen { q; iounit = Rd.u32 c })
        | 114 ->
            let fid = Rd.u32 c in
            let name = Rd.str c in
            let perm = Rd.u32 c in
            Ok (Tcreate { fid; name; perm; mode = Rd.u8 c })
        | 115 ->
            let q = Rd.qid c in
            Ok (Rcreate { q; iounit = Rd.u32 c })
        | 116 ->
            let fid = Rd.u32 c in
            let offset = Rd.u64 c in
            Ok (Tread { fid; offset; count = Rd.u32 c })
        | 117 -> Ok (Rread (Rd.data c))
        | 118 ->
            let fid = Rd.u32 c in
            let offset = Rd.u64 c in
            Ok (Twrite { fid; offset; data = Rd.data c })
        | 119 -> Ok (Rwrite (Rd.u32 c))
        | 120 -> Ok (Tclunk (Rd.u32 c))
        | 121 -> Ok Rclunk
        | 122 -> Ok (Tremove (Rd.u32 c))
        | 123 -> Ok Rremove
        | 124 -> Ok (Tstat (Rd.u32 c))
        | 125 ->
            let name = Rd.str c in
            let length = Rd.u64 c in
            Ok (Rstat { name; length; is_dir = Rd.u8 c = 1 })
        | n -> Error (Printf.sprintf "ninep: unknown message type %d" n)
      in
      match body with Ok m -> Ok { tag; body = m } | Error e -> Error e
    end
  with
  | result -> result
  | exception Rd.Truncated -> Error "ninep: truncated message"
