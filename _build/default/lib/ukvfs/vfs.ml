type mount = { prefix : string; fs : Fs.t }

type open_file = { ofs : Fs.t; handle : Fs.handle; mutable offset : int }

type t = {
  clock : Uksim.Clock.t;
  mutable mounts : mount list; (* sorted by decreasing prefix length *)
  fds : (int, open_file) Hashtbl.t;
  mutable next_fd : int;
  dentries : (string, Fs.t * string) Hashtbl.t; (* path -> (fs, relative) *)
  mutable hits : int;
  mutable misses : int;
}

(* vfscore costs: fd table indirection, mount lookup, per-component
   resolution (what SHFS specialization removes in Fig 22). *)
let fd_cost = 60
let component_cost = 150
let dentry_hit_cost = 70

let create ~clock =
  {
    clock;
    mounts = [];
    fds = Hashtbl.create 64;
    next_fd = 3;
    dentries = Hashtbl.create 256;
    hits = 0;
    misses = 0;
  }

let charge t c = Uksim.Clock.advance t.clock c

let normalize at = if at = "" then "/" else at

let mount t ~at fs =
  let at = normalize at in
  if List.exists (fun m -> m.prefix = at) t.mounts then Error Fs.Eexist
  else begin
    t.mounts <-
      List.sort
        (fun a b -> compare (String.length b.prefix) (String.length a.prefix))
        ({ prefix = at; fs } :: t.mounts);
    Hashtbl.reset t.dentries;
    Ok ()
  end

let umount t ~at =
  let at = normalize at in
  if List.exists (fun m -> m.prefix = at) t.mounts then begin
    t.mounts <- List.filter (fun m -> m.prefix <> at) t.mounts;
    Hashtbl.reset t.dentries;
    Ok ()
  end
  else Error Fs.Enoent

let prefix_matches ~prefix path =
  prefix = "/"
  || String.length path >= String.length prefix
     && String.sub path 0 (String.length prefix) = prefix
     && (String.length path = String.length prefix || path.[String.length prefix] = '/')

(* Resolve an absolute path to (fs, fs-relative path), through the dentry
   cache; a miss pays per-component resolution cost. *)
let resolve t path =
  match Hashtbl.find_opt t.dentries path with
  | Some entry ->
      t.hits <- t.hits + 1;
      charge t dentry_hit_cost;
      Ok entry
  | None -> (
      t.misses <- t.misses + 1;
      charge t (component_cost * max 1 (List.length (Fs.split_path path)));
      match List.find_opt (fun m -> prefix_matches ~prefix:m.prefix path) t.mounts with
      | None -> Error Fs.Enoent
      | Some m ->
          let rel =
            if m.prefix = "/" then path
            else String.sub path (String.length m.prefix) (String.length path - String.length m.prefix)
          in
          let rel = if rel = "" then "/" else rel in
          let entry = (m.fs, rel) in
          Hashtbl.replace t.dentries path entry;
          Ok entry)

type fd = int

let with_fd t fd f =
  charge t fd_cost;
  match Hashtbl.find_opt t.fds fd with
  | None -> Error Fs.Ebadf
  | Some of_ -> f of_

let open_file t path ?(create = false) () =
  charge t fd_cost;
  match resolve t path with
  | Error e -> Error e
  | Ok (fs, rel) -> (
      match fs.Fs.open_file rel ~create with
      | Error e -> Error e
      | Ok handle ->
          let fd = t.next_fd in
          t.next_fd <- fd + 1;
          Hashtbl.replace t.fds fd { ofs = fs; handle; offset = 0 };
          Ok fd)

let pread t fd ~off ~len = with_fd t fd (fun o -> o.ofs.Fs.read o.handle ~off ~len)

let read t fd ~len =
  with_fd t fd (fun o ->
      match o.ofs.Fs.read o.handle ~off:o.offset ~len with
      | Ok data ->
          o.offset <- o.offset + Bytes.length data;
          Ok data
      | Error e -> Error e)

let pwrite t fd ~off data = with_fd t fd (fun o -> o.ofs.Fs.write o.handle ~off data)

let write t fd data =
  with_fd t fd (fun o ->
      match o.ofs.Fs.write o.handle ~off:o.offset data with
      | Ok n ->
          o.offset <- o.offset + n;
          Ok n
      | Error e -> Error e)

let lseek t fd pos =
  with_fd t fd (fun o ->
      if pos < 0 then Error Fs.Einval
      else begin
        o.offset <- pos;
        Ok pos
      end)

let close t fd =
  charge t fd_cost;
  match Hashtbl.find_opt t.fds fd with
  | None -> Error Fs.Ebadf
  | Some o ->
      o.ofs.Fs.close o.handle;
      Hashtbl.remove t.fds fd;
      Ok ()

let fsync t fd = with_fd t fd (fun o -> o.ofs.Fs.fsync o.handle)

let on_path t path f =
  match resolve t path with
  | Error e -> Error e
  | Ok (fs, rel) -> f fs rel

let stat t path = on_path t path (fun fs rel -> fs.Fs.stat rel)

let mkdir t path =
  Hashtbl.remove t.dentries path;
  on_path t path (fun fs rel -> fs.Fs.mkdir rel)

let unlink t path =
  Hashtbl.remove t.dentries path;
  on_path t path (fun fs rel -> fs.Fs.unlink rel)

let readdir t path = on_path t path (fun fs rel -> fs.Fs.readdir rel)
let open_fds t = Hashtbl.length t.fds
let dentry_hits t = t.hits
let dentry_misses t = t.misses
