type node = Dir of (string, node) Hashtbl.t | File of Buffer.t

type state = {
  clock : Uksim.Clock.t;
  root : (string, node) Hashtbl.t;
  handles : (int, Buffer.t) Hashtbl.t;
  mutable next_handle : int;
  mutable used : int;
  capacity : int;
}

let op_cost = 90 (* hashtable hop per component, memory-speed *)

let charge t c = Uksim.Clock.advance t.clock c

(* Walk to the parent dir of [path]; returns (dir table, basename). *)
let walk_parent t path =
  let rec go dir = function
    | [] -> Error Fs.Einval
    | [ base ] -> Ok (dir, base)
    | comp :: rest -> (
        charge t op_cost;
        match Hashtbl.find_opt dir comp with
        | Some (Dir d) -> go d rest
        | Some (File _) -> Error Fs.Enotdir
        | None -> Error Fs.Enoent)
  in
  go t.root (Fs.split_path path)

let find_node t path =
  let rec go dir = function
    | [] -> Ok (Dir dir)
    | comp :: rest -> (
        charge t op_cost;
        match Hashtbl.find_opt dir comp with
        | Some (Dir d) -> go d rest
        | Some (File _ as f) -> if rest = [] then Ok f else Error Fs.Enotdir
        | None -> Error Fs.Enoent)
  in
  go t.root (Fs.split_path path)

let create ~clock ?(capacity = 64 * 1024 * 1024) () =
  let t =
    { clock; root = Hashtbl.create 64; handles = Hashtbl.create 32; next_handle = 1;
      used = 0; capacity }
  in
  let open_file path ~create =
    charge t op_cost;
    match find_node t path with
    | Ok (File buf) ->
        let h = t.next_handle in
        t.next_handle <- h + 1;
        Hashtbl.replace t.handles h buf;
        Ok h
    | Ok (Dir _) -> Error Fs.Eisdir
    | Error Fs.Enoent when create -> (
        match walk_parent t path with
        | Error e -> Error e
        | Ok (dir, base) ->
            let buf = Buffer.create 256 in
            Hashtbl.replace dir base (File buf);
            let h = t.next_handle in
            t.next_handle <- h + 1;
            Hashtbl.replace t.handles h buf;
            Ok h)
    | Error e -> Error e
  in
  let read h ~off ~len =
    charge t op_cost;
    match Hashtbl.find_opt t.handles h with
    | None -> Error Fs.Ebadf
    | Some buf ->
        if off < 0 || len < 0 then Error Fs.Einval
        else begin
          let size = Buffer.length buf in
          let n = max 0 (min len (size - off)) in
          charge t (Uksim.Cost.memcpy n);
          Ok (Bytes.sub (Buffer.to_bytes buf) off n)
        end
  in
  let write h ~off data =
    charge t op_cost;
    match Hashtbl.find_opt t.handles h with
    | None -> Error Fs.Ebadf
    | Some buf ->
        if off < 0 then Error Fs.Einval
        else begin
          let n = Bytes.length data in
          let size = Buffer.length buf in
          let grow = max 0 (off + n - size) in
          if t.used + grow > t.capacity then Error Fs.Enospc
          else begin
            charge t (Uksim.Cost.memcpy n);
            t.used <- t.used + grow;
            (* Buffer has no random-access write; rebuild the region. *)
            let content = Buffer.to_bytes buf in
            let out = Bytes.make (max size (off + n)) '\000' in
            Bytes.blit content 0 out 0 size;
            Bytes.blit data 0 out off n;
            Buffer.clear buf;
            Buffer.add_bytes buf out;
            Ok n
          end
        end
  in
  let close h = Hashtbl.remove t.handles h in
  let stat path =
    charge t op_cost;
    match find_node t path with
    | Ok (File buf) -> Ok { Fs.size = Buffer.length buf; ftype = Fs.Regular }
    | Ok (Dir _) -> Ok { Fs.size = 0; ftype = Fs.Directory }
    | Error e -> Error e
  in
  let mkdir path =
    charge t op_cost;
    match walk_parent t path with
    | Error e -> Error e
    | Ok (dir, base) ->
        if Hashtbl.mem dir base then Error Fs.Eexist
        else begin
          Hashtbl.replace dir base (Dir (Hashtbl.create 16));
          Ok ()
        end
  in
  let unlink path =
    charge t op_cost;
    match walk_parent t path with
    | Error e -> Error e
    | Ok (dir, base) -> (
        match Hashtbl.find_opt dir base with
        | Some (File buf) ->
            t.used <- t.used - Buffer.length buf;
            Hashtbl.remove dir base;
            Ok ()
        | Some (Dir d) ->
            if Hashtbl.length d = 0 then begin
              Hashtbl.remove dir base;
              Ok ()
            end
            else Error Fs.Eexist
        | None -> Error Fs.Enoent)
  in
  let readdir path =
    charge t op_cost;
    match find_node t path with
    | Ok (Dir d) -> Ok (Hashtbl.fold (fun k _ acc -> k :: acc) d [] |> List.sort compare)
    | Ok (File _) -> Error Fs.Enotdir
    | Error e -> Error e
  in
  {
    Fs.fsname = "ramfs";
    open_file;
    read;
    write;
    close;
    stat;
    mkdir;
    unlink;
    readdir;
    fsync = (fun _ -> Ok ());
  }
