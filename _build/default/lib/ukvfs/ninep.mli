(** 9P2000 protocol subset (paper §5.2): message types and wire codec.

    Little-endian framing per the Plan 9 manual: size[4] type[1] tag[2]
    body. We implement the message set Unikraft's 9pfs actually uses
    (version/attach/walk/open/create/read/write/clunk/remove/stat), with
    one documented simplification: Rstat carries (name, length, directory
    flag) rather than the full 9P stat structure, and directory reads
    return newline-separated names. *)

type qid = { qtype : int; version : int; path : int }

val qid_file : int -> qid
val qid_dir : int -> qid

type msg =
  | Tversion of { msize : int; version : string }
  | Rversion of { msize : int; version : string }
  | Tattach of { fid : int; uname : string; aname : string }
  | Rattach of qid
  | Twalk of { fid : int; newfid : int; wnames : string list }
  | Rwalk of qid list
  | Topen of { fid : int; mode : int }
  | Ropen of { q : qid; iounit : int }
  | Tcreate of { fid : int; name : string; perm : int; mode : int }
  | Rcreate of { q : qid; iounit : int }
  | Tread of { fid : int; offset : int; count : int }
  | Rread of bytes
  | Twrite of { fid : int; offset : int; data : bytes }
  | Rwrite of int
  | Tclunk of int
  | Rclunk
  | Tremove of int
  | Rremove
  | Tstat of int
  | Rstat of { name : string; length : int; is_dir : bool }
  | Rerror of string

type tagged = { tag : int; body : msg }

val encode : tagged -> bytes
val decode : bytes -> (tagged, string) result
val msg_name : msg -> string
