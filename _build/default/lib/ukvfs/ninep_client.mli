(** Guest-side 9pfs: an {!Fs.t} provider backed by 9P RPCs over a
    virtio-9p transport (paper §5.2, Figs 20 and text2).

    Every operation is one or more synchronous RPCs; reads and writes are
    chunked to the server's iounit, so a 32 KB read costs four round trips
    — the source of Fig 20's block-size scaling. *)

module Transport : sig
  type t

  val virtio_9p : clock:Uksim.Clock.t -> server:Ninep_server.t -> t
  (** Guest-visible RPC cost: request serialization, virtqueue kick (VM
      exit), host 9p processing latency, response copy and completion
      interrupt — all charged to [clock] since the caller blocks. *)

  val rpc : t -> Ninep.tagged -> (Ninep.msg, string) result
  val rpcs_sent : t -> int

  val boot_attach_cost_kvm_ns : float
  (** The 0.3 ms the paper reports enabling the 9pfs device adds to KVM
      guest boot. *)

  val boot_attach_cost_xen_ns : float
  (** 2.7 ms on Xen. *)
end

val create : transport:Transport.t -> (Fs.t, string) result
(** Performs version negotiation and attach; the result is mountable under
    {!Vfs}. *)
