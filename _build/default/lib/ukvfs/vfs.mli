(** vfscore: mount table, file descriptors, path resolution with a dentry
    cache (paper §3, scenario 3 in Fig 4).

    This is the layer the specialized SHFS experiment (Fig 22) removes:
    every operation pays per-component path resolution, mount lookup and fd
    indirection on top of the underlying filesystem. *)

type t

val create : clock:Uksim.Clock.t -> t

val mount : t -> at:string -> Fs.t -> (unit, Fs.errno) result
(** Mount points are absolute ("/", "/data"); longest prefix wins at
    resolution. [Eexist] for duplicates. *)

val umount : t -> at:string -> (unit, Fs.errno) result

type fd = int

val open_file : t -> string -> ?create:bool -> unit -> (fd, Fs.errno) result
val read : t -> fd -> len:int -> (bytes, Fs.errno) result
(** From the fd's offset, advancing it. *)

val pread : t -> fd -> off:int -> len:int -> (bytes, Fs.errno) result
val write : t -> fd -> bytes -> (int, Fs.errno) result
val pwrite : t -> fd -> off:int -> bytes -> (int, Fs.errno) result
val lseek : t -> fd -> int -> (int, Fs.errno) result
val close : t -> fd -> (unit, Fs.errno) result
val fsync : t -> fd -> (unit, Fs.errno) result
val stat : t -> string -> (Fs.stat, Fs.errno) result
val mkdir : t -> string -> (unit, Fs.errno) result
val unlink : t -> string -> (unit, Fs.errno) result
val readdir : t -> string -> (string list, Fs.errno) result

val open_fds : t -> int
val dentry_hits : t -> int
val dentry_misses : t -> int
