(** SHFS — the specialized hash filesystem ported from MiniCache
    (paper §6.3, Fig 22).

    A flat, read-mostly object store: file names hash directly into a
    bucket table, so open() is a single hash + probe instead of vfscore's
    fd allocation and per-component path walk — the 5-7x open latency
    reduction of Fig 22. Exposed both as a direct API (the specialized
    fast path) and as an {!Fs.t} (for mounting under vfscore, the
    non-specialized comparison point). *)

type t

val create : clock:Uksim.Clock.t -> ?buckets:int -> unit -> t
(** [buckets] defaults to 1024 (rounded up to a power of two). *)

val add : t -> name:string -> bytes -> unit
(** Insert or replace an object (populating the cache image). *)

type handle

val open_direct : t -> string -> (handle, Fs.errno) result
(** The specialized path: hash, probe, done. [Enoent] on miss. *)

val read_direct : t -> handle -> off:int -> len:int -> (bytes, Fs.errno) result
val size_direct : t -> handle -> int
val close_direct : t -> handle -> unit

val entries : t -> int
val to_fs : t -> Fs.t
(** vfscore-mountable view (read-only: writes return [Enosys]). *)
