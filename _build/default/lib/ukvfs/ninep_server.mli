(** Host-side 9P file server (QEMU's virtio-9p device model): serves the
    {!Ninep} protocol over any {!Fs.t} (typically a {!Ramfs} standing in
    for the host share directory). Host work does not consume guest cycles
    — the transport accounts for guest-visible latency. *)

type t

val create : backing:Fs.t -> t

val handle : t -> bytes -> bytes
(** Process one T-message, return the R-message. Malformed input or
    protocol errors yield [Rerror]. *)

val msize : int
val iounit : int
(** Maximum payload per read/write RPC — larger I/O takes multiple round
    trips (visible in Fig 20's block-size scaling). *)
