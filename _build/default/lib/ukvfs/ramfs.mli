(** In-memory filesystem (Unikraft's default root when no persistent
    storage is configured, §5.2). A real directory tree with growable
    files; operation costs are memory-speed. *)

val create : clock:Uksim.Clock.t -> ?capacity:int -> unit -> Fs.t
(** [capacity] caps total file bytes (default 64 MiB); writes beyond it
    fail with [Enospc]. *)
