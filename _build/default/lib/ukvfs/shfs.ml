type entry = { name : string; content : bytes }

type t = {
  clock : Uksim.Clock.t;
  mutable table : entry list array; (* short chains by construction *)
  mutable count : int;
  open_handles : (int, entry) Hashtbl.t;
  mutable next_handle : int;
}

(* The whole point of SHFS: open is one hash and a short probe. *)
let hash_cost = 28
let probe_cost = 18
let read_base_cost = 30

let charge t c = Uksim.Clock.advance t.clock c

let djb2 s =
  let h = ref 5381 in
  String.iter (fun ch -> h := ((!h lsl 5) + !h + Char.code ch) land max_int) s;
  !h

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ~clock ?(buckets = 1024) () =
  {
    clock;
    table = Array.make (next_pow2 (max 1 buckets)) [];
    count = 0;
    open_handles = Hashtbl.create 32;
    next_handle = 1;
  }

let bucket_of t name = djb2 name land (Array.length t.table - 1)

let add t ~name content =
  let b = bucket_of t name in
  let existed = List.exists (fun e -> String.equal e.name name) t.table.(b) in
  t.table.(b) <-
    { name; content } :: List.filter (fun e -> not (String.equal e.name name)) t.table.(b);
  if not existed then t.count <- t.count + 1

type handle = int

let lookup t name =
  charge t hash_cost;
  let rec probe = function
    | [] -> None
    | e :: rest ->
        charge t probe_cost;
        if String.equal e.name name then Some e else probe rest
  in
  probe t.table.(bucket_of t name)

let open_direct t name =
  match lookup t name with
  | None -> Error Fs.Enoent
  | Some e ->
      let h = t.next_handle in
      t.next_handle <- h + 1;
      Hashtbl.replace t.open_handles h e;
      Ok h

let read_direct t h ~off ~len =
  charge t read_base_cost;
  match Hashtbl.find_opt t.open_handles h with
  | None -> Error Fs.Ebadf
  | Some e ->
      if off < 0 || len < 0 then Error Fs.Einval
      else begin
        let size = Bytes.length e.content in
        let n = max 0 (min len (size - off)) in
        charge t (Uksim.Cost.memcpy n);
        Ok (Bytes.sub e.content off n)
      end

let size_direct t h =
  match Hashtbl.find_opt t.open_handles h with
  | None -> 0
  | Some e -> Bytes.length e.content

let close_direct t h = Hashtbl.remove t.open_handles h
let entries t = t.count

let to_fs t =
  let base = Fs.not_supported "shfs" in
  {
    base with
    Fs.open_file =
      (fun path ~create ->
        if create then Error Fs.Enosys
        else
          let name = match Fs.split_path path with [ n ] -> n | _ -> path in
          open_direct t name);
    read = (fun h ~off ~len -> read_direct t h ~off ~len);
    close = (fun h -> close_direct t h);
    stat =
      (fun path ->
        let name = match Fs.split_path path with [ n ] -> n | _ -> path in
        match lookup t name with
        | Some e -> Ok { Fs.size = Bytes.length e.content; ftype = Fs.Regular }
        | None -> Error Fs.Enoent);
    readdir =
      (fun _ ->
        Ok
          (Array.to_list t.table
          |> List.concat_map (List.map (fun e -> e.name))
          |> List.sort compare));
    fsync = (fun _ -> Ok ());
  }
