module Transport = struct
  type t = {
    clock : Uksim.Clock.t;
    server : Ninep_server.t;
    mutable count : int;
    mutable next_tag : int;
  }

  (* Guest-visible RPC cost composition for virtio-9p on KVM: virtqueue
     descriptor setup + kick (VM exit), QEMU 9p server dispatch, response
     copy + completion interrupt. ~8.5 us base per round trip. *)
  let rpc_base = 2 * Uksim.Cost.vm_exit
  let host_dispatch_ns = 6200.0
  let per_byte = 0.06 (* cycles/byte beyond the plain memcpy: virtio chain walk *)

  let boot_attach_cost_kvm_ns = 3.0e5
  let boot_attach_cost_xen_ns = 2.7e6

  let virtio_9p ~clock ~server = { clock; server; count = 0; next_tag = 1 }

  let rpc t (tagged : Ninep.tagged) =
    t.count <- t.count + 1;
    let req = Ninep.encode tagged in
    Uksim.Clock.advance t.clock rpc_base;
    Uksim.Clock.advance_ns t.clock host_dispatch_ns;
    Uksim.Clock.advance t.clock (Uksim.Cost.memcpy (Bytes.length req));
    let resp = Ninep_server.handle t.server req in
    Uksim.Clock.advance t.clock (Uksim.Cost.memcpy (Bytes.length resp));
    Uksim.Clock.advance t.clock
      (int_of_float (float_of_int (Bytes.length req + Bytes.length resp) *. per_byte));
    Uksim.Clock.advance t.clock Uksim.Cost.interrupt_delivery;
    match Ninep.decode resp with
    | Ok { body; _ } -> Ok body
    | Error e -> Error e

  let rpcs_sent t = t.count
end

type state = {
  tr : Transport.t;
  mutable next_fid : int;
  handles : (int, int) Hashtbl.t; (* our handle -> open fid *)
  mutable next_handle : int;
}

let fresh_fid t =
  let f = t.next_fid in
  t.next_fid <- f + 1;
  f

let rpc t body =
  let tag = t.tr.Transport.next_tag in
  t.tr.Transport.next_tag <- (tag + 1) land 0xffff;
  Transport.rpc t.tr { tag; body }

let to_errno = function
  | "ENOENT" -> Fs.Enoent
  | "EEXIST" -> Fs.Eexist
  | "ENOTDIR" -> Fs.Enotdir
  | "EISDIR" -> Fs.Eisdir
  | "EBADF" -> Fs.Ebadf
  | "ENOSPC" -> Fs.Enospc
  | "EINVAL" -> Fs.Einval
  | "ENOSYS" -> Fs.Enosys
  | _ -> Fs.Eio

(* Walk the root fid to [path], yielding a fresh fid. *)
let walk_to t path =
  let fid = fresh_fid t in
  match rpc t (Ninep.Twalk { fid = 0; newfid = fid; wnames = Fs.split_path path }) with
  | Ok (Ninep.Rwalk _) -> Ok fid
  | Ok (Ninep.Rerror e) -> Error (to_errno e)
  | Ok _ -> Error Fs.Eio
  | Error _ -> Error Fs.Eio

let clunk t fid = ignore (rpc t (Ninep.Tclunk fid))

let create ~transport =
  let t = { tr = transport; next_fid = 1; handles = Hashtbl.create 16; next_handle = 1 } in
  match Transport.rpc transport { tag = 0; body = Ninep.Tversion { msize = 65536; version = "9P2000" } } with
  | Ok (Ninep.Rversion _) -> (
      match
        Transport.rpc transport
          { tag = 0; body = Ninep.Tattach { fid = 0; uname = "root"; aname = "/" } }
      with
      | Ok (Ninep.Rattach _) ->
          let open_file path ~create:do_create =
            let result =
              match walk_to t path with
              | Ok fid -> (
                  match rpc t (Ninep.Topen { fid; mode = 2 }) with
                  | Ok (Ninep.Ropen _) -> Ok fid
                  | Ok (Ninep.Rerror e) ->
                      clunk t fid;
                      Error (to_errno e)
                  | Ok _ | Error _ ->
                      clunk t fid;
                      Error Fs.Eio)
              | Error Fs.Enoent when do_create -> (
                  (* Walk to the parent, create the leaf there. *)
                  let parts = Fs.split_path path in
                  match List.rev parts with
                  | [] -> Error Fs.Einval
                  | name :: rev_parent -> (
                      let parent = "/" ^ String.concat "/" (List.rev rev_parent) in
                      match walk_to t parent with
                      | Error e -> Error e
                      | Ok fid -> (
                          match rpc t (Ninep.Tcreate { fid; name; perm = 0o644; mode = 2 }) with
                          | Ok (Ninep.Rcreate _) -> Ok fid
                          | Ok (Ninep.Rerror e) ->
                              clunk t fid;
                              Error (to_errno e)
                          | Ok _ | Error _ ->
                              clunk t fid;
                              Error Fs.Eio)))
              | Error e -> Error e
            in
            match result with
            | Ok fid ->
                let h = t.next_handle in
                t.next_handle <- h + 1;
                Hashtbl.replace t.handles h fid;
                Ok h
            | Error e -> Error e
          in
          let with_fid h f =
            match Hashtbl.find_opt t.handles h with
            | None -> Error Fs.Ebadf
            | Some fid -> f fid
          in
          (* Chunked read: one RPC per iounit. *)
          let read h ~off ~len =
            with_fid h (fun fid ->
                let out = Buffer.create (min len 65536) in
                let rec go off remaining =
                  if remaining <= 0 then Ok (Buffer.to_bytes out)
                  else begin
                    let count = min remaining Ninep_server.iounit in
                    match rpc t (Ninep.Tread { fid; offset = off; count }) with
                    | Ok (Ninep.Rread data) ->
                        Buffer.add_bytes out data;
                        if Bytes.length data < count then Ok (Buffer.to_bytes out)
                        else go (off + Bytes.length data) (remaining - Bytes.length data)
                    | Ok (Ninep.Rerror e) -> Error (to_errno e)
                    | Ok _ | Error _ -> Error Fs.Eio
                  end
                in
                go off len)
          in
          let write h ~off data =
            with_fid h (fun fid ->
                let total = Bytes.length data in
                let rec go off written =
                  if written >= total then Ok total
                  else begin
                    let n = min (total - written) Ninep_server.iounit in
                    let chunk = Bytes.sub data written n in
                    match rpc t (Ninep.Twrite { fid; offset = off; data = chunk }) with
                    | Ok (Ninep.Rwrite m) ->
                        if m = 0 then Error Fs.Enospc else go (off + m) (written + m)
                    | Ok (Ninep.Rerror e) -> Error (to_errno e)
                    | Ok _ | Error _ -> Error Fs.Eio
                  end
                in
                go off 0)
          in
          let close h =
            match Hashtbl.find_opt t.handles h with
            | Some fid ->
                Hashtbl.remove t.handles h;
                clunk t fid
            | None -> ()
          in
          let stat path =
            match walk_to t path with
            | Error e -> Error e
            | Ok fid -> (
                let r = rpc t (Ninep.Tstat fid) in
                clunk t fid;
                match r with
                | Ok (Ninep.Rstat { length; is_dir; _ }) ->
                    Ok { Fs.size = length; ftype = (if is_dir then Fs.Directory else Fs.Regular) }
                | Ok (Ninep.Rerror e) -> Error (to_errno e)
                | Ok _ | Error _ -> Error Fs.Eio)
          in
          let unlink path =
            match walk_to t path with
            | Error e -> Error e
            | Ok fid -> (
                match rpc t (Ninep.Tremove fid) with
                | Ok Ninep.Rremove -> Ok ()
                | Ok (Ninep.Rerror e) -> Error (to_errno e)
                | Ok _ | Error _ -> Error Fs.Eio)
          in
          let readdir path =
            match walk_to t path with
            | Error e -> Error e
            | Ok fid -> (
                let r = rpc t (Ninep.Tread { fid; offset = 0; count = Ninep_server.iounit }) in
                clunk t fid;
                match r with
                | Ok (Ninep.Rread data) ->
                    if Bytes.length data = 0 then Ok []
                    else Ok (String.split_on_char '\n' (Bytes.to_string data))
                | Ok (Ninep.Rerror e) -> Error (to_errno e)
                | Ok _ | Error _ -> Error Fs.Eio)
          in
          Ok
            {
              Fs.fsname = "9pfs";
              open_file;
              read;
              write;
              close;
              stat;
              mkdir = (fun _ -> Error Fs.Enosys);
              unlink;
              readdir;
              fsync = (fun _ -> Ok ());
            }
      | Ok _ -> Error "9p attach failed"
      | Error e -> Error e)
  | Ok _ -> Error "9p version negotiation failed"
  | Error e -> Error e
