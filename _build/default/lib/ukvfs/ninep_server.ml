let msize = 65536
let iounit = 8192

type fid_state = { path : string; mutable handle : Fs.handle option }

type t = {
  backing : Fs.t;
  fids : (int, fid_state) Hashtbl.t;
  mutable next_qid : int;
}

let create ~backing = { backing; fids = Hashtbl.create 32; next_qid = 1 }

let fresh_qid t is_dir =
  let q = t.next_qid in
  t.next_qid <- q + 1;
  if is_dir then Ninep.qid_dir q else Ninep.qid_file q

let errno_msg e = Ninep.Rerror (Fs.errno_to_string e)

let join_path base name = if base = "/" then "/" ^ name else base ^ "/" ^ name

let dir_listing t path =
  match t.backing.Fs.readdir path with
  | Ok names -> Ok (Bytes.of_string (String.concat "\n" names))
  | Error e -> Error e

let process t (m : Ninep.msg) : Ninep.msg =
  match m with
  | Ninep.Tversion { msize = client_msize; version } ->
      if version <> "9P2000" then Ninep.Rerror "unsupported version"
      else Ninep.Rversion { msize = min msize client_msize; version = "9P2000" }
  | Tattach { fid; _ } ->
      Hashtbl.replace t.fids fid { path = "/"; handle = None };
      Rattach (fresh_qid t true)
  | Twalk { fid; newfid; wnames } -> (
      match Hashtbl.find_opt t.fids fid with
      | None -> Rerror "unknown fid"
      | Some st ->
          let rec walk path acc = function
            | [] -> Ok (path, List.rev acc)
            | name :: rest -> (
                let next = join_path path name in
                match t.backing.Fs.stat next with
                | Ok { Fs.ftype = Fs.Directory; _ } -> walk next (fresh_qid t true :: acc) rest
                | Ok { Fs.ftype = Fs.Regular; _ } when rest = [] ->
                    Ok (next, List.rev (fresh_qid t false :: acc))
                | Ok _ -> Error Fs.Enotdir
                | Error e -> Error e)
          in
          (match walk st.path [] wnames with
          | Ok (path, qids) ->
              Hashtbl.replace t.fids newfid { path; handle = None };
              Rwalk qids
          | Error e -> errno_msg e))
  | Topen { fid; mode = _ } -> (
      match Hashtbl.find_opt t.fids fid with
      | None -> Rerror "unknown fid"
      | Some st -> (
          match t.backing.Fs.stat st.path with
          | Ok { Fs.ftype = Fs.Directory; _ } -> Ropen { q = fresh_qid t true; iounit }
          | Ok { Fs.ftype = Fs.Regular; _ } -> (
              match t.backing.Fs.open_file st.path ~create:false with
              | Ok h ->
                  st.handle <- Some h;
                  Ropen { q = fresh_qid t false; iounit }
              | Error e -> errno_msg e)
          | Error e -> errno_msg e))
  | Tcreate { fid; name; perm = _; mode = _ } -> (
      match Hashtbl.find_opt t.fids fid with
      | None -> Rerror "unknown fid"
      | Some st -> (
          let path = join_path st.path name in
          match t.backing.Fs.open_file path ~create:true with
          | Ok h ->
              Hashtbl.replace t.fids fid { path; handle = Some h };
              Rcreate { q = fresh_qid t false; iounit }
          | Error e -> errno_msg e))
  | Tread { fid; offset; count } -> (
      match Hashtbl.find_opt t.fids fid with
      | None -> Rerror "unknown fid"
      | Some st -> (
          let count = min count iounit in
          match st.handle with
          | Some h -> (
              match t.backing.Fs.read h ~off:offset ~len:count with
              | Ok data -> Rread data
              | Error e -> errno_msg e)
          | None -> (
              (* Directory read: our simplified listing format. *)
              match dir_listing t st.path with
              | Ok all ->
                  let len = Bytes.length all in
                  if offset >= len then Rread Bytes.empty
                  else Rread (Bytes.sub all offset (min count (len - offset)))
              | Error e -> errno_msg e)))
  | Twrite { fid; offset; data } -> (
      match Hashtbl.find_opt t.fids fid with
      | None -> Rerror "unknown fid"
      | Some { handle = Some h; _ } -> (
          let data =
            if Bytes.length data > iounit then Bytes.sub data 0 iounit else data
          in
          match t.backing.Fs.write h ~off:offset data with
          | Ok n -> Rwrite n
          | Error e -> errno_msg e)
      | Some { handle = None; _ } -> Rerror "not open for writing")
  | Tclunk fid ->
      (match Hashtbl.find_opt t.fids fid with
      | Some { handle = Some h; _ } -> t.backing.Fs.close h
      | Some { handle = None; _ } | None -> ());
      Hashtbl.remove t.fids fid;
      Rclunk
  | Tremove fid -> (
      match Hashtbl.find_opt t.fids fid with
      | None -> Rerror "unknown fid"
      | Some st ->
          Hashtbl.remove t.fids fid;
          (match t.backing.Fs.unlink st.path with Ok () -> Rremove | Error e -> errno_msg e))
  | Tstat fid -> (
      match Hashtbl.find_opt t.fids fid with
      | None -> Rerror "unknown fid"
      | Some st -> (
          match t.backing.Fs.stat st.path with
          | Ok { Fs.size; ftype } ->
              Rstat
                {
                  name = (match List.rev (Fs.split_path st.path) with n :: _ -> n | [] -> "/");
                  length = size;
                  is_dir = ftype = Fs.Directory;
                }
          | Error e -> errno_msg e))
  | Rversion _ | Rattach _ | Rwalk _ | Ropen _ | Rcreate _ | Rread _ | Rwrite _ | Rclunk
  | Rremove | Rstat _ | Rerror _ ->
      Rerror "unexpected R-message"

let handle t raw =
  match Ninep.decode raw with
  | Error e -> Ninep.encode { tag = 0xffff; body = Ninep.Rerror e }
  | Ok { tag; body } -> Ninep.encode { tag; body = process t body }
