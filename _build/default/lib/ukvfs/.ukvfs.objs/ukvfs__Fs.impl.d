lib/ukvfs/fs.ml: List String
