lib/ukvfs/ninep_client.mli: Fs Ninep Ninep_server Uksim
