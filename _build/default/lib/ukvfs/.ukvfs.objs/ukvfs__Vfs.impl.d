lib/ukvfs/vfs.ml: Bytes Fs Hashtbl List String Uksim
