lib/ukvfs/ramfs.ml: Buffer Bytes Fs Hashtbl List Uksim
