lib/ukvfs/ramfs.mli: Fs Uksim
