lib/ukvfs/ninep.ml: Buffer Bytes Char List Printf String
