lib/ukvfs/ninep_client.ml: Buffer Bytes Fs Hashtbl List Ninep Ninep_server String Uksim
