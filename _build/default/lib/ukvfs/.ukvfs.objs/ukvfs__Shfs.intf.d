lib/ukvfs/shfs.mli: Fs Uksim
