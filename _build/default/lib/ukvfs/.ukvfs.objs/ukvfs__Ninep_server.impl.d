lib/ukvfs/ninep_server.ml: Bytes Fs Hashtbl List Ninep String
