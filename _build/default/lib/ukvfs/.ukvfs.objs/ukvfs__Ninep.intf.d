lib/ukvfs/ninep.mli:
