lib/ukvfs/fs.mli:
