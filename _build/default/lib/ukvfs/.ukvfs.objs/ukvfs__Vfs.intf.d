lib/ukvfs/vfs.mli: Fs Uksim
