lib/ukvfs/shfs.ml: Array Bytes Char Fs Hashtbl List String Uksim
