lib/ukvfs/ninep_server.mli: Fs
