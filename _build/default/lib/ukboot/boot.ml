module Level = struct
  let early = 1
  let paging = 2
  let alloc = 3
  let sched = 4
  let bus = 5
  let fs = 6
  let late = 7
end

module Inittab = struct
  type entry = { level : int; name : string; ctor : unit -> unit }
  type t = { mutable entries : entry list (* reversed registration order *) }

  let create () = { entries = [] }

  let register t ~level ~name ctor =
    if level < 1 || level > 7 then invalid_arg "Inittab.register: level must be in 1..7";
    t.entries <- { level; name; ctor } :: t.entries

  let ordered t =
    (* Stable by level, registration order within a level. *)
    List.stable_sort
      (fun a b -> compare a.level b.level)
      (List.rev t.entries)

  let entries t = List.map (fun e -> (e.level, e.name)) (ordered t)
end

type phase_report = {
  phase : string;
  level : int;
  start_ns : float;
  duration_ns : float;
}

type report = { guest_boot_ns : float; phases : phase_report list }

let run ~clock ?main tab =
  let t0 = Uksim.Clock.ns clock in
  let phases =
    List.map
      (fun (e : Inittab.entry) ->
        let start = Uksim.Clock.ns clock in
        e.ctor ();
        {
          phase = e.name;
          level = e.level;
          start_ns = start -. t0;
          duration_ns = Uksim.Clock.ns clock -. start;
        })
      (Inittab.ordered tab)
  in
  let guest_boot_ns = Uksim.Clock.ns clock -. t0 in
  (match main with Some f -> f () | None -> ());
  { guest_boot_ns; phases }

let pp_report ppf r =
  Fmt.pf ppf "guest boot: %a@," Uksim.Units.pp_ns r.guest_boot_ns;
  List.iter
    (fun p ->
      Fmt.pf ppf "  [%d] %-24s %a@," p.level p.phase Uksim.Units.pp_ns p.duration_ns)
    r.phases
