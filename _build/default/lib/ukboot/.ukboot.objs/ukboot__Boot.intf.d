lib/ukboot/boot.mli: Format Uksim
