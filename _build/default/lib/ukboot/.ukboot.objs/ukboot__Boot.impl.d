lib/ukboot/boot.ml: Fmt List Uksim
