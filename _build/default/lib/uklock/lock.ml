type mode = Compiled_out | Threaded of Uksched.Sched.t

module Mutex = struct
  type inner = {
    sched : Uksched.Sched.t;
    mutable holder : Uksched.Sched.tid option;
    waiters : Uksched.Sched.tid Queue.t;
  }

  type t = Nop | Real of inner

  let create = function
    | Compiled_out -> Nop
    | Threaded sched -> Real { sched; holder = None; waiters = Queue.create () }

  let rec lock = function
    | Nop -> ()
    | Real m as t -> (
        match m.holder with
        | None -> m.holder <- Some (Uksched.Sched.self ())
        | Some _ ->
            Queue.push (Uksched.Sched.self ()) m.waiters;
            Uksched.Sched.block ();
            (* Woken by unlock, which already transferred ownership to us;
               re-check defensively in case of spurious wakeups. *)
            if m.holder <> Some (Uksched.Sched.self ()) then lock t)

  let try_lock = function
    | Nop -> true
    | Real m -> (
        match m.holder with
        | None ->
            m.holder <- Some (Uksched.Sched.self ());
            true
        | Some _ -> false)

  let unlock = function
    | Nop -> ()
    | Real m -> (
        match m.holder with
        | None -> invalid_arg "Lock.Mutex.unlock: not locked"
        | Some _ -> (
            match Queue.take_opt m.waiters with
            | Some next ->
                m.holder <- Some next;
                Uksched.Sched.wake m.sched next
            | None -> m.holder <- None))

  let locked = function Nop -> false | Real m -> m.holder <> None

  let with_lock t f =
    lock t;
    match f () with
    | v ->
        unlock t;
        v
    | exception e ->
        unlock t;
        raise e
end

module Semaphore = struct
  type inner = {
    sched : Uksched.Sched.t;
    mutable n : int;
    waiters : Uksched.Sched.tid Queue.t;
  }

  type t = Nop of int ref | Real of inner

  let create mode n =
    if n < 0 then invalid_arg "Lock.Semaphore.create: negative count";
    match mode with
    | Compiled_out -> Nop (ref n)
    | Threaded sched -> Real { sched; n; waiters = Queue.create () }

  let wait = function
    | Nop r -> r := max 0 (!r - 1)
    | Real s ->
        if s.n > 0 then s.n <- s.n - 1
        else begin
          Queue.push (Uksched.Sched.self ()) s.waiters;
          Uksched.Sched.block ()
          (* the signaller consumed the count on our behalf *)
        end

  let try_wait = function
    | Nop r ->
        if !r > 0 then begin
          decr r;
          true
        end
        else false
    | Real s ->
        if s.n > 0 then begin
          s.n <- s.n - 1;
          true
        end
        else false

  let signal = function
    | Nop r -> incr r
    | Real s -> (
        match Queue.take_opt s.waiters with
        | Some tid -> Uksched.Sched.wake s.sched tid
        | None -> s.n <- s.n + 1)

  let count = function Nop r -> !r | Real s -> s.n
end

module Condvar = struct
  type inner = { sched : Uksched.Sched.t; waiters : Uksched.Sched.tid Queue.t }
  type t = Nop | Real of inner

  let create = function
    | Compiled_out -> Nop
    | Threaded sched -> Real { sched; waiters = Queue.create () }

  let wait t mutex =
    match t with
    | Nop -> ()
    | Real c ->
        Queue.push (Uksched.Sched.self ()) c.waiters;
        Mutex.unlock mutex;
        Uksched.Sched.block ();
        Mutex.lock mutex

  let signal = function
    | Nop -> ()
    | Real c -> (
        match Queue.take_opt c.waiters with
        | Some tid -> Uksched.Sched.wake c.sched tid
        | None -> ())

  let broadcast = function
    | Nop -> ()
    | Real c ->
        Queue.iter (fun tid -> Uksched.Sched.wake c.sched tid) c.waiters;
        Queue.clear c.waiters
end
