(** The uklock API (paper §3.3): synchronization primitives whose
    implementation is chosen by configuration.

    Two dimensions select the implementation, as in the paper: threading
    on/off (multi-core is future work there and here). With threading off
    the primitives compile out — operations are free and never block, which
    is sound for a single-threaded run-to-completion unikernel. With
    threading on they block on a {!Uksched.Sched.t}. *)

type mode = Compiled_out | Threaded of Uksched.Sched.t

module Mutex : sig
  type t

  val create : mode -> t
  val lock : t -> unit
  (** Blocks (via the scheduler) while held by another thread. *)

  val try_lock : t -> bool
  val unlock : t -> unit
  (** Ownership is handed to the longest-waiting thread, if any. Unlocking a
      free compiled-in mutex raises [Invalid_argument]. *)

  val locked : t -> bool
  val with_lock : t -> (unit -> 'a) -> 'a
end

module Semaphore : sig
  type t

  val create : mode -> int -> t
  (** Initial count must be >= 0. *)

  val wait : t -> unit
  (** Decrement; blocks at zero (compiled-out mode never blocks). *)

  val try_wait : t -> bool
  val signal : t -> unit
  val count : t -> int
end

module Condvar : sig
  type t

  val create : mode -> t
  val wait : t -> Mutex.t -> unit
  (** Atomically release the mutex and block; re-acquires before
      returning. *)

  val signal : t -> unit
  val broadcast : t -> unit
end
