lib/uklock/lock.mli: Uksched
