lib/uklock/lock.ml: Queue Uksched
