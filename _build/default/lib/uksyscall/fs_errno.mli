(** Errno values crossing the syscall boundary. *)

type t =
  | Enosys
  | Enoent
  | Ebadf
  | Einval
  | Enomem
  | Eagain
  | Enotsup

val to_code : t -> int
(** Negative return-value encoding (e.g. ENOSYS = -38). *)

val to_string : t -> string
