type dispatch = Native_link | Binary_compat | Linux_vm | Linux_vm_nomitig

let dispatch_cost = function
  | Native_link -> Uksim.Cost.function_call
  | Binary_compat -> Uksim.Cost.syscall_unikraft
  | Linux_vm -> Uksim.Cost.syscall_linux
  | Linux_vm_nomitig -> Uksim.Cost.syscall_linux_nomitig

type handler = int array -> (int, Fs_errno.t) result

and t = {
  clock : Uksim.Clock.t;
  dmode : dispatch;
  table : handler option array;
  enosys : (int, int) Hashtbl.t;
  histogram : int array;
  mutable tracer : (int -> unit) option;
  mutable count : int;
}

let create ~clock ~mode =
  { clock; dmode = mode; table = Array.make (Sysno.max_sysno + 1) None;
    enosys = Hashtbl.create 16; histogram = Array.make (Sysno.max_sysno + 1) 0;
    tracer = None; count = 0 }

let mode t = t.dmode

let register t ~sysno h =
  if sysno < 0 || sysno > Sysno.max_sysno then invalid_arg "Shim.register: sysno out of range";
  (match t.table.(sysno) with
  | Some _ -> invalid_arg (Printf.sprintf "Shim.register: duplicate handler for %s" (Sysno.name sysno))
  | None -> ());
  t.table.(sysno) <- Some h

let register_stub t ~sysno ~ret = register t ~sysno (fun _ -> Ok ret)

let supports t n = n >= 0 && n <= Sysno.max_sysno && Option.is_some t.table.(n)
let supported_count t =
  Array.fold_left (fun acc h -> if Option.is_some h then acc + 1 else acc) 0 t.table

let supported_set t =
  let acc = ref [] in
  Array.iteri (fun i h -> if Option.is_some h then acc := i :: !acc) t.table;
  List.rev !acc

let call t ~sysno args =
  Uksim.Clock.advance t.clock (dispatch_cost t.dmode);
  t.count <- t.count + 1;
  (match t.tracer with Some f -> f sysno | None -> ());
  if sysno >= 0 && sysno <= Sysno.max_sysno then
    t.histogram.(sysno) <- t.histogram.(sysno) + 1;
  if sysno < 0 || sysno > Sysno.max_sysno then Error Fs_errno.Enosys
  else
    match t.table.(sysno) with
    | Some h -> h args
    | None ->
        (* The shim auto-stubs missing syscalls with ENOSYS (paper §4.1). *)
        Hashtbl.replace t.enosys sysno
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.enosys sysno));
        Error Fs_errno.Enosys

let enosys_hits t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.enosys [] |> List.sort compare
let calls_made t = t.count
let set_tracer t f = t.tracer <- f

let call_counts t =
  let acc = ref [] in
  Array.iteri (fun i n -> if n > 0 then acc := (i, n) :: !acc) t.histogram;
  List.rev !acc
