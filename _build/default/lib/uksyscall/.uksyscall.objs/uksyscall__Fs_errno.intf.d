lib/uksyscall/fs_errno.mli:
