lib/uksyscall/sysno.ml: Array Hashtbl Lazy List Printf Seq
