lib/uksyscall/binary.mli: Shim Ukdebug Uksim
