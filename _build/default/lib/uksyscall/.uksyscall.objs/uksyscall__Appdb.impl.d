lib/uksyscall/appdb.ml: Array Int List Printf Set Shim Sysno
