lib/uksyscall/shim.mli: Fs_errno Uksim
