lib/uksyscall/binary.ml: Array Fs_errno List Printf Shim Ukdebug Uksim
