lib/uksyscall/fs_errno.ml:
