lib/uksyscall/sysno.mli:
