lib/uksyscall/appdb.mli: Shim
