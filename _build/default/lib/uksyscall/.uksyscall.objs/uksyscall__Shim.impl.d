lib/uksyscall/shim.ml: Array Fs_errno Hashtbl List Option Printf Sysno Uksim
