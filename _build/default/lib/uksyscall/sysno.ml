(* The canonical x86-64 syscall table, 0..313 (Linux 4.x era, matching the
   paper's heatmap range). *)
let names =
  [|
    "read"; "write"; "open"; "close"; "stat"; "fstat"; "lstat"; "poll"; "lseek"; "mmap";
    "mprotect"; "munmap"; "brk"; "rt_sigaction"; "rt_sigprocmask"; "rt_sigreturn"; "ioctl";
    "pread64"; "pwrite64"; "readv"; "writev"; "access"; "pipe"; "select"; "sched_yield";
    "mremap"; "msync"; "mincore"; "madvise"; "shmget"; "shmat"; "shmctl"; "dup"; "dup2";
    "pause"; "nanosleep"; "getitimer"; "alarm"; "setitimer"; "getpid"; "sendfile"; "socket";
    "connect"; "accept"; "sendto"; "recvfrom"; "sendmsg"; "recvmsg"; "shutdown"; "bind";
    "listen"; "getsockname"; "getpeername"; "socketpair"; "setsockopt"; "getsockopt"; "clone";
    "fork"; "vfork"; "execve"; "exit"; "wait4"; "kill"; "uname"; "semget"; "semop"; "semctl";
    "shmdt"; "msgget"; "msgsnd"; "msgrcv"; "msgctl"; "fcntl"; "flock"; "fsync"; "fdatasync";
    "truncate"; "ftruncate"; "getdents"; "getcwd"; "chdir"; "fchdir"; "rename"; "mkdir";
    "rmdir"; "creat"; "link"; "unlink"; "symlink"; "readlink"; "chmod"; "fchmod"; "chown";
    "fchown"; "lchown"; "umask"; "gettimeofday"; "getrlimit"; "getrusage"; "sysinfo"; "times";
    "ptrace"; "getuid"; "syslog"; "getgid"; "setuid"; "setgid"; "geteuid"; "getegid";
    "setpgid"; "getppid"; "getpgrp"; "setsid"; "setreuid"; "setregid"; "getgroups";
    "setgroups"; "setresuid"; "getresuid"; "setresgid"; "getresgid"; "getpgid"; "setfsuid";
    "setfsgid"; "getsid"; "capget"; "capset"; "rt_sigpending"; "rt_sigtimedwait";
    "rt_sigqueueinfo"; "rt_sigsuspend"; "sigaltstack"; "utime"; "mknod"; "uselib";
    "personality"; "ustat"; "statfs"; "fstatfs"; "sysfs"; "getpriority"; "setpriority";
    "sched_setparam"; "sched_getparam"; "sched_setscheduler"; "sched_getscheduler";
    "sched_get_priority_max"; "sched_get_priority_min"; "sched_rr_get_interval"; "mlock";
    "munlock"; "mlockall"; "munlockall"; "vhangup"; "modify_ldt"; "pivot_root"; "_sysctl";
    "prctl"; "arch_prctl"; "adjtimex"; "setrlimit"; "chroot"; "sync"; "acct"; "settimeofday";
    "mount"; "umount2"; "swapon"; "swapoff"; "reboot"; "sethostname"; "setdomainname"; "iopl";
    "ioperm"; "create_module"; "init_module"; "delete_module"; "get_kernel_syms";
    "query_module"; "quotactl"; "nfsservctl"; "getpmsg"; "putpmsg"; "afs_syscall"; "tuxcall";
    "security"; "gettid"; "readahead"; "setxattr"; "lsetxattr"; "fsetxattr"; "getxattr";
    "lgetxattr"; "fgetxattr"; "listxattr"; "llistxattr"; "flistxattr"; "removexattr";
    "lremovexattr"; "fremovexattr"; "tkill"; "time"; "futex"; "sched_setaffinity";
    "sched_getaffinity"; "set_thread_area"; "io_setup"; "io_destroy"; "io_getevents";
    "io_submit"; "io_cancel"; "get_thread_area"; "lookup_dcookie"; "epoll_create";
    "epoll_ctl_old"; "epoll_wait_old"; "remap_file_pages"; "getdents64"; "set_tid_address";
    "restart_syscall"; "semtimedop"; "fadvise64"; "timer_create"; "timer_settime";
    "timer_gettime"; "timer_getoverrun"; "timer_delete"; "clock_settime"; "clock_gettime";
    "clock_getres"; "clock_nanosleep"; "exit_group"; "epoll_wait"; "epoll_ctl"; "tgkill";
    "utimes"; "vserver"; "mbind"; "set_mempolicy"; "get_mempolicy"; "mq_open"; "mq_unlink";
    "mq_timedsend"; "mq_timedreceive"; "mq_notify"; "mq_getsetattr"; "kexec_load"; "waitid";
    "add_key"; "request_key"; "keyctl"; "ioprio_set"; "ioprio_get"; "inotify_init";
    "inotify_add_watch"; "inotify_rm_watch"; "migrate_pages"; "openat"; "mkdirat"; "mknodat";
    "fchownat"; "futimesat"; "newfstatat"; "unlinkat"; "renameat"; "linkat"; "symlinkat";
    "readlinkat"; "fchmodat"; "faccessat"; "pselect6"; "ppoll"; "unshare"; "set_robust_list";
    "get_robust_list"; "splice"; "tee"; "sync_file_range"; "vmsplice"; "move_pages";
    "utimensat"; "epoll_pwait"; "signalfd"; "timerfd_create"; "eventfd"; "fallocate";
    "timerfd_settime"; "timerfd_gettime"; "accept4"; "signalfd4"; "eventfd2"; "epoll_create1";
    "dup3"; "pipe2"; "inotify_init1"; "preadv"; "pwritev"; "rt_tgsigqueueinfo";
    "perf_event_open"; "recvmmsg"; "fanotify_init"; "fanotify_mark"; "prlimit64";
    "name_to_handle_at"; "open_by_handle_at"; "clock_adjtime"; "syncfs"; "sendmmsg"; "setns";
    "getcpu"; "process_vm_readv"; "process_vm_writev"; "kcmp"; "finit_module";
  |]

let max_sysno = Array.length names - 1

let name n =
  if n < 0 || n > max_sysno then invalid_arg (Printf.sprintf "Sysno.name: %d out of range" n);
  names.(n)

let by_name = lazy (Array.to_seqi names |> Seq.map (fun (i, n) -> (n, i)) |> Hashtbl.of_seq)
let number n = Hashtbl.find_opt (Lazy.force by_name) n
let all = List.init (Array.length names) (fun i -> (i, names.(i)))
