type t =
  | Enosys
  | Enoent
  | Ebadf
  | Einval
  | Enomem
  | Eagain
  | Enotsup

let to_code = function
  | Enosys -> -38
  | Enoent -> -2
  | Ebadf -> -9
  | Einval -> -22
  | Enomem -> -12
  | Eagain -> -11
  | Enotsup -> -95

let to_string = function
  | Enosys -> "ENOSYS"
  | Enoent -> "ENOENT"
  | Ebadf -> "EBADF"
  | Einval -> "EINVAL"
  | Enomem -> "ENOMEM"
  | Eagain -> "EAGAIN"
  | Enotsup -> "ENOTSUP"
