(** The x86-64 Linux syscall numbering, 0 (read) .. 313 (finit_module) —
    the range the paper's Fig 5 heatmap covers. *)

val max_sysno : int
val name : int -> string
(** Raises [Invalid_argument] outside [0..max_sysno]. *)

val number : string -> int option
val all : (int * string) list
