(** uk_netbuf (paper §3.1): packet buffer wrapper owned by the application.

    The driver never allocates — the application chooses where buffers come
    from: a pre-allocated {!Pool} (performance-critical workloads) or the
    heap via ukalloc (memory-efficient ones). A netbuf keeps headroom so
    protocol layers can prepend headers without copying. *)

type t

val alloc : ?headroom:int -> size:int -> unit -> t
(** Fresh buffer with [size] bytes of payload capacity after [headroom]
    (default 64, enough for ethernet+IP+UDP/TCP). *)

val of_bytes : ?headroom:int -> bytes -> t
(** Buffer holding a copy of the given payload. *)

val data : t -> bytes
(** The underlying storage; the payload occupies [offset t .. offset t +
    len t - 1]. *)

val offset : t -> int
val len : t -> int
val headroom : t -> int
val capacity : t -> int

val set_len : t -> int -> unit
(** Shrink/grow payload length within capacity. *)

val push : t -> int -> unit
(** [push b n] extends the payload [n] bytes into the headroom (prepending
    a header); raises [Invalid_argument] without room. *)

val pull : t -> int -> unit
(** [pull b n] strips [n] leading payload bytes (consuming a header). *)

val to_payload : t -> bytes
(** Copy of the current payload. *)

val blit_payload : t -> bytes -> unit
(** Replace payload with the given bytes (sets length). *)

module Pool : sig
  type netbuf := t
  type t

  val create :
    clock:Uksim.Clock.t -> ?alloc:Ukalloc.Alloc.t -> count:int -> size:int -> unit -> t
  (** Pre-allocate [count] buffers of [size] payload bytes. When [alloc] is
      given, backing-store addresses are taken from (and returned to) that
      ukalloc backend, tying pool pressure to the chosen allocator. *)

  val take : t -> netbuf option
  (** O(1); [None] when exhausted. *)

  val give : t -> netbuf -> unit
  (** Return a buffer (resets headroom/len). Raises [Invalid_argument] for
      foreign buffers. *)

  val available : t -> int
  val capacity_of : t -> int
end
