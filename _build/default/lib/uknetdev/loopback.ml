type side = {
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  latency : int;
  ring_size : int;
  rx_ring : bytes Queue.t;
  mutable conf : Netdev.queue_conf option;
  mutable irq_armed : bool;
  mutable st : Netdev.stats;
  mutable peer : side option;
}

let tx_cost = 40
let rx_cost = 35

let deliver s frame =
  match s.conf with
  | None -> s.st <- { s.st with rx_dropped = s.st.rx_dropped + 1 }
  | Some conf ->
      if Queue.length s.rx_ring >= s.ring_size then
        s.st <- { s.st with rx_dropped = s.st.rx_dropped + 1 }
      else begin
        Queue.push frame s.rx_ring;
        match (conf.Netdev.mode, conf.Netdev.rx_handler) with
        | Netdev.Interrupt_driven, Some handler when s.irq_armed ->
            s.irq_armed <- false;
            s.st <- { s.st with rx_irqs = s.st.rx_irqs + 1 };
            Uksim.Clock.advance s.clock Uksim.Cost.interrupt_delivery;
            handler ()
        | (Netdev.Interrupt_driven | Netdev.Polling), _ -> ()
      end

let dev_of_side name s =
  let catch_up () = Uksim.Engine.run ~until:(Uksim.Clock.cycles s.clock) s.engine in
  let check_qid qid = if qid <> 0 then invalid_arg "Loopback: single queue device" in
  {
    Netdev.name;
    mtu = 1500;
    max_queues = 1;
    configure_queue =
      (fun ~qid conf ->
        check_qid qid;
        s.conf <- Some conf;
        s.irq_armed <- conf.Netdev.mode = Netdev.Interrupt_driven);
    tx_burst =
      (fun ~qid pkts ->
        check_qid qid;
        catch_up ();
        let peer = match s.peer with Some p -> p | None -> assert false in
        let n = Array.length pkts in
        let bytes = ref 0 in
        Array.iter
          (fun nb ->
            Uksim.Clock.advance s.clock tx_cost;
            let payload = Netbuf.to_payload nb in
            bytes := !bytes + Bytes.length payload;
            Uksim.Engine.after s.engine s.latency (fun () -> deliver peer payload))
          pkts;
        s.st <- { s.st with tx_pkts = s.st.tx_pkts + n; tx_bytes = s.st.tx_bytes + !bytes };
        n);
    tx_room =
      (fun ~qid ->
        check_qid qid;
        max_int);
    rx_burst =
      (fun ~qid ~max:max_pkts ->
        check_qid qid;
        catch_up ();
        match s.conf with
        | None -> []
        | Some conf ->
            let rec take acc n =
              if n >= max_pkts then List.rev acc
              else
                match Queue.take_opt s.rx_ring with
                | None -> List.rev acc
                | Some frame -> (
                    Uksim.Clock.advance s.clock rx_cost;
                    match conf.Netdev.rx_alloc () with
                    | None ->
                        s.st <- { s.st with rx_dropped = s.st.rx_dropped + 1 };
                        take acc (n + 1)
                    | Some nb ->
                        Netbuf.blit_payload nb frame;
                        s.st <-
                          {
                            s.st with
                            rx_pkts = s.st.rx_pkts + 1;
                            rx_bytes = s.st.rx_bytes + Bytes.length frame;
                          };
                        take (nb :: acc) (n + 1))
            in
            let pkts = take [] 0 in
            if conf.Netdev.mode = Netdev.Interrupt_driven && Queue.is_empty s.rx_ring then
              s.irq_armed <- true;
            pkts);
    rx_pending =
      (fun ~qid ->
        check_qid qid;
        catch_up ();
        Queue.length s.rx_ring);
    stats = (fun () -> s.st);
  }

let create_pair ~clock ~engine ?(latency_ns = 2000.0) ?(ring_size = 512) () =
  let mk () =
    {
      clock;
      engine;
      latency = Uksim.Clock.cycles_of_ns latency_ns;
      ring_size;
      rx_ring = Queue.create ();
      conf = None;
      irq_armed = false;
      st = Netdev.zero_stats;
      peer = None;
    }
  in
  let a = mk () and b = mk () in
  a.peer <- Some b;
  b.peer <- Some a;
  (dev_of_side "loopback-a" a, dev_of_side "loopback-b" b)
