(** Zero-cost paired devices: two uknetdev instances whose tx rings feed
    each other's rx rings directly (one event-engine hop, no virtio or host
    path). Used to connect two in-simulation network stacks — e.g. a wrk
    client against an nginx unikernel — and by unit tests. *)

val create_pair :
  clock:Uksim.Clock.t ->
  engine:Uksim.Engine.t ->
  ?latency_ns:float ->
  ?ring_size:int ->
  unit ->
  Netdev.t * Netdev.t
(** Default latency 2 µs (VM-to-VM on one host), ring 512. *)
