type t = {
  buf : bytes;
  hroom : int;
  mutable off : int;
  mutable length : int;
  id : int; (* pool slot id; -1 for heap buffers *)
}

let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

let alloc ?(headroom = 64) ~size () =
  if size < 0 || headroom < 0 then invalid_arg "Netbuf.alloc";
  {
    buf = Bytes.create (headroom + size);
    hroom = headroom;
    off = headroom;
    length = 0;
    id = -1;
  }

let of_bytes ?(headroom = 64) payload =
  let b = alloc ~headroom ~size:(Bytes.length payload) () in
  Bytes.blit payload 0 b.buf b.off (Bytes.length payload);
  b.length <- Bytes.length payload;
  b

let data t = t.buf
let offset t = t.off
let len t = t.length
let headroom t = t.off
let capacity t = Bytes.length t.buf - t.hroom

let set_len t n =
  if n < 0 || t.off + n > Bytes.length t.buf then invalid_arg "Netbuf.set_len";
  t.length <- n

let push t n =
  if n < 0 || n > t.off then invalid_arg "Netbuf.push: no headroom";
  t.off <- t.off - n;
  t.length <- t.length + n

let pull t n =
  if n < 0 || n > t.length then invalid_arg "Netbuf.pull: beyond payload";
  t.off <- t.off + n;
  t.length <- t.length - n

let to_payload t = Bytes.sub t.buf t.off t.length

let blit_payload t payload =
  let n = Bytes.length payload in
  if t.off + n > Bytes.length t.buf then invalid_arg "Netbuf.blit_payload: too large";
  Bytes.blit payload 0 t.buf t.off n;
  t.length <- n

let reset t =
  t.off <- t.hroom;
  t.length <- 0

module Pool = struct
  type netbuf = t

  type t = {
    clock : Uksim.Clock.t;
    alloc : Ukalloc.Alloc.t option;
    size : int;
    free : netbuf Stack.t;
    owned : (int, int) Hashtbl.t; (* netbuf id -> backing addr (or 0) *)
    total : int;
  }

  let take_cost = 18
  let give_cost = 14

  let alloc_buf size = alloc ~headroom:64 ~size ()

  let create ~clock ?alloc ~count ~size () =
    if count <= 0 || size <= 0 then invalid_arg "Netbuf.Pool.create";
    let free = Stack.create () in
    let owned = Hashtbl.create count in
    for _ = 1 to count do
      let backing =
        match alloc with
        | None -> 0
        | Some a -> (
            match Ukalloc.Alloc.uk_malloc a (size + 64) with
            | Some addr -> addr
            | None -> invalid_arg "Netbuf.Pool.create: allocator exhausted")
      in
      let b = { (alloc_buf size) with id = fresh_id () } in
      Hashtbl.replace owned b.id backing;
      Stack.push b free
    done;
    { clock; alloc; size; free; owned; total = count }

  let take p =
    Uksim.Clock.advance p.clock take_cost;
    match Stack.pop_opt p.free with
    | Some b -> Some b
    | None -> None

  let give p b =
    Uksim.Clock.advance p.clock give_cost;
    if not (Hashtbl.mem p.owned b.id) then
      invalid_arg "Netbuf.Pool.give: buffer does not belong to this pool";
    reset b;
    Stack.push b p.free

  let available p = Stack.length p.free
  let capacity_of p = p.size
end
