(** The uknetdev API (paper §3.1).

    Decouples drivers from the network stack / low-level application. The
    application fully operates the driver: it provides receive buffers (via
    an allocation callback registered at queue configuration), chooses
    polling or interrupt mode per queue, and moves packets with burst
    send/receive calls that mirror the paper's

    {v
    uk_netdev_tx_burst(dev, queue_id, pkt, cnt)
    uk_netdev_rx_burst(dev, queue_id, pkt, cnt)
    v} *)

type mode = Polling | Interrupt_driven

type queue_conf = {
  rx_alloc : unit -> Netbuf.t option;
      (** application-supplied buffer source for received packets *)
  mode : mode;
  rx_handler : (unit -> unit) option;
      (** interrupt callback: invoked on packet arrival / tx room when the
          queue's interrupt line is armed *)
}

type stats = {
  tx_pkts : int;
  tx_bytes : int;
  tx_kicks : int;  (** backend notifications (VM exits for vhost-net) *)
  rx_pkts : int;
  rx_bytes : int;
  rx_irqs : int;
  rx_dropped : int;  (** ring overflow or rx_alloc failure *)
}

type t = {
  name : string;
  mtu : int;
  max_queues : int;
  configure_queue : qid:int -> queue_conf -> unit;
  tx_burst : qid:int -> Netbuf.t array -> int;
      (** Enqueue as many as possible; returns the count accepted (the
          paper's in/out [cnt]). Buffers are consumed on acceptance. *)
  tx_room : qid:int -> int;
  rx_burst : qid:int -> max:int -> Netbuf.t list;
      (** Up to [max] packets. In interrupt mode, returning fewer than
          [max] re-arms the queue's interrupt line (paper §3.1). *)

  rx_pending : qid:int -> int;
  stats : unit -> stats;
}

val zero_stats : stats
val pp_stats : Format.formatter -> stats -> unit
