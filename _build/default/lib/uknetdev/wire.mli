(** The physical medium between a device backend and its peer: a
    latency/bandwidth-modelled point-to-point link (the paper's direct 10G
    cable), plus synthetic peers (a DPDK-testpmd-like sink, an echo). *)

type endpoint

val create_pair :
  engine:Uksim.Engine.t ->
  ?latency_ns:float ->
  ?bandwidth_gbps:float ->
  ?loss:float ->
  ?duplicate:float ->
  ?seed:int ->
  unit ->
  endpoint * endpoint
(** Bidirectional link; default 5 µs latency, 10 Gb/s. Frames sent faster
    than the line rate are serialized (delivery times push out). [loss]
    and [duplicate] are per-frame probabilities (default 0.0 — the paper's
    direct cable) applied deterministically from [seed]; lost frames are
    counted in {!dropped_frames}. *)

val dropped_frames : endpoint -> int
(** Frames this endpoint transmitted that the fault model discarded. *)

val send : endpoint -> bytes -> unit
(** Transmit a frame towards the peer endpoint. *)

val set_receiver : endpoint -> (bytes -> unit) option -> unit
(** Who gets frames arriving at this endpoint (None = count and drop). *)

val attach_sink : endpoint -> unit
(** testpmd-style measurement peer: count frames/bytes, never reply. *)

val attach_echo : endpoint -> unit
(** Reflect every frame back (source/dest rewriting is the sender's
    problem — this is a raw reflector). *)

val rx_frames : endpoint -> int
val rx_bytes : endpoint -> int
val tx_frames : endpoint -> int
val reset_counters : endpoint -> unit
