(** virtio-net driver for the uknetdev API, with the two KVM datapaths of
    the paper (§6.2, Fig 19):

    - {!Vhost_net}: the default tap-based in-kernel backend. Transmit
      bursts must kick the host (a VM exit) and the host-side per-packet
      path is long (tap + kernel bridge), so it saturates around ~1.2 Mpps
      regardless of guest speed.
    - {!Vhost_user}: DPDK-based backend polling shared rings in host
      userspace — no exits, short per-packet host path (at the cost of a
      dedicated host polling core).

    Host-side work runs "in parallel" on its own core: it is scheduled on
    the event engine and does not consume guest cycles; burst calls run the
    engine up to the current instant so host progress is observed. *)

type backend = Vhost_net | Vhost_user

val create :
  clock:Uksim.Clock.t ->
  engine:Uksim.Engine.t ->
  backend:backend ->
  wire:Wire.endpoint ->
  ?ring_size:int ->
  ?n_queues:int ->
  unit ->
  Netdev.t
(** The device transmits onto (and receives from) [wire]. [ring_size]
    defaults to 256 descriptors per queue, [n_queues] to 1. Frames arriving
    for an unconfigured queue, a full ring, or a failing [rx_alloc] are
    dropped (counted). *)

val guest_tx_cost : backend -> int
(** Guest cycles per transmitted packet (descriptor setup). *)

val host_pkt_cost : backend -> int
(** Host cycles per packet on the backend path. *)
