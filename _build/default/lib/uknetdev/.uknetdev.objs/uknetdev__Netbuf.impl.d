lib/uknetdev/netbuf.ml: Bytes Hashtbl Stack Ukalloc Uksim
