lib/uknetdev/wire.ml: Bytes Uksim
