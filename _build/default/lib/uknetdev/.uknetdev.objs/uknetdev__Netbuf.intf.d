lib/uknetdev/netbuf.mli: Ukalloc Uksim
