lib/uknetdev/wire.mli: Uksim
