lib/uknetdev/loopback.ml: Array Bytes List Netbuf Netdev Queue Uksim
