lib/uknetdev/virtio_net.ml: Array Bytes List Netbuf Netdev Queue Uksim Wire
