lib/uknetdev/netdev.ml: Fmt Netbuf
