lib/uknetdev/netdev.mli: Format Netbuf
