lib/uknetdev/loopback.mli: Netdev Uksim
