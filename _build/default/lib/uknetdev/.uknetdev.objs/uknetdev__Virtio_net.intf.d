lib/uknetdev/virtio_net.mli: Netdev Uksim Wire
