(** A registry of Kconfig options (the menu definition). *)

type t

val create : unit -> t

val add : t -> Kopt.t -> unit
(** Raises [Invalid_argument] on duplicate option names. *)

val add_all : t -> Kopt.t list -> unit
val find : t -> string -> Kopt.t option
val find_exn : t -> string -> Kopt.t
(** Raises [Not_found]. *)

val mem : t -> string -> bool
val options : t -> Kopt.t list
(** In declaration order. *)

val menu_tree : t -> (string list * Kopt.t list) list
(** Options grouped by menu path, paths sorted. *)

val check_closed : t -> (unit, string list) result
(** Verify every variable referenced in a [depends] expression and every
    [selects] target is itself a declared boolean option; [Error missing]
    otherwise. *)
