lib/ukconf/schema.ml: Expr Hashtbl Kopt List Map Printf
