lib/ukconf/expr.mli: Format
