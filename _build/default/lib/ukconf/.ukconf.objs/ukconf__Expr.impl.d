lib/ukconf/expr.ml: Fmt List Set String
