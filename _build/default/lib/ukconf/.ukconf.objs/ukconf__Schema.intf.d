lib/ukconf/schema.mli: Kopt
