lib/ukconf/config.mli: Expr Format Kopt Schema
