lib/ukconf/kopt.ml: Expr Fmt List
