lib/ukconf/kopt.mli: Expr Format
