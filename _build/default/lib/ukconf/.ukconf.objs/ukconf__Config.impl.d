lib/ukconf/config.ml: Buffer Expr Fmt Hashtbl Kopt List Printf Schema
