type t = {
  table : (string, Kopt.t) Hashtbl.t;
  mutable order : string list; (* reversed declaration order *)
}

let create () = { table = Hashtbl.create 64; order = [] }

let add t (o : Kopt.t) =
  if Hashtbl.mem t.table o.name then
    invalid_arg (Printf.sprintf "Schema.add: duplicate option %s" o.name);
  Hashtbl.replace t.table o.name o;
  t.order <- o.name :: t.order

let add_all t = List.iter (add t)
let find t name = Hashtbl.find_opt t.table name
let find_exn t name = match find t name with Some o -> o | None -> raise Not_found
let mem t name = Hashtbl.mem t.table name
let options t = List.rev_map (fun n -> Hashtbl.find t.table n) t.order

let menu_tree t =
  let module M = Map.Make (struct
    type nonrec t = string list
    let compare = compare
  end) in
  let groups =
    List.fold_left
      (fun acc (o : Kopt.t) ->
        let cur = match M.find_opt o.menu acc with Some l -> l | None -> [] in
        M.add o.menu (o :: cur) acc)
      M.empty (options t)
  in
  M.fold (fun path opts acc -> (path, List.rev opts) :: acc) groups [] |> List.rev

let check_closed t =
  let missing = ref [] in
  let is_bool name =
    match find t name with Some { ty = Kopt.Tbool; _ } -> true | Some _ | None -> false
  in
  let check_name src name =
    if not (is_bool name) then
      missing := Printf.sprintf "%s references undeclared bool option %s" src name :: !missing
  in
  List.iter
    (fun (o : Kopt.t) ->
      List.iter (check_name o.name) (Expr.vars o.depends);
      List.iter (check_name o.name) o.selects)
    (options t);
  match !missing with [] -> Ok () | l -> Error (List.rev l)
