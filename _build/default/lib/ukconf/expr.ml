type t =
  | True
  | False
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t

let rec eval lookup = function
  | True -> true
  | False -> false
  | Var v -> lookup v
  | Not e -> not (eval lookup e)
  | And (a, b) -> eval lookup a && eval lookup b
  | Or (a, b) -> eval lookup a || eval lookup b

let vars e =
  let module S = Set.Make (String) in
  let rec collect acc = function
    | True | False -> acc
    | Var v -> S.add v acc
    | Not e -> collect acc e
    | And (a, b) | Or (a, b) -> collect (collect acc a) b
  in
  S.elements (collect S.empty e)

let conj = function
  | [] -> True
  | e :: rest -> List.fold_left (fun acc x -> And (acc, x)) e rest

let rec pp ppf = function
  | True -> Fmt.string ppf "y"
  | False -> Fmt.string ppf "n"
  | Var v -> Fmt.string ppf v
  | Not e -> Fmt.pf ppf "!%a" pp_atom e
  | And (a, b) -> Fmt.pf ppf "%a && %a" pp_atom a pp_atom b
  | Or (a, b) -> Fmt.pf ppf "%a || %a" pp_atom a pp_atom b

and pp_atom ppf = function
  | (True | False | Var _ | Not _) as e -> pp ppf e
  | (And _ | Or _) as e -> Fmt.pf ppf "(%a)" pp e

let to_string e = Fmt.str "%a" pp e
