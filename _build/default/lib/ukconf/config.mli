(** A resolved configuration: option assignments validated against a schema,
    with [select] propagation and [depends] enforcement. *)

type t

type error =
  | Unknown_option of string
  | Type_mismatch of { option : string; value : Kopt.value }
  | Select_conflict of { selected : string; by : string }
      (** an explicit [n] assignment clashes with a [select] *)
  | Unmet_dependency of { option : string; depends : Expr.t }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val resolve : Schema.t -> (string * Kopt.value) list -> (t, error list) result
(** Build a configuration from explicit assignments. Unassigned options take
    their defaults. Boolean options that end up enabled force their
    [selects] on, transitively; explicit [Bool false] assignments that a
    select overrides are reported as {!Select_conflict}. Every enabled
    boolean option and every explicitly assigned option must have its
    [depends] satisfied (options whose dependencies fail fall back to
    disabled when defaulted, error when explicit). *)

val schema : t -> Schema.t
val enabled : t -> string -> bool
(** [enabled t name] for boolean options; [false] if unknown. *)

val get_bool : t -> string -> bool
val get_int : t -> string -> int
val get_string : t -> string -> string
val get_choice : t -> string -> string
(** Getters raise [Invalid_argument] on unknown names or type mismatch. *)

val assignments : t -> (string * Kopt.value) list
(** Final value of every declared option, declaration order. *)

val enabled_options : t -> string list
(** Names of all enabled boolean options. *)

val to_dotconfig : t -> string
(** Render like a .config file (CONFIG_X=y / # CONFIG_X is not set). *)
