type t = { schema : Schema.t; values : (string, Kopt.value) Hashtbl.t }

type error =
  | Unknown_option of string
  | Type_mismatch of { option : string; value : Kopt.value }
  | Select_conflict of { selected : string; by : string }
  | Unmet_dependency of { option : string; depends : Expr.t }

let pp_error ppf = function
  | Unknown_option o -> Fmt.pf ppf "unknown option %s" o
  | Type_mismatch { option; value } ->
      Fmt.pf ppf "option %s cannot take value %a" option Kopt.pp_value value
  | Select_conflict { selected; by } ->
      Fmt.pf ppf "option %s explicitly disabled but selected by %s" selected by
  | Unmet_dependency { option; depends } ->
      Fmt.pf ppf "option %s enabled but dependency (%a) unmet" option Expr.pp depends

let error_to_string e = Fmt.str "%a" pp_error e

let bool_value values name =
  match Hashtbl.find_opt values name with Some (Kopt.Bool b) -> b | Some _ | None -> false

let resolve schema assigns =
  let errors = ref [] in
  let err e = errors := e :: !errors in
  let values = Hashtbl.create 64 in
  let explicit = Hashtbl.create 16 in
  (* Defaults first. *)
  List.iter (fun (o : Kopt.t) -> Hashtbl.replace values o.name o.default) (Schema.options schema);
  (* Explicit assignments override, after type checking. *)
  List.iter
    (fun (name, v) ->
      match Schema.find schema name with
      | None -> err (Unknown_option name)
      | Some o ->
          if Kopt.value_matches o.ty v then begin
            Hashtbl.replace values name v;
            Hashtbl.replace explicit name v
          end
          else err (Type_mismatch { option = name; value = v }))
    assigns;
  (* Propagate selects to a fixpoint (schemas are finite; each pass only
     flips options from n to y, so this terminates). *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (o : Kopt.t) ->
        if bool_value values o.name then
          List.iter
            (fun sel ->
              match Schema.find schema sel with
              | None -> () (* reported by Schema.check_closed *)
              | Some _ ->
                  if not (bool_value values sel) then begin
                    (match Hashtbl.find_opt explicit sel with
                    | Some (Kopt.Bool false) ->
                        err (Select_conflict { selected = sel; by = o.name })
                    | Some _ | None -> ());
                    Hashtbl.replace values sel (Kopt.Bool true);
                    changed := true
                  end)
            o.selects)
      (Schema.options schema)
  done;
  (* Dependency enforcement: enabled bools and explicitly-set options need
     their depends satisfied; defaulted options with unmet depends are
     silently reverted to their "off" state. *)
  let lookup = bool_value values in
  List.iter
    (fun (o : Kopt.t) ->
      let dep_ok = Expr.eval lookup o.depends in
      if not dep_ok then begin
        (* Explicitly disabling an option whose dependencies are unmet is
           fine ("# CONFIG_X is not set"); turning it on is not. *)
        let is_explicit_on =
          match Hashtbl.find_opt explicit o.name with
          | Some (Kopt.Bool false) | None -> false
          | Some _ -> true
        in
        let is_enabled_bool = o.ty = Kopt.Tbool && bool_value values o.name in
        if is_explicit_on || is_enabled_bool then
          err (Unmet_dependency { option = o.name; depends = o.depends })
      end)
    (Schema.options schema);
  match List.rev !errors with
  | [] -> Ok { schema; values }
  | es -> Error es

let schema t = t.schema
let enabled t name = bool_value t.values name

let get_value t name =
  match Hashtbl.find_opt t.values name with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Config: unknown option %s" name)

let get_bool t name =
  match get_value t name with
  | Kopt.Bool b -> b
  | Kopt.Int _ | Kopt.String _ | Kopt.Choice _ ->
      invalid_arg (Printf.sprintf "Config.get_bool: %s is not boolean" name)

let get_int t name =
  match get_value t name with
  | Kopt.Int i -> i
  | Kopt.Bool _ | Kopt.String _ | Kopt.Choice _ ->
      invalid_arg (Printf.sprintf "Config.get_int: %s is not an int" name)

let get_string t name =
  match get_value t name with
  | Kopt.String s -> s
  | Kopt.Bool _ | Kopt.Int _ | Kopt.Choice _ ->
      invalid_arg (Printf.sprintf "Config.get_string: %s is not a string" name)

let get_choice t name =
  match get_value t name with
  | Kopt.Choice c -> c
  | Kopt.Bool _ | Kopt.Int _ | Kopt.String _ ->
      invalid_arg (Printf.sprintf "Config.get_choice: %s is not a choice" name)

let assignments t =
  List.map (fun (o : Kopt.t) -> (o.name, get_value t o.name)) (Schema.options t.schema)

let enabled_options t =
  List.filter_map
    (fun (o : Kopt.t) -> if o.ty = Kopt.Tbool && enabled t o.name then Some o.name else None)
    (Schema.options t.schema)

let to_dotconfig t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, v) ->
      let line =
        match v with
        | Kopt.Bool true -> Printf.sprintf "CONFIG_%s=y" name
        | Kopt.Bool false -> Printf.sprintf "# CONFIG_%s is not set" name
        | Kopt.Int i -> Printf.sprintf "CONFIG_%s=%d" name i
        | Kopt.String s -> Printf.sprintf "CONFIG_%s=%S" name s
        | Kopt.Choice c -> Printf.sprintf "CONFIG_%s=%s" name c
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    (assignments t);
  Buffer.contents buf
