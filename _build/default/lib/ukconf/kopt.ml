type value =
  | Bool of bool
  | Int of int
  | String of string
  | Choice of string

type ty =
  | Tbool
  | Tint of { min : int; max : int }
  | Tstring
  | Tchoice of string list

type t = {
  name : string;
  doc : string;
  ty : ty;
  default : value;
  depends : Expr.t;
  selects : string list;
  menu : string list;
}

let bool ?(doc = "") ?(default = false) ?(depends = Expr.True) ?(selects = []) ?(menu = []) name =
  { name; doc; ty = Tbool; default = Bool default; depends; selects; menu }

let int ?(doc = "") ?(default = 0) ?(min = min_int) ?(max = max_int) ?(depends = Expr.True)
    ?(menu = []) name =
  if default < min || default > max then invalid_arg "Kopt.int: default out of range";
  { name; doc; ty = Tint { min; max }; default = Int default; depends; selects = []; menu }

let string ?(doc = "") ?(default = "") ?(depends = Expr.True) ?(menu = []) name =
  { name; doc; ty = Tstring; default = String default; depends; selects = []; menu }

let choice ?(doc = "") ~default ~alternatives ?(depends = Expr.True) ?(menu = []) name =
  if not (List.mem default alternatives) then
    invalid_arg "Kopt.choice: default not among alternatives";
  { name; doc; ty = Tchoice alternatives; default = Choice default; depends; selects = []; menu }

let value_matches ty v =
  match (ty, v) with
  | Tbool, Bool _ -> true
  | Tint { min; max }, Int i -> i >= min && i <= max
  | Tstring, String _ -> true
  | Tchoice alts, Choice c -> List.mem c alts
  | (Tbool | Tint _ | Tstring | Tchoice _), (Bool _ | Int _ | String _ | Choice _) -> false

let pp_value ppf = function
  | Bool b -> Fmt.pf ppf "%s" (if b then "y" else "n")
  | Int i -> Fmt.int ppf i
  | String s -> Fmt.pf ppf "%S" s
  | Choice c -> Fmt.string ppf c
