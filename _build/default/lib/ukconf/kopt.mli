(** A single Kconfig option. *)

type value =
  | Bool of bool
  | Int of int
  | String of string
  | Choice of string  (** one of the declared alternatives *)

type ty =
  | Tbool
  | Tint of { min : int; max : int }
  | Tstring
  | Tchoice of string list

type t = {
  name : string;
  doc : string;
  ty : ty;
  default : value;
  depends : Expr.t;  (** must hold for the option to be settable/enabled *)
  selects : string list;  (** boolean options forced on when this one is on *)
  menu : string list;  (** menu path, e.g. ["Library Configuration"; "ukalloc"] *)
}

val bool :
  ?doc:string -> ?default:bool -> ?depends:Expr.t -> ?selects:string list ->
  ?menu:string list -> string -> t

val int :
  ?doc:string -> ?default:int -> ?min:int -> ?max:int -> ?depends:Expr.t ->
  ?menu:string list -> string -> t

val string : ?doc:string -> ?default:string -> ?depends:Expr.t -> ?menu:string list -> string -> t

val choice :
  ?doc:string -> default:string -> alternatives:string list -> ?depends:Expr.t ->
  ?menu:string list -> string -> t
(** Raises [Invalid_argument] if [default] is not among [alternatives]. *)

val value_matches : ty -> value -> bool
val pp_value : Format.formatter -> value -> unit
