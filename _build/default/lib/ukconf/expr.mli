(** Kconfig-style boolean dependency expressions. *)

type t =
  | True
  | False
  | Var of string  (** value of another boolean option *)
  | Not of t
  | And of t * t
  | Or of t * t

val eval : (string -> bool) -> t -> bool
(** [eval lookup e] evaluates [e]; [lookup] gives each variable's value. *)

val vars : t -> string list
(** Variables mentioned, sorted, without duplicates. *)

val conj : t list -> t
(** N-ary conjunction ([True] for the empty list). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
