lib/ukblock/virtio_blk.mli: Blockdev Uksim
