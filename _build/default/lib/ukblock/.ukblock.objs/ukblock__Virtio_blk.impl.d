lib/ukblock/virtio_blk.ml: Array Blockdev Bytes List Queue Uksim
