lib/ukblock/blockdev.mli:
