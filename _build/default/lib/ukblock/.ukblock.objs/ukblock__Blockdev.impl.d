lib/ukblock/blockdev.ml:
