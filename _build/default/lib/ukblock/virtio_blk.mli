(** virtio-blk device for the ukblock API.

    A guest-side descriptor queue over a host-side backing store (an
    in-memory disk image standing in for the host block layer). Requests
    complete asynchronously on the event engine after the host-path
    latency; a completion handler (virtqueue interrupt) fires on
    idle-to-busy completion transitions, with the same storm-avoidance
    contract as uknetdev.

    [Ramdisk] is the degenerate device: synchronous, memory-speed — what
    the paper's RamFS guests effectively use. *)

val create :
  clock:Uksim.Clock.t ->
  engine:Uksim.Engine.t ->
  ?sector_size:int ->
  ?capacity_sectors:int ->
  ?queue_depth:int ->
  ?host_latency_ns:float ->
  unit ->
  Blockdev.t
(** Defaults: 512-byte sectors, 131072 sectors (64 MiB), queue depth 128,
    20 µs host path (virtio exit + host page-cache hit). *)

val create_ramdisk :
  clock:Uksim.Clock.t ->
  ?sector_size:int ->
  ?capacity_sectors:int ->
  unit ->
  Blockdev.t
(** Synchronous in-guest RAM disk (submit completes instantly). *)
