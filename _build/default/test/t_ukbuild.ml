(* Tests for the build/link model: micro-library inventories, the linker
   with DCE/LTO, the catalog, the porting study (Table 2) and the
   developer survey (Fig 6). *)

module M = Ukbuild.Microlib
module R = Ukbuild.Registry
module L = Ukbuild.Linker
module C = Ukbuild.Catalog
module P = Ukbuild.Porting

let test_microlib_determinism () =
  let a = M.define ~name:"libx" ~kind:M.Library ~code_size:50000 () in
  let b = M.define ~name:"libx" ~kind:M.Library ~code_size:50000 () in
  Alcotest.(check (list string)) "same inventory" (M.api_symbols a) (M.api_symbols b);
  Alcotest.(check int) "sizes partition code_size" 50000 (M.total_size a)

let test_microlib_used_apis_fraction () =
  let callee = M.define ~name:"dep" ~kind:M.Library ~code_size:80000 ~n_clusters:10 () in
  let caller =
    M.define ~name:"app" ~kind:M.App ~deps:[ ("dep", 0.5) ] ~code_size:10000 ()
  in
  let used = M.used_apis ~caller ~callee in
  Alcotest.(check int) "half the surface" 5 (List.length used);
  Alcotest.(check (list string)) "deterministic subset" used (M.used_apis ~caller ~callee);
  let stranger = M.define ~name:"other" ~kind:M.App ~code_size:1000 () in
  Alcotest.(check (list string)) "no edge, no use" [] (M.used_apis ~caller:stranger ~callee)

let test_registry_closure () =
  let r = R.create () in
  R.add_all r
    [
      M.define ~name:"a" ~kind:M.App ~deps:[ ("b", 1.0) ] ~code_size:1000 ();
      M.define ~name:"b" ~kind:M.Library ~deps:[ ("c", 1.0) ] ~code_size:1000 ();
      M.define ~name:"c" ~kind:M.Library ~code_size:1000 ();
      M.define ~name:"lonely" ~kind:M.Library ~code_size:1000 ();
    ];
  (match R.closure r [ "a" ] with
  | Ok libs -> Alcotest.(check (list string)) "transitive" [ "a"; "b"; "c" ] libs
  | Error _ -> Alcotest.fail "closure");
  let r2 = R.create () in
  R.add r2 (M.define ~name:"x" ~kind:M.App ~deps:[ ("ghost", 1.0) ] ~code_size:100 ());
  match R.closure r2 [ "x" ] with
  | Error "ghost" -> ()
  | Error e -> Alcotest.failf "wrong missing lib: %s" e
  | Ok _ -> Alcotest.fail "missing dependency undetected"

let link ?(flags = L.default_flags) ?(alloc = "alloc-tlsf") ?(sched = "sched-coop") ?(net = false)
    ?(fs = false) app plat =
  let r = C.registry () in
  let roots = C.app_roots ~app ~net ~fs ~alloc ~sched () in
  match L.link r ~name:app ~platform:plat ~roots ~flags () with
  | Ok img -> img
  | Error e -> Alcotest.failf "link failed: %s" e

let link_hello ?(flags = L.default_flags) plat =
  let r = C.registry () in
  match L.link r ~name:"hello" ~platform:plat ~roots:[ "app-hello" ] ~flags () with
  | Ok img -> img
  | Error e -> Alcotest.failf "link failed: %s" e

let test_hello_sizes () =
  (* Fig 9: ~200KB on KVM, tens of KB on Xen. *)
  let kvm = link_hello "plat-kvm" in
  let xen = link_hello "plat-xen" in
  let kb i = i.L.image_bytes / 1024 in
  Alcotest.(check bool)
    (Printf.sprintf "kvm hello ~200KB (%dKB)" (kb kvm))
    true
    (kb kvm > 120 && kb kvm < 300);
  Alcotest.(check bool)
    (Printf.sprintf "xen hello well under kvm (%dKB)" (kb xen))
    true
    (kb xen < 90 && kb xen * 2 < kb kvm)

let test_app_sizes_under_2mb () =
  (* Fig 8: all images below 2MB with DCE+LTO. *)
  List.iter
    (fun (app, net, fs) ->
      let img = link app "plat-kvm" ~net ~fs in
      Alcotest.(check bool)
        (Printf.sprintf "%s = %dKB" app (img.L.image_bytes / 1024))
        true
        (img.L.image_bytes < 2 * 1024 * 1024))
    [ ("app-nginx", true, false); ("app-redis", true, false); ("app-sqlite", false, true) ]

let test_dce_lto_monotone () =
  (* Fig 8's ablation: every optimization strictly helps. *)
  let size flags = (link ~flags "app-nginx" "plat-kvm" ~net:true).L.image_bytes in
  let none = size { L.dce = false; lto = false } in
  let dce = size { L.dce = true; lto = false } in
  let lto = size { L.dce = false; lto = true } in
  let both = size { L.dce = true; lto = true } in
  Alcotest.(check bool) "dce helps" true (dce < none);
  Alcotest.(check bool) "lto helps" true (lto < none);
  Alcotest.(check bool) "both best" true (both < dce && both < lto)

let test_dep_graph_shape () =
  (* Figs 2/3: nginx pulls in the network stack; hello stays tiny. *)
  let nginx = link "app-nginx" "plat-kvm" ~net:true in
  let hello = link_hello "plat-kvm" in
  Alcotest.(check bool) "nginx includes lwip" true (List.mem "lwip" nginx.L.libs);
  Alcotest.(check bool) "nginx includes vfscore" true (List.mem "vfscore" nginx.L.libs);
  Alcotest.(check bool) "hello has no network stack" false (List.mem "lwip" hello.L.libs);
  Alcotest.(check bool) "hello has no scheduler" false (List.mem "sched-coop" hello.L.libs);
  Alcotest.(check bool) "far fewer libs" true
    (List.length hello.L.libs * 2 < List.length nginx.L.libs);
  let g = nginx.L.dep_graph in
  Alcotest.(check bool) "graph edge app->lwip" true
    (Ukgraph.Digraph.mem_edge g "app-nginx" "lwip")

let test_unknown_roots () =
  Alcotest.check_raises "unknown app" (Invalid_argument "Catalog.app_roots: unknown app nope")
    (fun () -> ignore (C.app_roots ~app:"nope" ~net:false ~fs:false ()))

(* --- Table 2 ------------------------------------------------------------- *)

let test_table2_shape () =
  let rows = P.table2 () in
  Alcotest.(check int) "24 libraries" 24 (List.length rows);
  (* With the compat layer everything builds (paper: "almost all"). *)
  List.iter
    (fun r ->
      if not (r.P.musl_compat && r.P.newlib_compat) then
        Alcotest.failf "%s: compat layer build failed" r.P.name)
    rows

let test_table2_std_matches_paper () =
  let rows = P.table2 () in
  let get name = List.find (fun r -> r.P.name = name) rows in
  (* Spot-check the published check/cross marks. *)
  Alcotest.(check bool) "helloworld builds everywhere" true
    (let r = get "lib-helloworld" in
     r.P.musl_std && r.P.newlib_std);
  Alcotest.(check bool) "nginx needs the compat layer" false (get "lib-nginx").P.musl_std;
  Alcotest.(check bool) "duktape: musl yes" true (get "lib-duktape").P.musl_std;
  Alcotest.(check bool) "duktape: newlib no" false (get "lib-duktape").P.newlib_std;
  Alcotest.(check bool) "zydis: musl yes, newlib no" true
    (let r = get "lib-zydis" in
     r.P.musl_std && not r.P.newlib_std);
  Alcotest.(check (float 0.001)) "ruby size" 5.6 (get "lib-ruby").P.musl_mb;
  Alcotest.(check int) "ruby glue LoC" 37 (get "lib-ruby").P.glue

let test_table2_newlib_bigger () =
  (* Paper: newlib images are consistently larger than musl ones. *)
  List.iter
    (fun r ->
      if r.P.newlib_mb < r.P.musl_mb then Alcotest.failf "%s: newlib smaller" r.P.name)
    (P.table2 ())

let test_link_check_errors () =
  let e = List.find (fun (x : P.entry) -> x.P.lib = "lib-nginx") P.entries in
  match P.link_check e { P.libc = P.Musl; compat_layer = false } with
  | Error syms -> Alcotest.(check bool) "unresolved symbols listed" true (List.length syms > 0)
  | Ok () -> Alcotest.fail "nginx/musl/std must fail"

(* --- Fig 6 ---------------------------------------------------------------- *)

let test_survey_trend () =
  let q = P.Survey.by_quarter () in
  Alcotest.(check int) "six quarters" 6 (List.length q);
  let deps_of (_, (_, d, _, _)) = d in
  let os_of (_, (_, _, o, _)) = o in
  let first = List.hd q and last = List.nth q 5 in
  Alcotest.(check bool) "dependency effort collapsed" true
    (deps_of last < deps_of first /. 5.0);
  Alcotest.(check bool) "OS-primitive effort collapsed" true (os_of last < os_of first /. 5.0)

let suite =
  [
    Alcotest.test_case "microlib determinism" `Quick test_microlib_determinism;
    Alcotest.test_case "used_apis fractions" `Quick test_microlib_used_apis_fraction;
    Alcotest.test_case "registry closure" `Quick test_registry_closure;
    Alcotest.test_case "hello image sizes (Fig 9)" `Quick test_hello_sizes;
    Alcotest.test_case "apps under 2MB (Fig 8)" `Quick test_app_sizes_under_2mb;
    Alcotest.test_case "DCE/LTO monotone (Fig 8)" `Quick test_dce_lto_monotone;
    Alcotest.test_case "dependency graphs (Figs 2/3)" `Quick test_dep_graph_shape;
    Alcotest.test_case "unknown roots rejected" `Quick test_unknown_roots;
    Alcotest.test_case "Table 2 shape" `Quick test_table2_shape;
    Alcotest.test_case "Table 2 std columns" `Quick test_table2_std_matches_paper;
    Alcotest.test_case "Table 2 newlib sizes" `Quick test_table2_newlib_bigger;
    Alcotest.test_case "link check reports symbols" `Quick test_link_check_errors;
    Alcotest.test_case "survey trend (Fig 6)" `Quick test_survey_trend;
  ]
