(* Tests for the Kconfig model: expressions, schema, resolution. *)

module E = Ukconf.Expr
module K = Ukconf.Kopt
module S = Ukconf.Schema
module C = Ukconf.Config

let test_expr_eval () =
  let env = function "a" -> true | "b" -> false | _ -> false in
  Alcotest.(check bool) "var" true (E.eval env (E.Var "a"));
  Alcotest.(check bool) "not" true (E.eval env (E.Not (E.Var "b")));
  Alcotest.(check bool) "and" false (E.eval env (E.And (E.Var "a", E.Var "b")));
  Alcotest.(check bool) "or" true (E.eval env (E.Or (E.Var "a", E.Var "b")));
  Alcotest.(check bool) "true" true (E.eval env E.True)

let test_expr_vars () =
  let e = E.And (E.Var "x", E.Or (E.Not (E.Var "y"), E.Var "x")) in
  Alcotest.(check (list string)) "deduplicated sorted vars" [ "x"; "y" ] (E.vars e)

let test_expr_conj () =
  Alcotest.(check bool) "empty conj is true" true (E.eval (fun _ -> false) (E.conj []));
  let e = E.conj [ E.Var "a"; E.Var "b" ] in
  Alcotest.(check bool) "conj of two" false (E.eval (function "a" -> true | _ -> false) e)

let test_expr_print () =
  Alcotest.(check string) "rendering" "a && !(b || c)"
    (E.to_string (E.And (E.Var "a", E.Not (E.Or (E.Var "b", E.Var "c")))))

let mk_schema () =
  let s = S.create () in
  S.add_all s
    [
      K.bool "NET" ~doc:"networking";
      K.bool "LWIP" ~depends:(E.Var "NET");
      K.bool "MIMALLOC" ~selects:[ "THREADS" ];
      K.bool "THREADS";
      K.int "MEM" ~default:32 ~min:2 ~max:1024;
      K.choice "ALLOC" ~default:"tlsf" ~alternatives:[ "tlsf"; "buddy" ];
      K.string "NAME" ~default:"uk";
    ];
  s

let test_schema_duplicate () =
  let s = mk_schema () in
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Schema.add: duplicate option NET") (fun () -> S.add s (K.bool "NET"))

let test_schema_closed () =
  let s = mk_schema () in
  (match S.check_closed s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected: %s" (String.concat "," e));
  S.add s (K.bool "BROKEN" ~depends:(E.Var "NOPE"));
  match S.check_closed s with
  | Ok () -> Alcotest.fail "should detect dangling reference"
  | Error _ -> ()

let test_resolve_defaults () =
  let s = mk_schema () in
  match C.resolve s [] with
  | Error _ -> Alcotest.fail "defaults should resolve"
  | Ok c ->
      Alcotest.(check bool) "NET defaults off" false (C.get_bool c "NET");
      Alcotest.(check int) "MEM default" 32 (C.get_int c "MEM");
      Alcotest.(check string) "ALLOC default" "tlsf" (C.get_choice c "ALLOC")

let test_resolve_select () =
  let s = mk_schema () in
  match C.resolve s [ ("MIMALLOC", K.Bool true) ] with
  | Error _ -> Alcotest.fail "should resolve"
  | Ok c -> Alcotest.(check bool) "THREADS selected" true (C.get_bool c "THREADS")

let test_resolve_select_conflict () =
  let s = mk_schema () in
  match C.resolve s [ ("MIMALLOC", K.Bool true); ("THREADS", K.Bool false) ] with
  | Ok _ -> Alcotest.fail "conflict should be reported"
  | Error errs ->
      Alcotest.(check bool) "select conflict present" true
        (List.exists (function C.Select_conflict _ -> true | _ -> false) errs)

let test_resolve_dependency () =
  let s = mk_schema () in
  (match C.resolve s [ ("LWIP", K.Bool true) ] with
  | Ok _ -> Alcotest.fail "LWIP without NET must fail"
  | Error errs ->
      Alcotest.(check bool) "unmet dep" true
        (List.exists (function C.Unmet_dependency _ -> true | _ -> false) errs));
  match C.resolve s [ ("NET", K.Bool true); ("LWIP", K.Bool true) ] with
  | Ok c -> Alcotest.(check bool) "LWIP on" true (C.get_bool c "LWIP")
  | Error _ -> Alcotest.fail "should resolve with NET"

let test_resolve_explicit_off_ok () =
  (* "# CONFIG_LWIP is not set" is valid even with NET off. *)
  let s = mk_schema () in
  match C.resolve s [ ("LWIP", K.Bool false) ] with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "explicit n with unmet deps must be accepted"

let test_resolve_type_errors () =
  let s = mk_schema () in
  (match C.resolve s [ ("MEM", K.Bool true) ] with
  | Ok _ -> Alcotest.fail "type mismatch"
  | Error _ -> ());
  (match C.resolve s [ ("MEM", K.Int 9999) ] with
  | Ok _ -> Alcotest.fail "range violation"
  | Error _ -> ());
  (match C.resolve s [ ("ALLOC", K.Choice "nope") ] with
  | Ok _ -> Alcotest.fail "bad choice"
  | Error _ -> ());
  match C.resolve s [ ("UNKNOWN", K.Bool true) ] with
  | Ok _ -> Alcotest.fail "unknown option"
  | Error errs ->
      Alcotest.(check bool) "unknown" true
        (List.exists (function C.Unknown_option _ -> true | _ -> false) errs)

let test_dotconfig () =
  let s = mk_schema () in
  match C.resolve s [ ("NET", K.Bool true) ] with
  | Error _ -> Alcotest.fail "resolve"
  | Ok c ->
      let text = C.to_dotconfig c in
      Alcotest.(check bool) "y line" true
        (String.length text > 0
        && List.mem "CONFIG_NET=y" (String.split_on_char '\n' text));
      Alcotest.(check bool) "not-set line" true
        (List.mem "# CONFIG_LWIP is not set" (String.split_on_char '\n' text))

let test_menu_tree () =
  let s = S.create () in
  S.add s (K.bool "A" ~menu:[ "top" ]);
  S.add s (K.bool "B" ~menu:[ "top"; "sub" ]);
  S.add s (K.bool "C" ~menu:[ "top" ]);
  let tree = S.menu_tree s in
  Alcotest.(check int) "two menus" 2 (List.length tree);
  let top = List.assoc [ "top" ] tree in
  Alcotest.(check (list string)) "grouping" [ "A"; "C" ]
    (List.map (fun (o : K.t) -> o.K.name) top)

let test_kopt_validation () =
  Alcotest.check_raises "choice default must be alternative"
    (Invalid_argument "Kopt.choice: default not among alternatives") (fun () ->
      ignore (K.choice "X" ~default:"z" ~alternatives:[ "a" ]))

let select_idempotent_prop =
  QCheck.Test.make ~name:"resolution is deterministic" ~count:50
    QCheck.(list (pair (oneofl [ "NET"; "LWIP"; "MIMALLOC"; "THREADS" ]) bool))
    (fun assigns ->
      let s1 = mk_schema () and s2 = mk_schema () in
      let a = List.map (fun (n, b) -> (n, K.Bool b)) assigns in
      (* Later assignments override earlier ones in both runs equally. *)
      match (C.resolve s1 a, C.resolve s2 a) with
      | Ok c1, Ok c2 -> C.to_dotconfig c1 = C.to_dotconfig c2
      | Error _, Error _ -> true
      | Ok _, Error _ | Error _, Ok _ -> false)

let suite =
  [
    Alcotest.test_case "expr eval" `Quick test_expr_eval;
    Alcotest.test_case "expr vars" `Quick test_expr_vars;
    Alcotest.test_case "expr conj" `Quick test_expr_conj;
    Alcotest.test_case "expr printing" `Quick test_expr_print;
    Alcotest.test_case "schema duplicates" `Quick test_schema_duplicate;
    Alcotest.test_case "schema closure check" `Quick test_schema_closed;
    Alcotest.test_case "resolve defaults" `Quick test_resolve_defaults;
    Alcotest.test_case "select propagation" `Quick test_resolve_select;
    Alcotest.test_case "select conflict" `Quick test_resolve_select_conflict;
    Alcotest.test_case "dependency enforcement" `Quick test_resolve_dependency;
    Alcotest.test_case "explicit off with unmet deps" `Quick test_resolve_explicit_off_ok;
    Alcotest.test_case "type and range errors" `Quick test_resolve_type_errors;
    Alcotest.test_case "dotconfig rendering" `Quick test_dotconfig;
    Alcotest.test_case "menu tree" `Quick test_menu_tree;
    Alcotest.test_case "kopt validation" `Quick test_kopt_validation;
    QCheck_alcotest.to_alcotest select_idempotent_prop;
  ]
