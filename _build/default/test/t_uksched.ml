(* Tests for the scheduler: cooperative, preemptive, null; blocking,
   sleeping, deadlock detection, daemon threads. *)

open Uksched

let env () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  (clock, engine)

let test_coop_interleaving () =
  let clock, engine = env () in
  let s = Sched.create_cooperative ~clock ~engine in
  let log = Buffer.create 32 in
  let thread tag () =
    for i = 1 to 3 do
      Buffer.add_string log (Printf.sprintf "%s%d " tag i);
      Sched.yield ()
    done
  in
  ignore (Sched.spawn s ~name:"a" (thread "a"));
  ignore (Sched.spawn s ~name:"b" (thread "b"));
  Sched.run s;
  Alcotest.(check string) "round robin" "a1 b1 a2 b2 a3 b3 " (Buffer.contents log)

let test_run_to_completion_without_yield () =
  let clock, engine = env () in
  let s = Sched.create_cooperative ~clock ~engine in
  let log = Buffer.create 8 in
  ignore (Sched.spawn s (fun () -> Buffer.add_string log "A"));
  ignore (Sched.spawn s (fun () -> Buffer.add_string log "B"));
  Sched.run s;
  Alcotest.(check string) "cooperative = run to yield/exit" "AB" (Buffer.contents log)

let test_sleep_orders_by_time () =
  let clock, engine = env () in
  let s = Sched.create_cooperative ~clock ~engine in
  let log = ref [] in
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep_ns 2000.0;
         log := "late" :: !log));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep_ns 500.0;
         log := "early" :: !log));
  Sched.run s;
  Alcotest.(check (list string)) "wakeup order" [ "early"; "late" ] (List.rev !log);
  Alcotest.(check bool) "clock advanced by sleeps" true (Uksim.Clock.ns clock >= 2000.0)

let test_block_wake () =
  let clock, engine = env () in
  let s = Sched.create_cooperative ~clock ~engine in
  let state = ref "init" in
  let blocked_tid = ref 0 in
  blocked_tid :=
    Sched.spawn s ~name:"blocked" (fun () ->
        state := "blocked";
        Sched.block ();
        state := "woken");
  ignore
    (Sched.spawn s ~name:"waker" (fun () ->
         Sched.yield ();
         Sched.wake s !blocked_tid));
  Sched.run s;
  Alcotest.(check string) "woken" "woken" !state

let test_deadlock_detection () =
  let clock, engine = env () in
  let s = Sched.create_cooperative ~clock ~engine in
  ignore (Sched.spawn s ~name:"stuck" (fun () -> Sched.block ()));
  match Sched.run s with
  | () -> Alcotest.fail "deadlock not detected"
  | exception Sched.Deadlock names ->
      Alcotest.(check (list string)) "stuck thread named" [ "stuck" ] names

let test_daemon_not_deadlock () =
  let clock, engine = env () in
  let s = Sched.create_cooperative ~clock ~engine in
  ignore (Sched.spawn s ~name:"service" ~daemon:true (fun () -> Sched.block ()));
  ignore (Sched.spawn s ~name:"main" (fun () -> ()));
  Sched.run s (* must return, not raise *)

let test_preemption () =
  let clock, engine = env () in
  let s = Sched.create_preemptive ~slice_cycles:100 ~clock ~engine in
  let log = ref [] in
  let worker tag () =
    for _ = 1 to 3 do
      Uksim.Clock.advance clock 120;
      Sched.checkpoint s;
      log := tag :: !log
    done
  in
  ignore (Sched.spawn s ~name:"x" (worker "x"));
  ignore (Sched.spawn s ~name:"y" (worker "y"));
  Sched.run s;
  (* With a 100-cycle slice and 120-cycle work items, every checkpoint
     preempts: strict alternation. *)
  Alcotest.(check (list string)) "alternation" [ "x"; "y"; "x"; "y"; "x"; "y" ]
    (List.rev !log)

let test_coop_checkpoint_noop () =
  let clock, engine = env () in
  let s = Sched.create_cooperative ~clock ~engine in
  let log = ref [] in
  let worker tag () =
    for _ = 1 to 2 do
      Uksim.Clock.advance clock 1000;
      Sched.checkpoint s;
      log := tag :: !log
    done
  in
  ignore (Sched.spawn s (worker "x"));
  ignore (Sched.spawn s (worker "y"));
  Sched.run s;
  Alcotest.(check (list string)) "no preemption under coop" [ "x"; "x"; "y"; "y" ]
    (List.rev !log)

let test_null_runs_inline () =
  let clock, engine = env () in
  let s = Sched.create_null ~clock ~engine in
  let ran = ref false in
  ignore
    (Sched.spawn s (fun () ->
         Sched.yield () (* no-op *);
         ran := true));
  Alcotest.(check bool) "body ran during spawn" true !ran;
  Alcotest.(check int) "no context switches" 0 (Sched.context_switches s)

let test_null_sleep_advances_clock () =
  let clock, engine = env () in
  let s = Sched.create_null ~clock ~engine in
  ignore (Sched.spawn s (fun () -> Sched.sleep_ns 1000.0));
  Alcotest.(check bool) "clock advanced" true (Uksim.Clock.ns clock >= 1000.0)

let test_null_block_fails () =
  let clock, engine = env () in
  let s = Sched.create_null ~clock ~engine in
  match Sched.spawn s ~name:"bad" (fun () -> Sched.block ()) with
  | _ -> Alcotest.fail "blocking under null scheduler must fail"
  | exception Sched.Deadlock [ "bad" ] -> ()
  | exception _ -> Alcotest.fail "wrong exception"

let test_exit_thread () =
  let clock, engine = env () in
  let s = Sched.create_cooperative ~clock ~engine in
  let log = ref [] in
  ignore
    (Sched.spawn s (fun () ->
         log := "before" :: !log;
         Sched.exit_thread () |> ignore));
  Sched.run s;
  Alcotest.(check (list string)) "code after exit unreached" [ "before" ] !log;
  Alcotest.(check int) "thread exited" 0 (Sched.alive s)

let test_self_and_names () =
  let clock, engine = env () in
  let s = Sched.create_cooperative ~clock ~engine in
  let seen = ref (-1) in
  let tid = Sched.spawn s ~name:"me" (fun () -> seen := Sched.self ()) in
  Sched.run s;
  Alcotest.(check int) "self" tid !seen;
  Alcotest.(check (option string)) "name lookup" (Some "me") (Sched.thread_name s tid)

let test_spawn_from_thread () =
  let clock, engine = env () in
  let s = Sched.create_cooperative ~clock ~engine in
  let log = ref [] in
  ignore
    (Sched.spawn s (fun () ->
         log := "parent" :: !log;
         ignore (Sched.spawn s (fun () -> log := "child" :: !log))));
  Sched.run s;
  Alcotest.(check (list string)) "child ran" [ "parent"; "child" ] (List.rev !log)

let test_many_switches_constant_stack () =
  (* The trampoline must survive a context-switch count that would blow a
     recursive scheduler's stack. *)
  let clock, engine = env () in
  let s = Sched.create_cooperative ~clock ~engine in
  let n = ref 0 in
  let worker () =
    for _ = 1 to 50_000 do
      incr n;
      Sched.yield ()
    done
  in
  ignore (Sched.spawn s worker);
  ignore (Sched.spawn s worker);
  Sched.run s;
  Alcotest.(check int) "100k yields" 100_000 !n

let suite =
  [
    Alcotest.test_case "cooperative interleaving" `Quick test_coop_interleaving;
    Alcotest.test_case "run-to-exit without yields" `Quick test_run_to_completion_without_yield;
    Alcotest.test_case "sleep ordering" `Quick test_sleep_orders_by_time;
    Alcotest.test_case "block and wake" `Quick test_block_wake;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "daemons don't deadlock" `Quick test_daemon_not_deadlock;
    Alcotest.test_case "preemptive timeslice" `Quick test_preemption;
    Alcotest.test_case "checkpoint no-op under coop" `Quick test_coop_checkpoint_noop;
    Alcotest.test_case "null scheduler inline" `Quick test_null_runs_inline;
    Alcotest.test_case "null sleep advances clock" `Quick test_null_sleep_advances_clock;
    Alcotest.test_case "null block errors" `Quick test_null_block_fails;
    Alcotest.test_case "exit_thread" `Quick test_exit_thread;
    Alcotest.test_case "self and names" `Quick test_self_and_names;
    Alcotest.test_case "spawn from thread" `Quick test_spawn_from_thread;
    Alcotest.test_case "50k context switches" `Quick test_many_switches_constant_stack;
  ]
