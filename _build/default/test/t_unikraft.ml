(* Integration tests for the unikraft core: configuration, image builds,
   VM boot, end-to-end application serving, and ukos profiles. *)

module Cfg = Unikraft.Config
module Img = Unikraft.Image
module Vm = Unikraft.Vm
module Vmm = Ukplat.Vmm
module A = Uknetstack.Addr

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let test_config_defaults () =
  let c = ok (Cfg.make ~app:"app-hello" ()) in
  Alcotest.(check string) "platform" "plat-kvm" c.Cfg.platform;
  Alcotest.(check bool) "dce on" true c.Cfg.dce;
  match Cfg.resolve c with Ok _ -> () | Error e -> Alcotest.fail e

let test_config_validation () =
  (match Cfg.make ~app:"app-nope" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown app accepted");
  (match Cfg.make ~app:"app-hello" ~platform:"plat-nope" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown platform accepted");
  match Cfg.make ~app:"app-redis" ~alloc:Cfg.Mimalloc ~sched:Cfg.None_ () with
  | Error msg ->
      Alcotest.(check bool) "mentions scheduler" true
        (String.length msg > 0 && String.lowercase_ascii msg <> "")
  | Ok _ -> Alcotest.fail "mimalloc without scheduler accepted (pthread dep)"

let test_config_kconfig_rendering () =
  let c = ok (Cfg.make ~app:"app-nginx" ~net:Cfg.Vhost_net ()) in
  let resolved = ok (Cfg.resolve c) in
  let text = Ukconf.Config.to_dotconfig resolved in
  let lines = String.split_on_char '\n' text in
  Alcotest.(check bool) "LWIP=y" true (List.mem "CONFIG_LWIP=y" lines);
  Alcotest.(check bool) "APP set" true (List.mem "CONFIG_APP=app-nginx" lines)

let test_image_specialization_sizes () =
  (* Modularity pays: hello image is a fraction of nginx's. *)
  let hello =
    ok (Img.build (ok (Cfg.make ~app:"app-hello" ~libc:Cfg.Nolibc ~sched:Cfg.None_ ())))
  in
  let nginx = ok (Img.build (ok (Cfg.make ~app:"app-nginx" ~net:Cfg.Vhost_net ()))) in
  Alcotest.(check bool) "hello much smaller" true
    (Img.size_bytes hello * 4 < Img.size_bytes nginx);
  Alcotest.(check bool) "hello excludes lwip" false (List.mem "lwip" (Img.libs hello));
  Alcotest.(check bool) "nginx includes lwip" true (List.mem "lwip" (Img.libs nginx))

let test_vm_boot_hello_all_vmms () =
  List.iter
    (fun vmm ->
      let cfg = ok (Cfg.make ~app:"app-hello" ~libc:Cfg.Nolibc ~sched:Cfg.None_ ~alloc:Cfg.Bootalloc ()) in
      let env = ok (Vm.boot ~vmm cfg) in
      let bd = env.Vm.breakdown in
      (* Fig 10: guest boot is tens-to-hundreds of microseconds; total is
         dominated by the VMM. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s guest boot < 1ms (%.1fus)" (Vmm.name vmm) (bd.Vmm.guest_ns /. 1e3))
        true (bd.Vmm.guest_ns < 1e6);
      Alcotest.(check bool) "vmm dominates" true (bd.Vmm.vmm_startup_ns > bd.Vmm.guest_ns))
    [ Vmm.Qemu; Vmm.Qemu_microvm; Vmm.Firecracker; Vmm.Solo5 ]

let test_vm_boot_requires_wire () =
  let cfg = ok (Cfg.make ~app:"app-nginx" ~net:Cfg.Vhost_net ()) in
  match Vm.boot ~vmm:Vmm.Qemu cfg with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "net without wire accepted"

let test_vm_components_match_config () =
  let cfg = ok (Cfg.make ~app:"app-sqlite" ~fs:Cfg.Ramfs ~alloc:Cfg.Buddy ()) in
  let env = ok (Vm.boot ~vmm:Vmm.Qemu cfg) in
  Alcotest.(check string) "allocator" "buddy" env.Vm.alloc.Ukalloc.Alloc.name;
  Alcotest.(check bool) "vfs mounted" true (env.Vm.vfs <> None);
  Alcotest.(check bool) "no network" true (env.Vm.dev = None);
  Alcotest.(check bool) "scheduler present" true (env.Vm.sched <> None);
  (* ukdebug boot trace points fired once per constructor. *)
  Alcotest.(check int) "boot trace points" (List.length env.Vm.report.Ukboot.Boot.phases)
    (Ukdebug.Debug.Trace.count env.Vm.debug "boot.ctor")

let test_vm_boot_allocator_order () =
  (* Fig 14: bootalloc boots fastest, buddy slowest; measured through the
     whole VM boot path with a 1GB heap as in the paper's nginx runs. *)
  let boot_ns alloc =
    let cfg = ok (Cfg.make ~app:"app-nginx" ~alloc ~mem_mb:1024 ()) in
    let env = ok (Vm.boot ~vmm:Vmm.Qemu cfg) in
    env.Vm.breakdown.Vmm.guest_ns
  in
  let boota = boot_ns Cfg.Bootalloc in
  let tlsf = boot_ns Cfg.Tlsf in
  let mim = boot_ns Cfg.Mimalloc in
  let buddy = boot_ns Cfg.Buddy in
  Alcotest.(check bool)
    (Printf.sprintf "bootalloc %.2fms <= tlsf %.2fms" (boota /. 1e6) (tlsf /. 1e6))
    true (boota <= tlsf);
  Alcotest.(check bool) "tlsf < mimalloc" true (tlsf < mim);
  Alcotest.(check bool) "mimalloc < buddy" true (mim < buddy);
  Alcotest.(check bool)
    (Printf.sprintf "buddy ~3ms (%.2fms)" (buddy /. 1e6))
    true
    (buddy > 2e6 && buddy < 6e6)

let test_vm_9pfs_mount () =
  let host_clock = Uksim.Clock.create () in
  let host = Ukvfs.Ramfs.create ~clock:host_clock () in
  (match host.Ukvfs.Fs.open_file "/greeting" ~create:true with
  | Ok h ->
      ignore (host.Ukvfs.Fs.write h ~off:0 (Bytes.of_string "hi from host"));
      host.Ukvfs.Fs.close h
  | Error _ -> Alcotest.fail "host file");
  let cfg = ok (Cfg.make ~app:"app-sqlite" ~fs:Cfg.Ninep ()) in
  let env = ok (Vm.boot ~vmm:Vmm.Qemu ~host_share:host cfg) in
  let vfs = Option.get env.Vm.vfs in
  let fd = Result.get_ok (Ukvfs.Vfs.open_file vfs "/greeting" ()) in
  (match Ukvfs.Vfs.pread vfs fd ~off:0 ~len:64 with
  | Ok data -> Alcotest.(check string) "9p read" "hi from host" (Bytes.to_string data)
  | Error _ -> Alcotest.fail "read over 9p");
  ignore (Ukvfs.Vfs.close vfs fd)

let test_vm_run_to_completion () =
  (* The paper's RPC-style scenario: no scheduler, run main inline. *)
  let cfg = ok (Cfg.make ~app:"app-hello" ~sched:Cfg.None_ ~libc:Cfg.Nolibc ()) in
  let env = ok (Vm.boot ~vmm:Vmm.Solo5 cfg) in
  let line = ref "" in
  Vm.run_main env (fun e -> line := Ukapps.Hello.main ~clock:e.Vm.clock ());
  Alcotest.(check string) "main ran inline" "Hello world!" !line

let test_end_to_end_nginx_wrk () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let wa, wb = Uknetdev.Wire.create_pair ~engine () in
  let cfg = ok (Cfg.make ~app:"app-nginx" ~net:Cfg.Vhost_net ~alloc:Cfg.Mimalloc ()) in
  let env = ok (Vm.boot ~vmm:Vmm.Qemu ~clock ~engine ~wire:wa cfg) in
  let sched = Option.get env.Vm.sched in
  let _httpd =
    Ukapps.Httpd.create ~clock ~sched ~stack:(Option.get env.Vm.stack) ~alloc:env.Vm.alloc
      (Ukapps.Httpd.In_memory [ ("/index.html", Ukapps.Httpd.default_page) ])
  in
  let cdev =
    Uknetdev.Virtio_net.create ~clock ~engine ~backend:Uknetdev.Virtio_net.Vhost_net ~wire:wb ()
  in
  let cstack =
    Uknetstack.Stack.create ~clock ~engine ~sched ~dev:cdev
      { Uknetstack.Stack.mac = A.Mac.of_int 0xc11e47; ip = A.Ipv4.of_string "172.44.0.3";
        netmask = A.Ipv4.of_string "255.255.255.0"; gateway = None }
  in
  Uknetstack.Stack.start cstack;
  let r =
    Ukapps.Wrk.run ~clock ~sched ~stack:cstack ~server:(A.Ipv4.of_string "172.44.0.2", 80)
      ~connections:8 ~requests:400 ()
  in
  Alcotest.(check int) "no errors" 0 r.Ukapps.Wrk.errors;
  Alcotest.(check int) "all requests served" 400 r.Ukapps.Wrk.requests;
  Alcotest.(check bool) "throughput sane" true (r.Ukapps.Wrk.rate_per_sec > 10_000.0)

let test_end_to_end_redis_bench () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let wa, wb = Uknetdev.Wire.create_pair ~engine () in
  let cfg = ok (Cfg.make ~app:"app-redis" ~net:Cfg.Vhost_net ~alloc:Cfg.Tlsf ()) in
  let env = ok (Vm.boot ~vmm:Vmm.Qemu ~clock ~engine ~wire:wa cfg) in
  let sched = Option.get env.Vm.sched in
  let server =
    Ukapps.Resp_store.create ~clock ~sched ~stack:(Option.get env.Vm.stack) ~alloc:env.Vm.alloc ()
  in
  let cdev =
    Uknetdev.Virtio_net.create ~clock ~engine ~backend:Uknetdev.Virtio_net.Vhost_net ~wire:wb ()
  in
  let cstack =
    Uknetstack.Stack.create ~clock ~engine ~sched ~dev:cdev
      { Uknetstack.Stack.mac = A.Mac.of_int 0xbe7c4; ip = A.Ipv4.of_string "172.44.0.3";
        netmask = A.Ipv4.of_string "255.255.255.0"; gateway = None }
  in
  Uknetstack.Stack.start cstack;
  let r =
    Ukapps.Resp_bench.run ~clock ~sched ~stack:cstack
      ~server:(A.Ipv4.of_string "172.44.0.2", 6379) ~connections:6 ~pipeline:8 ~requests:600
      Ukapps.Resp_bench.Set
  in
  Alcotest.(check int) "no errors" 0 r.Ukapps.Resp_bench.errors;
  Alcotest.(check bool) "server stored keys" true (Ukapps.Resp_store.dbsize server > 0)

let test_vm_sanitized_build () =
  (* §7: the ASAN option wraps the configured allocator. *)
  let cfg = ok (Cfg.make ~app:"app-redis" ~alloc:Cfg.Tlsf ~asan:true ()) in
  let env = ok (Vm.boot ~vmm:Vmm.Qemu cfg) in
  Alcotest.(check string) "wrapped allocator" "tlsf+asan" env.Vm.alloc.Ukalloc.Alloc.name;
  Alcotest.(check bool) "sanitizer handle exposed" true (env.Vm.asan <> None);
  let addr = Option.get (env.Vm.alloc.Ukalloc.Alloc.malloc 64) in
  env.Vm.alloc.Ukalloc.Alloc.free addr;
  match env.Vm.alloc.Ukalloc.Alloc.free addr with
  | () -> Alcotest.fail "double free not caught in sanitized build"
  | exception Ukalloc.Asan.Asan (Ukalloc.Asan.Double_free _) -> ()

let test_vm_mpk_build () =
  let cfg = ok (Cfg.make ~app:"app-hello" ~mpk:true ()) in
  let env = ok (Vm.boot ~vmm:Vmm.Qemu cfg) in
  match env.Vm.mpk with
  | None -> Alcotest.fail "mpk requested but absent"
  | Some m ->
      let key = Result.get_ok (Ukmpk.Mpk.alloc_key m ~name:"appdata" ()) in
      Ukmpk.Mpk.bind_range m key ~base:0x80000 ~len:4096;
      (match Ukmpk.Mpk.load m 0x80000 with
      | () -> Alcotest.fail "sealed compartment readable"
      | exception Ukmpk.Mpk.Protection_fault _ -> ())

(* --- ukos profiles ----------------------------------------------------------- *)

let test_profiles_anchor_boot_times () =
  (* §5.1's published baseline boot times. *)
  let boot name =
    match Ukos.Profiles.find name with
    | Some p -> Option.get p.Ukos.Profiles.boot_ns
    | None -> Alcotest.failf "missing profile %s" name
  in
  Alcotest.(check (float 1.0)) "mirage 1.5ms" 1.5e6 (boot "mirageos");
  Alcotest.(check (float 1.0)) "osv 4.5ms" 4.5e6 (boot "osv");
  Alcotest.(check (float 1.0)) "lupine 70ms" 7.0e7 (boot "lupine");
  Alcotest.(check (float 1.0)) "alpine 330ms" 3.3e8 (boot "alpine-fc");
  Alcotest.(check bool) "rump 14-15ms" true
    (boot "rump" >= 1.4e7 && boot "rump" <= 1.5e7)

let test_profiles_request_factors () =
  (* §5.3 relationships, encoded as per-request cost factors > 1. *)
  List.iter
    (fun (os, app) ->
      match Ukos.Profiles.find os with
      | None -> Alcotest.failf "missing %s" os
      | Some p -> (
          match Ukos.Profiles.request_cost_factor p ~app with
          | Some f ->
              if f <= 1.0 then Alcotest.failf "%s/%s: factor %.2f <= 1" os app f
          | None -> Alcotest.failf "%s/%s: missing factor" os app))
    [ ("linux-native", "nginx"); ("linux-vm", "redis"); ("docker", "nginx"); ("osv", "redis");
      ("lupine", "nginx") ];
  (* HermiTux does not support nginx. *)
  match Ukos.Profiles.find "hermitux" with
  | Some p ->
      Alcotest.(check (option (float 0.1))) "hermitux lacks nginx" None
        (Ukos.Profiles.request_cost_factor p ~app:"nginx")
  | None -> Alcotest.fail "hermitux profile"

let suite =
  [
    Alcotest.test_case "config defaults" `Quick test_config_defaults;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "config kconfig rendering" `Quick test_config_kconfig_rendering;
    Alcotest.test_case "image specialization (Figs 2/3)" `Quick test_image_specialization_sizes;
    Alcotest.test_case "boot on all VMMs (Fig 10)" `Quick test_vm_boot_hello_all_vmms;
    Alcotest.test_case "net requires wire" `Quick test_vm_boot_requires_wire;
    Alcotest.test_case "components match config" `Quick test_vm_components_match_config;
    Alcotest.test_case "allocator boot order (Fig 14)" `Quick test_vm_boot_allocator_order;
    Alcotest.test_case "9pfs root over virtio (Fig 20 setup)" `Quick test_vm_9pfs_mount;
    Alcotest.test_case "run-to-completion main" `Quick test_vm_run_to_completion;
    Alcotest.test_case "end-to-end: nginx + wrk" `Quick test_end_to_end_nginx_wrk;
    Alcotest.test_case "end-to-end: redis + bench" `Quick test_end_to_end_redis_bench;
    Alcotest.test_case "sanitized build (§7)" `Quick test_vm_sanitized_build;
    Alcotest.test_case "mpk build (§7)" `Quick test_vm_mpk_build;
    Alcotest.test_case "ukos boot anchors (§5.1)" `Quick test_profiles_anchor_boot_times;
    Alcotest.test_case "ukos request factors (§5.3)" `Quick test_profiles_request_factors;
  ]
