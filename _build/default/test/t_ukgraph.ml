(* Tests for the graph toolkit and the Linux kernel dataset (Fig 1). *)

module G = Ukgraph.Digraph
module LK = Ukgraph.Linux_kernel

let mk edges =
  let g = G.create () in
  List.iter (fun (a, b) -> G.add_edge g a b) edges;
  g

let test_basics () =
  let g = mk [ ("a", "b"); ("b", "c"); ("a", "c") ] in
  Alcotest.(check int) "nodes" 3 (G.n_nodes g);
  Alcotest.(check int) "edges" 3 (G.n_edges g);
  Alcotest.(check bool) "mem_edge" true (G.mem_edge g "a" "b");
  Alcotest.(check bool) "no reverse edge" false (G.mem_edge g "b" "a");
  Alcotest.(check (list string)) "succs" [ "b"; "c" ] (G.succs g "a");
  Alcotest.(check (list string)) "preds" [ "a"; "b" ] (G.preds g "c")

let test_weights () =
  let g = G.create () in
  G.add_edge ~weight:3 g "x" "y";
  G.add_edge ~weight:4 g "x" "y";
  Alcotest.(check int) "weights accumulate" 7 (G.weight g "x" "y");
  Alcotest.(check int) "total weight" 7 (G.total_weight g);
  Alcotest.(check int) "absent weight" 0 (G.weight g "y" "x")

let test_reachable () =
  let g = mk [ ("a", "b"); ("b", "c"); ("d", "e") ] in
  let r = G.reachable_set g [ "a" ] in
  Alcotest.(check (list string)) "closure of a" [ "a"; "b"; "c" ] r;
  Alcotest.(check (list string)) "unknown root" [] (G.reachable_set g [ "nope" ])

let test_topo () =
  let g = mk [ ("app", "libc"); ("libc", "kernel"); ("app", "kernel") ] in
  (match G.topo_sort g with
  | Error _ -> Alcotest.fail "acyclic graph"
  | Ok order ->
      let pos x =
        let rec go i = function
          | [] -> -1
          | y :: rest -> if String.equal x y then i else go (i + 1) rest
        in
        go 0 order
      in
      (* Dependencies (successors) come before dependents. *)
      Alcotest.(check bool) "kernel before libc" true (pos "kernel" < pos "libc");
      Alcotest.(check bool) "libc before app" true (pos "libc" < pos "app"));
  Alcotest.(check bool) "no cycle" false (G.has_cycle g)

let test_cycle_detection () =
  let g = mk [ ("a", "b"); ("b", "c"); ("c", "a") ] in
  Alcotest.(check bool) "cycle found" true (G.has_cycle g);
  match G.topo_sort g with
  | Ok _ -> Alcotest.fail "cycle must be reported"
  | Error cycle -> Alcotest.(check bool) "cycle nonempty" true (List.length cycle >= 1)

let test_transpose () =
  let g = mk [ ("a", "b") ] in
  let t = G.transpose g in
  Alcotest.(check bool) "edge reversed" true (G.mem_edge t "b" "a");
  Alcotest.(check bool) "original gone" false (G.mem_edge t "a" "b")

let test_subgraph () =
  let g = mk [ ("a", "b"); ("b", "c") ] in
  let s = G.subgraph g (fun n -> n <> "c") in
  Alcotest.(check int) "nodes filtered" 2 (G.n_nodes s);
  Alcotest.(check int) "edges filtered" 1 (G.n_edges s)

let test_dot () =
  let g = mk [ ("a", "b") ] in
  let dot = G.to_dot ~name:"test" g in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "edge present" true
    (let re = {|"a" -> "b"|} in
     let rec contains i =
       i + String.length re <= String.length dot
       && (String.sub dot i (String.length re) = re || contains (i + 1))
     in
     contains 0)

let reachability_monotone_prop =
  QCheck.Test.make ~name:"adding edges never shrinks reachability" ~count:100
    QCheck.(pair (list (pair (int_bound 8) (int_bound 8))) (pair (int_bound 8) (int_bound 8)))
    (fun (edges, (x, y)) ->
      let name i = Printf.sprintf "n%d" i in
      let g = G.create () in
      List.iter (fun (a, b) -> G.add_edge g (name a) (name b)) edges;
      G.add_node g (name x);
      let before = G.reachable_set g [ name 0 ] in
      G.add_edge g (name x) (name y);
      let after = G.reachable_set g [ name 0 ] in
      List.for_all (fun n -> List.mem n after) before)

(* --- Fig 1 dataset ------------------------------------------------------- *)

let test_linux_density () =
  (* The paper's point: the Linux component graph is dense, so removing
     any component means understanding many dependents. *)
  Alcotest.(check bool) "dense graph" true (LK.density () > 0.4);
  Alcotest.(check int) "14 components" 14 (List.length LK.components)

let test_linux_sinks () =
  (* kernel, mm and lib are universal dependencies. *)
  let g = LK.graph () in
  List.iter
    (fun sink ->
      Alcotest.(check bool)
        (Printf.sprintf "%s depended on by >= 10 components" sink)
        true
        (G.in_degree g sink >= 10))
    [ "kernel"; "lib"; "mm" ]

let test_linux_removal_impact () =
  let impact = LK.removal_impact "mm" in
  Alcotest.(check bool) "removing mm touches most of the kernel" true
    (List.length impact >= 10);
  Alcotest.(check bool) "drivers depend on mm" true (List.mem "drivers" impact)

let test_linux_counts () =
  Alcotest.(check int) "drivers->kernel dependency count" 12400
    (LK.dependency_count ~from_:"drivers" ~to_:"kernel");
  Alcotest.(check int) "absent edge" 0 (LK.dependency_count ~from_:"init" ~to_:"sound")

let suite =
  [
    Alcotest.test_case "digraph basics" `Quick test_basics;
    Alcotest.test_case "edge weights" `Quick test_weights;
    Alcotest.test_case "reachability" `Quick test_reachable;
    Alcotest.test_case "topological sort" `Quick test_topo;
    Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "subgraph" `Quick test_subgraph;
    Alcotest.test_case "dot output" `Quick test_dot;
    QCheck_alcotest.to_alcotest reachability_monotone_prop;
    Alcotest.test_case "linux graph is dense (Fig 1)" `Quick test_linux_density;
    Alcotest.test_case "linux universal sinks" `Quick test_linux_sinks;
    Alcotest.test_case "linux removal impact" `Quick test_linux_removal_impact;
    Alcotest.test_case "linux dependency counts" `Quick test_linux_counts;
  ]
