(* Tests for the ukdebug micro-library (paper §7). *)

module D = Ukdebug.Debug

let mk ?threshold ?assertions ?print_stack_bottom () =
  let clock = Uksim.Clock.create () in
  let out = ref [] in
  let t =
    D.create ~clock ?threshold ?assertions ?print_stack_bottom
      ~sink:(fun s -> out := s :: !out)
      ()
  in
  (clock, t, out)

let test_threshold_filtering () =
  let _, t, out = mk ~threshold:D.Warn () in
  D.printk t D.Crit "critical";
  D.printk t D.Warn "warning";
  D.printk t D.Info "info";
  D.printk t D.Debug "debug";
  Alcotest.(check int) "two emitted" 2 (D.messages_emitted t);
  Alcotest.(check int) "two suppressed" 2 (D.messages_suppressed t);
  Alcotest.(check (list string)) "prefixes" [ "[CRIT] critical"; "[WARN] warning" ]
    (List.rev !out)

let test_threshold_change () =
  let _, t, _ = mk ~threshold:D.Crit () in
  D.printk t D.Info "dropped";
  D.set_threshold t D.Debug;
  D.printk t D.Info "kept";
  Alcotest.(check int) "after raise" 1 (D.messages_emitted t)

let test_print_cost () =
  let clock, t, _ = mk () in
  D.printk t D.Info "x";
  Alcotest.(check bool) "console write costs cycles" true (Uksim.Clock.cycles clock > 0);
  let c = Uksim.Clock.cycles clock in
  D.printk t D.Debug "suppressed";
  Alcotest.(check int) "suppressed messages are free" c (Uksim.Clock.cycles clock)

let test_stack_bottom_annotation () =
  let _, t, out = mk ~print_stack_bottom:(Some 0x8000) () in
  D.printk t D.Info "hello";
  match !out with
  | [ line ] ->
      Alcotest.(check string) "bottom-of-stack in prefix" "[INFO @0x8000] hello" line
  | _ -> Alcotest.fail "one line"

let test_assertions () =
  let _, t, _ = mk () in
  D.uk_assert t true "fine";
  Alcotest.check_raises "failure raises" (D.Assertion_failed "boom") (fun () ->
      D.uk_assert t false "boom");
  let _, off, _ = mk ~assertions:false () in
  D.uk_assert off false "ignored";
  Alcotest.(check bool) "compiled out" false (D.assertions_enabled off)

let test_tracepoints () =
  let _, t, _ = mk () in
  D.Trace.register t "tx";
  D.Trace.register t "rx";
  D.Trace.fire t "tx" 1;
  D.Trace.fire t "rx" 2;
  D.Trace.fire t "tx" 3;
  Alcotest.(check int) "tx fired twice" 2 (D.Trace.count t "tx");
  let names = List.map (fun e -> e.D.Trace.tp_name) (D.Trace.events t) in
  Alcotest.(check (list string)) "order" [ "tx"; "rx"; "tx" ] names;
  Alcotest.check_raises "unregistered"
    (Invalid_argument "Trace.fire: unregistered trace point nope") (fun () ->
      D.Trace.fire t "nope" 0)

let test_trace_ring_overflow () =
  let _, t, _ = mk () in
  D.Trace.register t "e";
  for i = 1 to 300 do
    D.Trace.fire t "e" i
  done;
  let evs = D.Trace.events t in
  Alcotest.(check int) "capped at ring size" 256 (List.length evs);
  Alcotest.(check int) "total count kept" 300 (D.Trace.count t "e");
  (match evs with
  | first :: _ -> Alcotest.(check int) "oldest surviving event" 45 first.D.Trace.arg
  | [] -> Alcotest.fail "events");
  D.Trace.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (D.Trace.events t))

let test_disassembler () =
  let _, t, _ = mk () in
  (match D.Disasm.disassemble t ~arch:"x86_64" [ 0x90 lsl 24 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "no plugin yet");
  D.Disasm.register t D.Disasm.zydis_like;
  match D.Disasm.disassemble t ~arch:"x86_64" [ 0x90 lsl 24; 0xc3 lsl 24; (0x0f lsl 24) lor 41 ] with
  | Ok [ "nop"; "ret"; "syscall ; nr=41" ] -> ()
  | Ok l -> Alcotest.failf "unexpected: %s" (String.concat "|" l)
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "threshold filtering" `Quick test_threshold_filtering;
    Alcotest.test_case "threshold change" `Quick test_threshold_change;
    Alcotest.test_case "print cost accounting" `Quick test_print_cost;
    Alcotest.test_case "stack-bottom annotation" `Quick test_stack_bottom_annotation;
    Alcotest.test_case "assertions" `Quick test_assertions;
    Alcotest.test_case "trace points" `Quick test_tracepoints;
    Alcotest.test_case "trace ring overflow" `Quick test_trace_ring_overflow;
    Alcotest.test_case "disassembler plug-in" `Quick test_disassembler;
  ]
