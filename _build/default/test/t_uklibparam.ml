(* Tests for uklibparam and its Vm.boot integration. *)

module P = Uklibparam.Libparam

let mk () =
  let t = P.create () in
  P.register t ~lib:"netdev" ~name:"ip" ~doc:"address" (P.String "172.44.0.2");
  P.register t ~lib:"ukalloc" ~name:"heap" ~doc:"heap size" (P.Int (32 * 1024 * 1024));
  P.register t ~lib:"lwip" ~name:"dhcp" ~doc:"use dhcp" (P.Bool false);
  t

let test_defaults () =
  let t = mk () in
  Alcotest.(check (option string)) "string default" (Some "172.44.0.2")
    (P.get_string t ~lib:"netdev" ~name:"ip");
  Alcotest.(check (option int)) "int default" (Some (32 * 1024 * 1024))
    (P.get_int t ~lib:"ukalloc" ~name:"heap");
  Alcotest.(check (option bool)) "unknown param" None (P.get_bool t ~lib:"x" ~name:"y")

let test_parse_assignments () =
  let t = mk () in
  match P.parse t "netdev.ip=10.1.1.1 ukalloc.heap=64M lwip.dhcp=on" with
  | Error e -> Alcotest.fail e
  | Ok argv ->
      Alcotest.(check (list string)) "no argv" [] argv;
      Alcotest.(check (option string)) "ip set" (Some "10.1.1.1")
        (P.get_string t ~lib:"netdev" ~name:"ip");
      Alcotest.(check (option int)) "size suffix" (Some (64 * 1024 * 1024))
        (P.get_int t ~lib:"ukalloc" ~name:"heap");
      Alcotest.(check (option bool)) "bool on" (Some true)
        (P.get_bool t ~lib:"lwip" ~name:"dhcp")

let test_argv_split () =
  let t = mk () in
  match P.parse t "ukalloc.heap=16K -- serve --port 8080" with
  | Error e -> Alcotest.fail e
  | Ok argv -> Alcotest.(check (list string)) "app argv" [ "serve"; "--port"; "8080" ] argv

let test_parse_errors () =
  let t = mk () in
  List.iter
    (fun bad ->
      match P.parse t bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted: %s" bad)
    [ "nodot=1"; "netdev.nope=1"; "ukalloc.heap=abc"; "lwip.dhcp=maybe"; "netdev.ip" ]

let test_duplicate_registration () =
  let t = mk () in
  Alcotest.check_raises "duplicate" (Invalid_argument "Libparam.register: duplicate netdev.ip")
    (fun () -> P.register t ~lib:"netdev" ~name:"ip" (P.String "x"))

let test_usage_lists_params () =
  let t = mk () in
  let u = P.usage t in
  Alcotest.(check bool) "mentions params" true
    (Astring_contains.contains u "netdev.ip" && Astring_contains.contains u "ukalloc.heap")

let test_vm_cmdline_overrides () =
  (* End to end: the boot command line reconfigures the interface and the
     log level, and passes argv through. *)
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let wa, _ = Uknetdev.Wire.create_pair ~engine () in
  let cfg =
    Result.get_ok (Unikraft.Config.make ~app:"app-nginx" ~net:Unikraft.Config.Vhost_net ())
  in
  match
    Unikraft.Vm.boot ~vmm:Ukplat.Vmm.Qemu ~clock ~engine ~wire:wa
      ~cmdline:"netdev.ip=10.7.7.7 ukdebug.loglevel=0 -- -c /etc/nginx.conf" cfg
  with
  | Error e -> Alcotest.fail e
  | Ok env ->
      let stack = Option.get env.Unikraft.Vm.stack in
      Alcotest.(check string) "interface reconfigured" "10.7.7.7"
        (Uknetstack.Addr.Ipv4.to_string (Uknetstack.Stack.conf stack).Uknetstack.Stack.ip);
      Alcotest.(check (list string)) "argv passed through" [ "-c"; "/etc/nginx.conf" ]
        env.Unikraft.Vm.argv;
      Alcotest.(check bool) "loglevel applied" true
        (Ukdebug.Debug.threshold env.Unikraft.Vm.debug = Ukdebug.Debug.Crit)

let test_vm_bad_cmdline () =
  let cfg = Result.get_ok (Unikraft.Config.make ~app:"app-hello" ()) in
  match Unikraft.Vm.boot ~vmm:Ukplat.Vmm.Qemu ~cmdline:"bogus.param=1" cfg with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown parameter accepted"

let suite =
  [
    Alcotest.test_case "defaults" `Quick test_defaults;
    Alcotest.test_case "parse assignments" `Quick test_parse_assignments;
    Alcotest.test_case "argv split" `Quick test_argv_split;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "duplicate registration" `Quick test_duplicate_registration;
    Alcotest.test_case "usage text" `Quick test_usage_lists_params;
    Alcotest.test_case "vm: cmdline overrides" `Quick test_vm_cmdline_overrides;
    Alcotest.test_case "vm: bad cmdline rejected" `Quick test_vm_bad_cmdline;
  ]
