(* Tests for uklock: mutexes, semaphores, condition variables, in both
   compiled-out and threaded modes. *)

open Uklock

let env () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  Uksched.Sched.create_cooperative ~clock ~engine

let test_nop_mutex () =
  let m = Lock.Mutex.create Lock.Compiled_out in
  Lock.Mutex.lock m;
  Alcotest.(check bool) "nop mutex never reports locked" false (Lock.Mutex.locked m);
  Lock.Mutex.unlock m;
  Alcotest.(check bool) "try_lock always true" true (Lock.Mutex.try_lock m)

let test_mutex_exclusion () =
  let s = env () in
  let m = Lock.Mutex.create (Lock.Threaded s) in
  let in_critical = ref 0 in
  let max_seen = ref 0 in
  let worker () =
    for _ = 1 to 5 do
      Lock.Mutex.lock m;
      incr in_critical;
      max_seen := max !max_seen !in_critical;
      Uksched.Sched.yield ();
      decr in_critical;
      Lock.Mutex.unlock m
    done
  in
  ignore (Uksched.Sched.spawn s worker);
  ignore (Uksched.Sched.spawn s worker);
  Uksched.Sched.run s;
  Alcotest.(check int) "never two holders" 1 !max_seen

let test_mutex_fifo_handoff () =
  let s = env () in
  let m = Lock.Mutex.create (Lock.Threaded s) in
  let order = ref [] in
  ignore
    (Uksched.Sched.spawn s ~name:"holder" (fun () ->
         Lock.Mutex.lock m;
         Uksched.Sched.yield ();
         Uksched.Sched.yield ();
         Lock.Mutex.unlock m));
  let contender tag =
    ignore
      (Uksched.Sched.spawn s ~name:tag (fun () ->
           Lock.Mutex.lock m;
           order := tag :: !order;
           Lock.Mutex.unlock m))
  in
  contender "first";
  contender "second";
  Uksched.Sched.run s;
  Alcotest.(check (list string)) "handoff order" [ "first"; "second" ] (List.rev !order)

let test_mutex_unlock_free () =
  let s = env () in
  let m = Lock.Mutex.create (Lock.Threaded s) in
  Alcotest.check_raises "unlock of free mutex" (Invalid_argument "Lock.Mutex.unlock: not locked")
    (fun () -> Lock.Mutex.unlock m)

let test_with_lock_exception_safe () =
  let s = env () in
  let m = Lock.Mutex.create (Lock.Threaded s) in
  ignore
    (Uksched.Sched.spawn s (fun () ->
         (try Lock.Mutex.with_lock m (fun () -> failwith "boom") with Failure _ -> ());
         Alcotest.(check bool) "released after exception" false (Lock.Mutex.locked m)));
  Uksched.Sched.run s

let test_try_lock () =
  let s = env () in
  let m = Lock.Mutex.create (Lock.Threaded s) in
  ignore
    (Uksched.Sched.spawn s (fun () ->
         Alcotest.(check bool) "first try succeeds" true (Lock.Mutex.try_lock m);
         Alcotest.(check bool) "second try fails" false (Lock.Mutex.try_lock m);
         Lock.Mutex.unlock m));
  Uksched.Sched.run s

let test_semaphore_counting () =
  let s = env () in
  let sem = Lock.Semaphore.create (Lock.Threaded s) 2 in
  let active = ref 0 and peak = ref 0 in
  let worker () =
    Lock.Semaphore.wait sem;
    incr active;
    peak := max !peak !active;
    Uksched.Sched.yield ();
    decr active;
    Lock.Semaphore.signal sem
  in
  for _ = 1 to 5 do
    ignore (Uksched.Sched.spawn s worker)
  done;
  Uksched.Sched.run s;
  Alcotest.(check bool) "at most two concurrent" true (!peak <= 2);
  Alcotest.(check int) "count restored" 2 (Lock.Semaphore.count sem)

let test_semaphore_try () =
  let s = env () in
  let sem = Lock.Semaphore.create (Lock.Threaded s) 1 in
  Alcotest.(check bool) "try succeeds" true (Lock.Semaphore.try_wait sem);
  Alcotest.(check bool) "try fails at zero" false (Lock.Semaphore.try_wait sem);
  Lock.Semaphore.signal sem;
  Alcotest.(check int) "count back to one" 1 (Lock.Semaphore.count sem)

let test_semaphore_negative () =
  Alcotest.check_raises "negative initial count"
    (Invalid_argument "Lock.Semaphore.create: negative count") (fun () ->
      ignore (Lock.Semaphore.create Lock.Compiled_out (-1)))

let test_condvar_signal () =
  let s = env () in
  let m = Lock.Mutex.create (Lock.Threaded s) in
  let cv = Lock.Condvar.create (Lock.Threaded s) in
  let ready = ref false in
  let observed = ref false in
  ignore
    (Uksched.Sched.spawn s ~name:"waiter" (fun () ->
         Lock.Mutex.lock m;
         while not !ready do
           Lock.Condvar.wait cv m
         done;
         observed := true;
         Lock.Mutex.unlock m));
  ignore
    (Uksched.Sched.spawn s ~name:"signaller" (fun () ->
         Lock.Mutex.lock m;
         ready := true;
         Lock.Condvar.signal cv;
         Lock.Mutex.unlock m));
  Uksched.Sched.run s;
  Alcotest.(check bool) "condition observed" true !observed

let test_condvar_broadcast () =
  let s = env () in
  let m = Lock.Mutex.create (Lock.Threaded s) in
  let cv = Lock.Condvar.create (Lock.Threaded s) in
  let released = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Uksched.Sched.spawn s (fun () ->
           Lock.Mutex.lock m;
           Lock.Condvar.wait cv m;
           incr released;
           Lock.Mutex.unlock m))
  done;
  ignore
    (Uksched.Sched.spawn s (fun () ->
         Uksched.Sched.yield ();
         Lock.Mutex.lock m;
         Lock.Condvar.broadcast cv;
         Lock.Mutex.unlock m));
  Uksched.Sched.run s;
  Alcotest.(check int) "all waiters released" 3 !released

let suite =
  [
    Alcotest.test_case "compiled-out mutex" `Quick test_nop_mutex;
    Alcotest.test_case "mutual exclusion" `Quick test_mutex_exclusion;
    Alcotest.test_case "FIFO handoff" `Quick test_mutex_fifo_handoff;
    Alcotest.test_case "unlock of free mutex" `Quick test_mutex_unlock_free;
    Alcotest.test_case "with_lock exception safety" `Quick test_with_lock_exception_safe;
    Alcotest.test_case "try_lock" `Quick test_try_lock;
    Alcotest.test_case "counting semaphore" `Quick test_semaphore_counting;
    Alcotest.test_case "semaphore try_wait" `Quick test_semaphore_try;
    Alcotest.test_case "semaphore validation" `Quick test_semaphore_negative;
    Alcotest.test_case "condvar signal" `Quick test_condvar_signal;
    Alcotest.test_case "condvar broadcast" `Quick test_condvar_broadcast;
  ]
