(* Tests for the DNS codec and authoritative server. *)

module Dns = Ukapps.Dns
module A = Uknetstack.Addr
module S = Uknetstack.Stack

let test_query_roundtrip () =
  let q = Dns.query ~id:77 "www.Example.COM" Dns.A in
  match Dns.decode (Dns.encode q) with
  | Error e -> Alcotest.fail e
  | Ok m ->
      Alcotest.(check int) "id" 77 m.Dns.id;
      Alcotest.(check bool) "query flag" true m.Dns.query;
      (match m.Dns.questions with
      | [ { qname; qtype = Dns.A } ] ->
          Alcotest.(check string) "normalized name" "www.example.com" qname
      | _ -> Alcotest.fail "question")

let test_response_roundtrip () =
  let m =
    {
      Dns.id = 42;
      query = false;
      rcode = Dns.No_error;
      recursion_desired = true;
      questions = [ { Dns.qname = "a.example.org"; qtype = Dns.A } ];
      answers =
        [
          { Dns.name = "a.example.org"; rtype = Dns.Cname; ttl = 60;
            rdata = Dns.Name "b.example.org" };
          { Dns.name = "b.example.org"; rtype = Dns.A; ttl = 300;
            rdata = Dns.Ipv4_addr (A.Ipv4.of_string "192.0.2.7") };
          { Dns.name = "b.example.org"; rtype = Dns.Txt; ttl = 300; rdata = Dns.Text "hello" };
        ];
      authority =
        [ { Dns.name = "example.org"; rtype = Dns.Ns; ttl = 3600; rdata = Dns.Name "ns1.example.org" } ];
    }
  in
  match Dns.decode (Dns.encode m) with
  | Error e -> Alcotest.fail e
  | Ok got ->
      Alcotest.(check int) "answer count" 3 (List.length got.Dns.answers);
      Alcotest.(check int) "authority count" 1 (List.length got.Dns.authority);
      (match got.Dns.answers with
      | [ { rdata = Dns.Name cname; _ }; { rdata = Dns.Ipv4_addr ip; _ };
          { rdata = Dns.Text txt; _ } ] ->
          Alcotest.(check string) "cname" "b.example.org" cname;
          Alcotest.(check string) "A" "192.0.2.7" (A.Ipv4.to_string ip);
          Alcotest.(check string) "txt" "hello" txt
      | _ -> Alcotest.fail "answers")

let test_compression_actually_compresses () =
  (* Shared suffixes are emitted once; an uncompressed encoding of the
     same records would be much larger. *)
  let answers =
    List.init 10 (fun i ->
        { Dns.name = Printf.sprintf "h%d.verylongzonename.example.com" i; rtype = Dns.A;
          ttl = 60; rdata = Dns.Ipv4_addr (A.Ipv4.of_int (0x0a000000 + i)) })
  in
  let m =
    { Dns.id = 1; query = false; rcode = Dns.No_error; recursion_desired = false;
      questions = []; answers; authority = [] }
  in
  let encoded = Dns.encode m in
  (* 10 names share ".verylongzonename.example.com" (29 bytes + labels):
     without compression this alone is ~300 bytes. *)
  Alcotest.(check bool)
    (Printf.sprintf "compressed to %d bytes" (Bytes.length encoded))
    true
    (Bytes.length encoded < 260);
  match Dns.decode encoded with
  | Ok got -> Alcotest.(check int) "all names recovered" 10 (List.length got.Dns.answers)
  | Error e -> Alcotest.fail e

let test_malformed_rejected () =
  List.iter
    (fun raw ->
      match Dns.decode (Bytes.of_string raw) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "malformed packet accepted")
    [
      "";
      "\x00\x01";
      (* header claiming one question but no body *)
      "\x00\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00";
    ]

let test_compression_loop_rejected () =
  (* A name whose compression pointer points at itself. *)
  let b = Bytes.make 16 '\000' in
  Bytes.set b 5 '\x00';
  Bytes.set b 4 '\x01' (* qdcount = 1 *);
  Bytes.set b 12 '\xc0';
  Bytes.set b 13 '\x0c' (* pointer to itself at offset 12 *);
  match Dns.decode b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "self-pointing compression accepted"

let dns_roundtrip_prop =
  let label_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 12)) in
  let name_gen =
    QCheck.Gen.(map (String.concat ".") (list_size (int_range 1 4) label_gen))
  in
  QCheck.Test.make ~name:"dns: random A-record zones roundtrip" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 0 8) (pair name_gen (int_bound 0xffffff))))
    (fun records ->
      let m =
        {
          Dns.id = 7;
          query = false;
          rcode = Dns.No_error;
          recursion_desired = false;
          questions = [ { Dns.qname = "q.example"; qtype = Dns.A } ];
          answers =
            List.map
              (fun (name, ip) ->
                { Dns.name; rtype = Dns.A; ttl = 60; rdata = Dns.Ipv4_addr (A.Ipv4.of_int ip) })
              records;
          authority = [];
        }
      in
      match Dns.decode (Dns.encode m) with
      | Error _ -> false
      | Ok got ->
          List.length got.Dns.answers = List.length records
          && List.for_all2
               (fun (name, ip) (r : Dns.rr) ->
                 r.Dns.name = name
                 && match r.Dns.rdata with Dns.Ipv4_addr a -> A.Ipv4.to_int a = ip | _ -> false)
               records got.Dns.answers)

(* --- server ------------------------------------------------------------------ *)

let mk_server () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  let da, db = Uknetdev.Loopback.create_pair ~clock ~engine () in
  let mk dev ip mac =
    let s =
      S.create ~clock ~engine ~sched ~dev
        { S.mac = A.Mac.of_int mac; ip = A.Ipv4.of_string ip;
          netmask = A.Ipv4.of_string "255.255.255.0"; gateway = None }
    in
    S.start s;
    s
  in
  let sstack = mk da "10.0.0.1" 0x1 in
  let cstack = mk db "10.0.0.2" 0x2 in
  let srv = Dns.Server.create ~clock ~sched ~stack:sstack () in
  (clock, sched, cstack, srv)

let test_server_resolve_pure () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  let da, _ = Uknetdev.Loopback.create_pair ~clock ~engine () in
  let stack =
    S.create ~clock ~engine ~sched ~dev:da
      { S.mac = A.Mac.of_int 1; ip = A.Ipv4.of_string "10.0.0.1";
        netmask = A.Ipv4.of_string "255.255.255.0"; gateway = None }
  in
  let srv = Dns.Server.create ~clock ~sched ~stack () in
  Dns.Server.add_a srv ~name:"web.uk.test" "10.9.0.1";
  Dns.Server.add_record srv ~name:"alias.uk.test"
    { Dns.name = "alias.uk.test"; rtype = Dns.Cname; ttl = 60; rdata = Dns.Name "web.uk.test" };
  (* Direct hit. *)
  (match Dns.Server.resolve srv (Dns.query "WEB.uk.test" Dns.A) with
  | { Dns.rcode = Dns.No_error; answers = [ { rdata = Dns.Ipv4_addr ip; _ } ]; _ } ->
      Alcotest.(check string) "A answer" "10.9.0.1" (A.Ipv4.to_string ip)
  | _ -> Alcotest.fail "direct resolution");
  (* CNAME chase yields both records. *)
  (match Dns.Server.resolve srv (Dns.query "alias.uk.test" Dns.A) with
  | { Dns.rcode = Dns.No_error; answers; _ } ->
      Alcotest.(check int) "cname + a" 2 (List.length answers)
  | _ -> Alcotest.fail "cname resolution");
  (* Miss. *)
  (match Dns.Server.resolve srv (Dns.query "nope.uk.test" Dns.A) with
  | { Dns.rcode = Dns.Nx_domain; answers = []; _ } -> ()
  | _ -> Alcotest.fail "nxdomain");
  Alcotest.(check int) "nx counted" 1 (Dns.Server.nxdomain_count srv)

let test_server_over_network () =
  let clock, sched, cstack, srv = mk_server () in
  Dns.Server.add_a srv ~name:"db.uk.test" "10.9.0.42";
  let got = ref None in
  ignore
    (Uksched.Sched.spawn sched ~name:"resolver" (fun () ->
         got :=
           Some (Dns.Client.lookup ~clock ~stack:cstack ~server:(A.Ipv4.of_string "10.0.0.1")
                   "db.uk.test")));
  Uksched.Sched.run sched;
  match !got with
  | Some (Ok { Dns.answers = [ { rdata = Dns.Ipv4_addr ip; _ } ]; _ }) ->
      Alcotest.(check string) "resolved over UDP" "10.9.0.42" (A.Ipv4.to_string ip);
      Alcotest.(check int) "served" 1 (Dns.Server.queries_served srv)
  | Some (Ok _) -> Alcotest.fail "wrong answer shape"
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "no result"

let test_server_formerr_over_network () =
  let _, sched, cstack, _srv = mk_server () in
  let rcode = ref None in
  ignore
    (Uksched.Sched.spawn sched ~name:"fuzzer" (fun () ->
         let sock = S.Udp_socket.bind cstack ~port:9999 in
         S.Udp_socket.sendto sock ~dst:(A.Ipv4.of_string "10.0.0.1", 53)
           (Bytes.of_string "\x12\x34garbage");
         match S.Udp_socket.recvfrom ~block:true sock with
         | Some (_, _, payload) -> (
             match Dns.decode payload with
             | Ok m -> rcode := Some m.Dns.rcode
             | Error e -> Alcotest.fail e)
         | None -> ()));
  Uksched.Sched.run sched;
  match !rcode with
  | Some Dns.Form_err -> ()
  | _ -> Alcotest.fail "expected FORMERR reply"

let suite =
  [
    Alcotest.test_case "query roundtrip" `Quick test_query_roundtrip;
    Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
    Alcotest.test_case "name compression" `Quick test_compression_actually_compresses;
    Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
    Alcotest.test_case "compression loop rejected" `Quick test_compression_loop_rejected;
    QCheck_alcotest.to_alcotest dns_roundtrip_prop;
    Alcotest.test_case "server: pure resolution" `Quick test_server_resolve_pure;
    Alcotest.test_case "server: lookup over UDP" `Quick test_server_over_network;
    Alcotest.test_case "server: FORMERR for garbage" `Quick test_server_formerr_over_network;
  ]
