test/t_uksyscall.ml: Alcotest Int List Option Set Uksim Uksyscall
