test/t_unikraft.ml: Alcotest Bytes List Option Printf Result String Ukalloc Ukapps Ukboot Ukconf Ukdebug Ukmpk Uknetdev Uknetstack Ukos Ukplat Uksim Ukvfs Unikraft
