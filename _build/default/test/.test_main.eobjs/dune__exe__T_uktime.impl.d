test/t_uktime.ml: Alcotest List QCheck QCheck_alcotest Uktime
