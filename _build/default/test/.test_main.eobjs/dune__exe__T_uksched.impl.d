test/t_uksched.ml: Alcotest Buffer List Printf Sched Uksched Uksim
