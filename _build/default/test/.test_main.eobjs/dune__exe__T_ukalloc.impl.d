test/t_ukalloc.ml: Alcotest Alloc Array Bootalloc Buddy Checked List Mimalloc Option Oscar Printf QCheck QCheck_alcotest Tinyalloc Tlsf Ukalloc Uksim
