test/t_ukring.ml: Alcotest Array Fun List QCheck QCheck_alcotest Queue Ukring
