test/t_ukmmu.ml: Alcotest List Option Printf Ukboot Ukmmu Ukplat Uksim
