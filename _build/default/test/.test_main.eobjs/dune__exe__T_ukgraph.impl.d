test/t_ukgraph.ml: Alcotest List Printf QCheck QCheck_alcotest String Ukgraph
