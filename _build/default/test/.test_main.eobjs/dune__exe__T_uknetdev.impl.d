test/t_uknetdev.ml: Alcotest Array Bytes Gen List Option Printf QCheck QCheck_alcotest Ukalloc Uknetdev Uksim
