test/t_ukconf.ml: Alcotest List QCheck QCheck_alcotest String Ukconf
