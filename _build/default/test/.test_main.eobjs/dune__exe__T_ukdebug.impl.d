test/t_ukdebug.ml: Alcotest List String Ukdebug Uksim
