test/t_uklibparam.ml: Alcotest Astring_contains List Option Result Ukdebug Uklibparam Uknetdev Uknetstack Ukplat Uksim Unikraft
