test/t_uksim.ml: Alcotest Clock Cost Engine Float Fmt Heapq List QCheck QCheck_alcotest Rng Stats Uksim Units
