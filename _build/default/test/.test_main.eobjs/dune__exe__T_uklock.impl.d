test/t_uklock.ml: Alcotest List Lock Uklock Uksched Uksim
