test/t_ukvfs.ml: Alcotest Bytes Gen List Printf QCheck QCheck_alcotest Result String Uksim Ukvfs
