test/t_ukblock.ml: Alcotest Array Buffer Bytes Char List Printf QCheck QCheck_alcotest Ukblock Uknetdev Uknetstack Uksched Uksim
