test/t_ukapps.ml: Alcotest Bytes List Map Option Printf QCheck QCheck_alcotest String Ukalloc Ukapps Uknetdev Uknetstack Uksched Uksim Ukvfs
