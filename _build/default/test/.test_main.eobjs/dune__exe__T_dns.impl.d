test/t_dns.ml: Alcotest Bytes List Printf QCheck QCheck_alcotest String Ukapps Uknetdev Uknetstack Uksched Uksim
