test/t_uknetstack.ml: Alcotest Array Buffer Bytes Char Gen List Option Printf QCheck QCheck_alcotest Uknetdev Uknetstack Uksched Uksim
