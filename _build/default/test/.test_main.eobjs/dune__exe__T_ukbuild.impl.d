test/t_ukbuild.ml: Alcotest List Printf Ukbuild Ukgraph
