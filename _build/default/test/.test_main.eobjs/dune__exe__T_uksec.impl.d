test/t_uksec.ml: Alcotest List Option Printf QCheck QCheck_alcotest Result Ukalloc Ukdebug Ukmpk Uksim Uksyscall
