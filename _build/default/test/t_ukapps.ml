(* Tests for the application layer: RESP codec/store, B-tree, SQL engine,
   HTTP server pieces, webcache, UDP KV store. *)

module Resp = Ukapps.Resp
module Btree = Ukapps.Btree
module Sql = Ukapps.Sql
module Sqldb = Ukapps.Sqldb

let clock () = Uksim.Clock.create ()

let tlsf () =
  Ukalloc.Tlsf.create ~clock:(clock ()) ~base:(1 lsl 24) ~len:(1 lsl 24)

(* --- RESP ------------------------------------------------------------------ *)

let test_resp_encode () =
  Alcotest.(check string) "simple" "+OK\r\n" (Resp.encode (Resp.Simple "OK"));
  Alcotest.(check string) "bulk" "$3\r\nfoo\r\n" (Resp.encode (Resp.Bulk "foo"));
  Alcotest.(check string) "null" "$-1\r\n" (Resp.encode Resp.Null);
  Alcotest.(check string) "integer" ":42\r\n" (Resp.encode (Resp.Integer 42));
  Alcotest.(check string) "command" "*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"
    (Resp.encode_command [ "GET"; "k" ])

let test_resp_incremental_parse () =
  let p = Resp.Parser.create () in
  let whole = Resp.encode_command [ "SET"; "key"; "value" ] in
  let half = String.length whole / 2 in
  Resp.Parser.feed p (Bytes.of_string (String.sub whole 0 half));
  (match Resp.Parser.next p with
  | Ok None -> ()
  | _ -> Alcotest.fail "incomplete must yield None");
  Resp.Parser.feed p (Bytes.of_string (String.sub whole half (String.length whole - half)));
  match Resp.Parser.next p with
  | Ok (Some (Resp.Array [ Resp.Bulk "SET"; Resp.Bulk "key"; Resp.Bulk "value" ])) -> ()
  | _ -> Alcotest.fail "parse after completion"

let test_resp_pipeline_parse () =
  let p = Resp.Parser.create () in
  let three = Resp.encode_command [ "PING" ] ^ Resp.encode (Resp.Integer 7) ^ Resp.encode Resp.Null in
  Resp.Parser.feed p (Bytes.of_string three);
  let take () = match Resp.Parser.next p with Ok (Some v) -> v | _ -> Alcotest.fail "value" in
  (match take () with Resp.Array _ -> () | _ -> Alcotest.fail "first");
  (match take () with Resp.Integer 7 -> () | _ -> Alcotest.fail "second");
  (match take () with Resp.Null -> () | _ -> Alcotest.fail "third");
  match Resp.Parser.next p with Ok None -> () | _ -> Alcotest.fail "drained"

let test_resp_protocol_error () =
  let p = Resp.Parser.create () in
  Resp.Parser.feed p (Bytes.of_string "!bogus\r\n");
  match Resp.Parser.next p with Error _ -> () | Ok _ -> Alcotest.fail "bad type byte accepted"

let resp_roundtrip_prop =
  let value_gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          let base =
            oneof
              [
                map (fun s -> Resp.Simple s) (string_size ~gen:(char_range 'a' 'z') (return 5));
                map (fun s -> Resp.Bulk s) (string_size (int_bound 30));
                map (fun i -> Resp.Integer i) int;
                return Resp.Null;
              ]
          in
          if n = 0 then base
          else oneof [ base; map (fun l -> Resp.Array l) (list_size (int_bound 4) (self (n / 2))) ]))
  in
  QCheck.Test.make ~name:"resp values roundtrip through the parser" ~count:200
    (QCheck.make value_gen) (fun v ->
      let p = Resp.Parser.create () in
      Resp.Parser.feed p (Bytes.of_string (Resp.encode v));
      match Resp.Parser.next p with Ok (Some got) -> got = v | _ -> false)

(* --- Resp_store semantics (direct execution) -------------------------------- *)

let mk_store () =
  let c = clock () in
  let engine = Uksim.Engine.create c in
  let sched = Uksched.Sched.create_cooperative ~clock:c ~engine in
  let da, _ = Uknetdev.Loopback.create_pair ~clock:c ~engine () in
  let stack =
    Uknetstack.Stack.create ~clock:c ~engine ~sched ~dev:da
      {
        Uknetstack.Stack.mac = Uknetstack.Addr.Mac.of_int 1;
        ip = Uknetstack.Addr.Ipv4.of_string "10.0.0.1";
        netmask = Uknetstack.Addr.Ipv4.of_string "255.255.255.0";
        gateway = None;
      }
  in
  let alloc = Ukalloc.Tlsf.create ~clock:c ~base:(1 lsl 24) ~len:(1 lsl 24) in
  Ukapps.Resp_store.create ~clock:c ~sched ~stack ~alloc ()

let test_store_set_get () =
  let s = mk_store () in
  Alcotest.(check bool) "set" true
    (Ukapps.Resp_store.execute s [ "SET"; "k"; "v" ] = Resp.Simple "OK");
  Alcotest.(check bool) "get" true (Ukapps.Resp_store.execute s [ "GET"; "k" ] = Resp.Bulk "v");
  Alcotest.(check bool) "miss" true (Ukapps.Resp_store.execute s [ "GET"; "nope" ] = Resp.Null);
  Alcotest.(check bool) "del" true (Ukapps.Resp_store.execute s [ "DEL"; "k" ] = Resp.Integer 1);
  Alcotest.(check bool) "get after del" true
    (Ukapps.Resp_store.execute s [ "GET"; "k" ] = Resp.Null)

let test_store_incr () =
  let s = mk_store () in
  Alcotest.(check bool) "incr from zero" true
    (Ukapps.Resp_store.execute s [ "INCR"; "n" ] = Resp.Integer 1);
  Alcotest.(check bool) "incr again" true
    (Ukapps.Resp_store.execute s [ "INCR"; "n" ] = Resp.Integer 2);
  ignore (Ukapps.Resp_store.execute s [ "SET"; "s"; "abc" ]);
  match Ukapps.Resp_store.execute s [ "INCR"; "s" ] with
  | Resp.Error _ -> ()
  | _ -> Alcotest.fail "INCR of non-integer must error"

let test_store_lists_and_admin () =
  let s = mk_store () in
  Alcotest.(check bool) "lpush" true
    (Ukapps.Resp_store.execute s [ "LPUSH"; "l"; "a"; "b" ] = Resp.Integer 2);
  (match Ukapps.Resp_store.execute s [ "LRANGE"; "l"; "0"; "-1" ] with
  | Resp.Array [ Resp.Bulk "b"; Resp.Bulk "a" ] -> ()
  | _ -> Alcotest.fail "lrange");
  ignore (Ukapps.Resp_store.execute s [ "SET"; "x"; "1" ]);
  Alcotest.(check bool) "dbsize" true
    (Ukapps.Resp_store.execute s [ "DBSIZE" ] = Resp.Integer 1);
  ignore (Ukapps.Resp_store.execute s [ "FLUSHALL" ]);
  Alcotest.(check int) "flushed" 0 (Ukapps.Resp_store.dbsize s);
  match Ukapps.Resp_store.execute s [ "NOPE" ] with
  | Resp.Error _ -> ()
  | _ -> Alcotest.fail "unknown command"

let test_store_allocator_accounting () =
  let c = clock () in
  let engine = Uksim.Engine.create c in
  let sched = Uksched.Sched.create_cooperative ~clock:c ~engine in
  let da, _ = Uknetdev.Loopback.create_pair ~clock:c ~engine () in
  let stack =
    Uknetstack.Stack.create ~clock:c ~engine ~sched ~dev:da
      { Uknetstack.Stack.mac = Uknetstack.Addr.Mac.of_int 1;
        ip = Uknetstack.Addr.Ipv4.of_string "10.0.0.1";
        netmask = Uknetstack.Addr.Ipv4.of_string "255.255.255.0"; gateway = None }
  in
  let alloc = Ukalloc.Tlsf.create ~clock:c ~base:(1 lsl 24) ~len:(1 lsl 24) in
  let s = Ukapps.Resp_store.create ~clock:c ~sched ~stack ~alloc () in
  ignore (Ukapps.Resp_store.execute s [ "SET"; "k"; "hello" ]);
  let live = (alloc.Ukalloc.Alloc.stats ()).Ukalloc.Alloc.bytes_in_use in
  Alcotest.(check bool) "value lives in ukalloc memory" true (live > 0);
  ignore (Ukapps.Resp_store.execute s [ "DEL"; "k" ]);
  Alcotest.(check int) "freed on delete" 0
    ((alloc.Ukalloc.Alloc.stats ()).Ukalloc.Alloc.bytes_in_use)

(* --- B-tree ------------------------------------------------------------------ *)

let test_btree_ordered_iteration () =
  let bt = Btree.create ~clock:(clock ()) ~alloc:(tlsf ()) ~order:6 () in
  let keys = [ "pear"; "apple"; "fig"; "mango"; "kiwi"; "date"; "plum" ] in
  List.iter (fun k -> ignore (Btree.insert bt ~key:k ~value:(Bytes.of_string k))) keys;
  let got = ref [] in
  Btree.iter bt (fun k _ -> got := k :: !got);
  Alcotest.(check (list string)) "sorted iteration" (List.sort compare keys) (List.rev !got);
  Alcotest.(check int) "length" 7 (Btree.length bt)

let test_btree_replace () =
  let bt = Btree.create ~clock:(clock ()) ~alloc:(tlsf ()) () in
  ignore (Btree.insert bt ~key:"k" ~value:(Bytes.of_string "v1"));
  ignore (Btree.insert bt ~key:"k" ~value:(Bytes.of_string "v2"));
  Alcotest.(check int) "no duplicate" 1 (Btree.length bt);
  Alcotest.(check (option string)) "replaced" (Some "v2")
    (Option.map Bytes.to_string (Btree.find bt "k"))

let test_btree_range () =
  let bt = Btree.create ~clock:(clock ()) ~alloc:(tlsf ()) ~order:4 () in
  for i = 0 to 99 do
    ignore (Btree.insert bt ~key:(Printf.sprintf "k%02d" i) ~value:Bytes.empty)
  done;
  let n = ref 0 in
  Btree.iter bt ~min_key:"k10" ~max_key:"k19" (fun _ _ -> incr n);
  Alcotest.(check int) "range scan" 10 !n

let btree_model_prop =
  QCheck.Test.make ~name:"btree agrees with a model map under random ops" ~count:30
    QCheck.(list (pair (int_bound 200) bool))
    (fun ops ->
      let bt = Btree.create ~clock:(clock ()) ~alloc:(tlsf ()) ~order:5 () in
      let module Sm = Map.Make (String) in
      let model = ref Sm.empty in
      List.iter
        (fun (k, ins) ->
          let key = Printf.sprintf "key%03d" k in
          if ins then begin
            let v = Bytes.of_string (string_of_int k) in
            ignore (Btree.insert bt ~key ~value:v);
            model := Sm.add key v !model
          end
          else begin
            let existed = Btree.delete bt key in
            if existed <> Sm.mem key !model then failwith "delete mismatch";
            model := Sm.remove key !model
          end)
        ops;
      Btree.length bt = Sm.cardinal !model
      && Sm.for_all
           (fun k v -> match Btree.find bt k with Some v' -> Bytes.equal v v' | None -> false)
           !model)

(* --- SQL -------------------------------------------------------------------- *)

let test_sql_parse_create () =
  match Sql.parse "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT);" with
  | Ok (Sql.Create_table { table = "t"; columns = [ ("id", Sql.Tint); ("name", Sql.Ttext) ] }) ->
      ()
  | Ok _ -> Alcotest.fail "wrong ast"
  | Error e -> Alcotest.fail e

let test_sql_parse_insert_multi () =
  match Sql.parse "INSERT INTO t VALUES (1, 'a'), (2, 'it''s')" with
  | Ok (Sql.Insert { table = "t"; rows = [ [ Sql.Lint 1; Sql.Ltext "a" ]; [ Sql.Lint 2; Sql.Ltext "it's" ] ] })
    ->
      ()
  | Ok _ -> Alcotest.fail "wrong ast"
  | Error e -> Alcotest.fail e

let test_sql_parse_select () =
  (match Sql.parse "SELECT COUNT(*) FROM t WHERE id >= 5" with
  | Ok (Sql.Select { cols = Sql.Count; table = "t"; where = Some { wcol = "id"; wop = Sql.Ge; wval = Sql.Lint 5 } })
    ->
      ()
  | Ok _ -> Alcotest.fail "wrong ast"
  | Error e -> Alcotest.fail e);
  match Sql.parse "select name, id from t" with
  | Ok (Sql.Select { cols = Sql.Cols [ "name"; "id" ]; where = None; _ }) -> ()
  | Ok _ -> Alcotest.fail "case-insensitive keywords"
  | Error e -> Alcotest.fail e

let test_sql_parse_errors () =
  List.iter
    (fun bad ->
      match Sql.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted: %s" bad)
    [ "SELECT"; "INSERT INTO"; "CREATE TABLE t"; "DELETE t"; "SELECT * FROM t WHERE"; "@!#" ]

let mk_db ?journal ?(per_stmt_overhead = 0) () =
  let c = clock () in
  let alloc = Ukalloc.Tlsf.create ~clock:c ~base:(1 lsl 24) ~len:(1 lsl 26) in
  (c, Sqldb.create ~clock:c ~alloc ?journal ~per_stmt_overhead ())

let exec db q =
  match Sqldb.exec db q with
  | Ok r -> r
  | Error e -> Alcotest.failf "%s: %s" q e

let test_sqldb_end_to_end () =
  let _, db = mk_db () in
  ignore (exec db "CREATE TABLE kv (id INTEGER, v TEXT)");
  ignore (exec db "INSERT INTO kv VALUES (1, 'one'), (2, 'two'), (3, 'three')");
  (match exec db "SELECT COUNT(*) FROM kv" with
  | Sqldb.Count 3 -> ()
  | _ -> Alcotest.fail "count");
  (match exec db "SELECT v FROM kv WHERE id = 2" with
  | Sqldb.Rows { rows = [ [ Sql.Ltext "two" ] ]; _ } -> ()
  | _ -> Alcotest.fail "where eq");
  (match exec db "SELECT * FROM kv WHERE id > 1" with
  | Sqldb.Rows { rows; _ } -> Alcotest.(check int) "where gt" 2 (List.length rows)
  | _ -> Alcotest.fail "select *");
  (match exec db "DELETE FROM kv WHERE id = 1" with
  | Sqldb.Affected 1 -> ()
  | _ -> Alcotest.fail "delete");
  match exec db "SELECT COUNT(*) FROM kv" with
  | Sqldb.Count 2 -> ()
  | _ -> Alcotest.fail "count after delete"

let test_sqldb_type_errors () =
  let _, db = mk_db () in
  ignore (exec db "CREATE TABLE t (id INTEGER, name TEXT)");
  (match Sqldb.exec db "INSERT INTO t VALUES ('oops', 'x')" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "type mismatch accepted");
  (match Sqldb.exec db "INSERT INTO t VALUES (1)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity mismatch accepted");
  (match Sqldb.exec db "SELECT * FROM missing" with
  | Error e -> Alcotest.(check string) "no such table" "no such table: missing" e
  | Ok _ -> Alcotest.fail "missing table");
  match Sqldb.exec db "SELECT * FROM t WHERE ghost = 1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown column accepted"

let test_sqldb_journal () =
  let c = clock () in
  let vfs = Ukvfs.Vfs.create ~clock:c in
  ignore (Ukvfs.Vfs.mount vfs ~at:"/" (Ukvfs.Ramfs.create ~clock:c ()));
  let alloc = Ukalloc.Tlsf.create ~clock:c ~base:(1 lsl 24) ~len:(1 lsl 26) in
  let db = Sqldb.create ~clock:c ~alloc ~journal:(vfs, "/journal") () in
  (match Sqldb.exec db "CREATE TABLE t (id INTEGER)" with Ok _ -> () | Error e -> Alcotest.fail e);
  (match Sqldb.exec db "INSERT INTO t VALUES (42)" with Ok _ -> () | Error e -> Alcotest.fail e);
  match Ukvfs.Vfs.stat vfs "/journal" with
  | Ok { Ukvfs.Fs.size; _ } -> Alcotest.(check bool) "journal grew" true (size > 0)
  | Error _ -> Alcotest.fail "journal file missing"

let test_sqldb_txn_batches_journal () =
  (* One fsync per txn instead of per statement: BEGIN..COMMIT must be
     much cheaper in virtual time than autocommit. *)
  let run in_txn =
    let c = clock () in
    let vfs = Ukvfs.Vfs.create ~clock:c in
    ignore (Ukvfs.Vfs.mount vfs ~at:"/" (Ukvfs.Ramfs.create ~clock:c ()));
    let alloc = Ukalloc.Tlsf.create ~clock:c ~base:(1 lsl 24) ~len:(1 lsl 26) in
    let db = Sqldb.create ~clock:c ~alloc ~journal:(vfs, "/j") () in
    ignore (Sqldb.exec db "CREATE TABLE t (id INTEGER)");
    let s = Uksim.Clock.start c in
    if in_txn then ignore (Sqldb.exec db "BEGIN");
    for i = 1 to 50 do
      ignore (Sqldb.exec db (Printf.sprintf "INSERT INTO t VALUES (%d)" i))
    done;
    if in_txn then ignore (Sqldb.exec db "COMMIT");
    Uksim.Clock.elapsed_ns c s
  in
  Alcotest.(check bool) "txn batching is faster" true (run true < run false)

let test_sqldb_insert_count_60k_shape () =
  (* A scaled-down Fig 17 sanity check: inserts stay O(log n). *)
  let _, db = mk_db () in
  ignore (exec db "CREATE TABLE t (id INTEGER, payload TEXT)");
  for i = 1 to 2000 do
    ignore (exec db (Printf.sprintf "INSERT INTO t VALUES (%d, 'row-%d')" i i))
  done;
  match exec db "SELECT COUNT(*) FROM t" with
  | Sqldb.Count 2000 -> ()
  | _ -> Alcotest.fail "2000 rows"

(* --- Webcache / UDP KV -------------------------------------------------------- *)

let test_webcache_backends_agree () =
  let c = clock () in
  let shfs = Ukvfs.Shfs.create ~clock:c () in
  let wc_s = Ukapps.Webcache.create ~clock:c (Ukapps.Webcache.Shfs_backed shfs) in
  (match Ukapps.Webcache.populate wc_s ~n_files:10 ~size:256 () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let vfs = Ukvfs.Vfs.create ~clock:c in
  ignore (Ukvfs.Vfs.mount vfs ~at:"/" (Ukvfs.Ramfs.create ~clock:c ()));
  let wc_v = Ukapps.Webcache.create ~clock:c (Ukapps.Webcache.Vfs_backed (vfs, "/")) in
  (match Ukapps.Webcache.populate wc_v ~n_files:10 ~size:256 () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let a = Ukapps.Webcache.fetch wc_s "f3.html" in
  let b = Ukapps.Webcache.fetch wc_v "f3.html" in
  Alcotest.(check bool) "same content from both backends" true
    (match (a, b) with Some x, Some y -> Bytes.equal x y | _ -> false);
  Alcotest.(check bool) "miss on both" true
    (Ukapps.Webcache.fetch wc_s "zz" = None && Ukapps.Webcache.fetch wc_v "zz" = None)

let test_webcache_specialization_wins () =
  let c = clock () in
  let shfs = Ukvfs.Shfs.create ~clock:c () in
  let wc_s = Ukapps.Webcache.create ~clock:c (Ukapps.Webcache.Shfs_backed shfs) in
  ignore (Ukapps.Webcache.populate wc_s ~n_files:100 ());
  let vfs = Ukvfs.Vfs.create ~clock:c in
  ignore (Ukvfs.Vfs.mount vfs ~at:"/" (Ukvfs.Ramfs.create ~clock:c ()));
  let wc_v = Ukapps.Webcache.create ~clock:c (Ukapps.Webcache.Vfs_backed (vfs, "/")) in
  ignore (Ukapps.Webcache.populate wc_v ~n_files:100 ());
  let s = Ukapps.Webcache.measure_open wc_s () in
  let v = Ukapps.Webcache.measure_open wc_v () in
  Alcotest.(check bool)
    (Printf.sprintf "hit: shfs %.0fns vs vfs %.0fns" s.Ukapps.Webcache.hit_ns v.Ukapps.Webcache.hit_ns)
    true
    (v.Ukapps.Webcache.hit_ns > s.Ukapps.Webcache.hit_ns *. 3.0);
  Alcotest.(check bool) "miss also faster" true
    (v.Ukapps.Webcache.miss_ns > s.Ukapps.Webcache.miss_ns *. 2.0)

let test_udp_kv_store () =
  let c = clock () in
  let alloc = Ukalloc.Tlsf.create ~clock:c ~base:(1 lsl 24) ~len:(1 lsl 24) in
  let st = Ukapps.Udp_kv.create_store ~clock:c ~alloc in
  Ukapps.Udp_kv.store_set st "a" "1";
  Ukapps.Udp_kv.store_set st "a" "2";
  Alcotest.(check (option string)) "last write wins" (Some "2") (Ukapps.Udp_kv.store_get st "a");
  Alcotest.(check int) "size" 1 (Ukapps.Udp_kv.store_size st);
  Alcotest.(check (option string)) "miss" None (Ukapps.Udp_kv.store_get st "zz")

let test_httpd_default_page () =
  Alcotest.(check int) "612-byte page (Fig 13)" 612 (String.length Ukapps.Httpd.default_page)

let suite =
  [
    Alcotest.test_case "resp encoding" `Quick test_resp_encode;
    Alcotest.test_case "resp incremental parse" `Quick test_resp_incremental_parse;
    Alcotest.test_case "resp pipeline parse" `Quick test_resp_pipeline_parse;
    Alcotest.test_case "resp protocol errors" `Quick test_resp_protocol_error;
    QCheck_alcotest.to_alcotest resp_roundtrip_prop;
    Alcotest.test_case "store set/get/del" `Quick test_store_set_get;
    Alcotest.test_case "store incr" `Quick test_store_incr;
    Alcotest.test_case "store lists and admin" `Quick test_store_lists_and_admin;
    Alcotest.test_case "store uses ukalloc" `Quick test_store_allocator_accounting;
    Alcotest.test_case "btree ordered iteration" `Quick test_btree_ordered_iteration;
    Alcotest.test_case "btree replace" `Quick test_btree_replace;
    Alcotest.test_case "btree range scan" `Quick test_btree_range;
    QCheck_alcotest.to_alcotest btree_model_prop;
    Alcotest.test_case "sql: create table" `Quick test_sql_parse_create;
    Alcotest.test_case "sql: multi-row insert" `Quick test_sql_parse_insert_multi;
    Alcotest.test_case "sql: select" `Quick test_sql_parse_select;
    Alcotest.test_case "sql: syntax errors" `Quick test_sql_parse_errors;
    Alcotest.test_case "sqldb end to end" `Quick test_sqldb_end_to_end;
    Alcotest.test_case "sqldb type errors" `Quick test_sqldb_type_errors;
    Alcotest.test_case "sqldb journal" `Quick test_sqldb_journal;
    Alcotest.test_case "sqldb txn batching" `Quick test_sqldb_txn_batches_journal;
    Alcotest.test_case "sqldb 2k inserts" `Quick test_sqldb_insert_count_60k_shape;
    Alcotest.test_case "webcache backends agree" `Quick test_webcache_backends_agree;
    Alcotest.test_case "webcache specialization (Fig 22)" `Quick
      test_webcache_specialization_wins;
    Alcotest.test_case "udp kv store" `Quick test_udp_kv_store;
    Alcotest.test_case "612-byte page" `Quick test_httpd_default_page;
  ]
