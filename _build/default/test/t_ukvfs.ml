(* Tests for the filesystem layer: ramfs, vfscore, the 9P codec and
   client/server, SHFS. *)

module Fs = Ukvfs.Fs
module Vfs = Ukvfs.Vfs
module Ramfs = Ukvfs.Ramfs
module N = Ukvfs.Ninep
module Nsrv = Ukvfs.Ninep_server
module Ncl = Ukvfs.Ninep_client
module Shfs = Ukvfs.Shfs

let clock () = Uksim.Clock.create ()

let write_file fs path content =
  match fs.Fs.open_file path ~create:true with
  | Error e -> Alcotest.failf "create %s: %s" path (Fs.errno_to_string e)
  | Ok h -> (
      match fs.Fs.write h ~off:0 (Bytes.of_string content) with
      | Error e -> Alcotest.failf "write: %s" (Fs.errno_to_string e)
      | Ok _ -> fs.Fs.close h)

let read_file fs path =
  match fs.Fs.open_file path ~create:false with
  | Error e -> Error e
  | Ok h -> (
      match fs.Fs.stat path with
      | Error e -> Error e
      | Ok { Fs.size; _ } -> (
          match fs.Fs.read h ~off:0 ~len:size with
          | Error e -> Error e
          | Ok data ->
              fs.Fs.close h;
              Ok (Bytes.to_string data)))

let test_ramfs_basic () =
  let fs = Ramfs.create ~clock:(clock ()) () in
  write_file fs "/hello.txt" "contents";
  Alcotest.(check (result string reject)) "read back" (Ok "contents")
    (Result.map_error (fun _ -> "e") (read_file fs "/hello.txt"));
  match fs.Fs.stat "/hello.txt" with
  | Ok { Fs.size = 8; ftype = Fs.Regular } -> ()
  | Ok _ -> Alcotest.fail "wrong stat"
  | Error e -> Alcotest.fail (Fs.errno_to_string e)

let test_ramfs_dirs () =
  let fs = Ramfs.create ~clock:(clock ()) () in
  (match fs.Fs.mkdir "/sub" with Ok () -> () | Error e -> Alcotest.fail (Fs.errno_to_string e));
  write_file fs "/sub/a" "A";
  write_file fs "/sub/b" "B";
  (match fs.Fs.readdir "/sub" with
  | Ok names -> Alcotest.(check (list string)) "listing" [ "a"; "b" ] names
  | Error e -> Alcotest.fail (Fs.errno_to_string e));
  (match fs.Fs.unlink "/sub" with
  | Error Fs.Eexist -> ()
  | Error e -> Alcotest.failf "wrong errno: %s" (Fs.errno_to_string e)
  | Ok () -> Alcotest.fail "non-empty dir removed");
  (match fs.Fs.unlink "/sub/a" with Ok () -> () | Error _ -> Alcotest.fail "unlink a");
  match fs.Fs.stat "/sub/a" with
  | Error Fs.Enoent -> ()
  | _ -> Alcotest.fail "a still present"

let test_ramfs_errors () =
  let fs = Ramfs.create ~clock:(clock ()) () in
  (match fs.Fs.open_file "/missing" ~create:false with
  | Error Fs.Enoent -> ()
  | _ -> Alcotest.fail "expected ENOENT");
  (match fs.Fs.read 999 ~off:0 ~len:1 with
  | Error Fs.Ebadf -> ()
  | _ -> Alcotest.fail "expected EBADF");
  write_file fs "/f" "x";
  match fs.Fs.open_file "/f/oops" ~create:false with
  | Error Fs.Enotdir -> ()
  | _ -> Alcotest.fail "expected ENOTDIR"

let test_ramfs_capacity () =
  let fs = Ramfs.create ~clock:(clock ()) ~capacity:100 () in
  match fs.Fs.open_file "/big" ~create:true with
  | Error _ -> Alcotest.fail "create"
  | Ok h -> (
      match fs.Fs.write h ~off:0 (Bytes.make 200 'x') with
      | Error Fs.Enospc -> ()
      | _ -> Alcotest.fail "expected ENOSPC")

let test_ramfs_sparse_write () =
  let fs = Ramfs.create ~clock:(clock ()) () in
  write_file fs "/s" "abc";
  (match fs.Fs.open_file "/s" ~create:false with
  | Error _ -> Alcotest.fail "open"
  | Ok h -> (
      match fs.Fs.write h ~off:5 (Bytes.of_string "z") with
      | Ok 1 -> (
          match fs.Fs.read h ~off:0 ~len:10 with
          | Ok data -> Alcotest.(check string) "zero filled" "abc\000\000z" (Bytes.to_string data)
          | Error _ -> Alcotest.fail "read")
      | _ -> Alcotest.fail "sparse write"))

(* --- vfscore --------------------------------------------------------------- *)

let test_vfs_mounts () =
  let c = clock () in
  let v = Vfs.create ~clock:c in
  let root = Ramfs.create ~clock:c () in
  let data = Ramfs.create ~clock:c () in
  (match Vfs.mount v ~at:"/" root with Ok () -> () | Error _ -> Alcotest.fail "mount /");
  (match Vfs.mount v ~at:"/data" data with Ok () -> () | Error _ -> Alcotest.fail "mount /data");
  (match Vfs.mount v ~at:"/data" data with
  | Error Fs.Eexist -> ()
  | _ -> Alcotest.fail "duplicate mount");
  (* Longest prefix wins. *)
  (match Vfs.open_file v "/data/f" ~create:true () with
  | Ok fd -> (
      ignore (Vfs.write v fd (Bytes.of_string "in-data"));
      ignore (Vfs.close v fd);
      match data.Fs.stat "/f" with
      | Ok { Fs.size = 7; _ } -> ()
      | _ -> Alcotest.fail "file should live on the /data fs")
  | Error e -> Alcotest.failf "open: %s" (Fs.errno_to_string e));
  match root.Fs.stat "/f" with
  | Error Fs.Enoent -> ()
  | _ -> Alcotest.fail "file leaked to root fs"

let test_vfs_fd_semantics () =
  let c = clock () in
  let v = Vfs.create ~clock:c in
  ignore (Vfs.mount v ~at:"/" (Ramfs.create ~clock:c ()));
  let fd = Result.get_ok (Vfs.open_file v "/f" ~create:true ()) in
  ignore (Vfs.write v fd (Bytes.of_string "hello "));
  ignore (Vfs.write v fd (Bytes.of_string "world"));
  ignore (Vfs.lseek v fd 0);
  (match Vfs.read v fd ~len:32 with
  | Ok data -> Alcotest.(check string) "offset advances" "hello world" (Bytes.to_string data)
  | Error _ -> Alcotest.fail "read");
  (match Vfs.pread v fd ~off:6 ~len:5 with
  | Ok data -> Alcotest.(check string) "pread" "world" (Bytes.to_string data)
  | Error _ -> Alcotest.fail "pread");
  Alcotest.(check int) "fd table" 1 (Vfs.open_fds v);
  ignore (Vfs.close v fd);
  Alcotest.(check int) "fd closed" 0 (Vfs.open_fds v);
  match Vfs.read v fd ~len:1 with
  | Error Fs.Ebadf -> ()
  | _ -> Alcotest.fail "stale fd accepted"

let test_vfs_dentry_cache () =
  let c = clock () in
  let v = Vfs.create ~clock:c in
  ignore (Vfs.mount v ~at:"/" (Ramfs.create ~clock:c ()));
  let fd = Result.get_ok (Vfs.open_file v "/cached" ~create:true ()) in
  ignore (Vfs.close v fd);
  let misses0 = Vfs.dentry_misses v in
  ignore (Vfs.stat v "/cached");
  ignore (Vfs.stat v "/cached");
  Alcotest.(check int) "resolutions hit the cache" misses0 (Vfs.dentry_misses v);
  Alcotest.(check bool) "hits recorded" true (Vfs.dentry_hits v >= 2)

(* --- 9P ---------------------------------------------------------------------- *)

let ninep_examples =
  [
    N.Tversion { msize = 8192; version = "9P2000" };
    N.Rversion { msize = 8192; version = "9P2000" };
    N.Tattach { fid = 0; uname = "root"; aname = "/" };
    N.Rattach (N.qid_dir 1);
    N.Twalk { fid = 0; newfid = 1; wnames = [ "a"; "b"; "c" ] };
    N.Rwalk [ N.qid_dir 2; N.qid_file 3 ];
    N.Topen { fid = 1; mode = 2 };
    N.Ropen { q = N.qid_file 3; iounit = 8192 };
    N.Tcreate { fid = 1; name = "new.txt"; perm = 0o644; mode = 2 };
    N.Tread { fid = 1; offset = 4096; count = 1024 };
    N.Rread (Bytes.of_string "some file data");
    N.Twrite { fid = 1; offset = 0; data = Bytes.of_string "payload" };
    N.Rwrite 7;
    N.Tclunk 1;
    N.Rclunk;
    N.Tremove 2;
    N.Rremove;
    N.Tstat 1;
    N.Rstat { name = "f"; length = 123; is_dir = false };
    N.Rerror "ENOENT";
  ]

let test_ninep_codec_examples () =
  List.iter
    (fun body ->
      let raw = N.encode { tag = 42; body } in
      match N.decode raw with
      | Error e -> Alcotest.failf "%s: %s" (N.msg_name body) e
      | Ok { tag; body = got } ->
          Alcotest.(check int) "tag preserved" 42 tag;
          Alcotest.(check string) "same constructor" (N.msg_name body) (N.msg_name got))
    ninep_examples

let ninep_rw_roundtrip_prop =
  QCheck.Test.make ~name:"9p read/write messages roundtrip" ~count:200
    QCheck.(pair (string_of_size (Gen.int_range 0 500)) (int_bound 100000))
    (fun (data, offset) ->
      let body = N.Twrite { fid = 7; offset; data = Bytes.of_string data } in
      match N.decode (N.encode { tag = 1; body }) with
      | Ok { body = N.Twrite { fid = 7; offset = o; data = d }; _ } ->
          o = offset && Bytes.to_string d = data
      | Ok _ | Error _ -> false)

let test_ninep_truncated () =
  let raw = N.encode { tag = 1; body = N.Tclunk 3 } in
  let cut = Bytes.sub raw 0 (Bytes.length raw - 2) in
  match N.decode cut with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated message accepted"

let mk_9p_env () =
  let guest = clock () in
  let host = Ramfs.create ~clock:(clock ()) () in
  write_file host "/motd" "welcome to the host share";
  ignore (host.Fs.mkdir "/dir");
  write_file host "/dir/inner" "nested";
  let server = Nsrv.create ~backing:host in
  let transport = Ncl.Transport.virtio_9p ~clock:guest ~server in
  match Ncl.create ~transport with
  | Error e -> Alcotest.failf "9p attach: %s" e
  | Ok fs -> (guest, host, transport, fs)

let test_ninep_end_to_end_read () =
  let _, _, _, fs = mk_9p_env () in
  Alcotest.(check (result string reject)) "read over 9p" (Ok "welcome to the host share")
    (Result.map_error (fun _ -> "e") (read_file fs "/motd"));
  match fs.Fs.stat "/dir" with
  | Ok { Fs.ftype = Fs.Directory; _ } -> ()
  | _ -> Alcotest.fail "dir stat"

let test_ninep_end_to_end_write () =
  let _, host, _, fs = mk_9p_env () in
  write_file fs "/fresh" "written by guest";
  Alcotest.(check (result string reject)) "host sees guest write" (Ok "written by guest")
    (Result.map_error (fun _ -> "e") (read_file host "/fresh"))

let test_ninep_readdir_unlink () =
  let _, _, _, fs = mk_9p_env () in
  (match fs.Fs.readdir "/dir" with
  | Ok [ "inner" ] -> ()
  | Ok l -> Alcotest.failf "bad listing: %s" (String.concat "," l)
  | Error e -> Alcotest.fail (Fs.errno_to_string e));
  (match fs.Fs.unlink "/motd" with Ok () -> () | Error _ -> Alcotest.fail "unlink");
  match fs.Fs.stat "/motd" with
  | Error Fs.Enoent -> ()
  | _ -> Alcotest.fail "still present after remove"

let test_ninep_chunked_io () =
  (* 32KB read = ceil(32K / 8K iounit) read RPCs (Fig 20's scaling). *)
  let guest, _, transport, fs = mk_9p_env () in
  ignore guest;
  write_file fs "/big" (String.make 32768 'b');
  let before = Ncl.Transport.rpcs_sent transport in
  (match read_file fs "/big" with
  | Ok s -> Alcotest.(check int) "full content" 32768 (String.length s)
  | Error _ -> Alcotest.fail "read");
  let read_rpcs = Ncl.Transport.rpcs_sent transport - before in
  (* walk + open + 4 reads (+1 terminating short read) + stat rpcs *)
  Alcotest.(check bool)
    (Printf.sprintf "multiple read RPCs (%d)" read_rpcs)
    true (read_rpcs >= 6)

let test_ninep_latency_scales_with_block () =
  let guest, _, _, fs = mk_9p_env () in
  write_file fs "/blk" (String.make 65536 'c');
  let fd = Result.get_ok (fs.Fs.open_file "/blk" ~create:false) in
  let time len =
    let s = Uksim.Clock.start guest in
    ignore (fs.Fs.read fd ~off:0 ~len);
    Uksim.Clock.elapsed_ns guest s
  in
  let t4k = time 4096 and t32k = time 32768 in
  Alcotest.(check bool)
    (Printf.sprintf "32K (%.0fns) slower than 4K (%.0fns)" t32k t4k)
    true
    (t32k > t4k *. 2.0)

(* --- SHFS --------------------------------------------------------------------- *)

let test_shfs_basics () =
  let c = clock () in
  let s = Shfs.create ~clock:c () in
  Shfs.add s ~name:"index.html" (Bytes.of_string "<html>hi</html>");
  Shfs.add s ~name:"logo.png" (Bytes.make 100 'i');
  Alcotest.(check int) "entries" 2 (Shfs.entries s);
  (match Shfs.open_direct s "index.html" with
  | Error _ -> Alcotest.fail "open"
  | Ok h ->
      Alcotest.(check int) "size" 15 (Shfs.size_direct s h);
      (match Shfs.read_direct s h ~off:6 ~len:2 with
      | Ok b -> Alcotest.(check string) "partial read" "hi" (Bytes.to_string b)
      | Error _ -> Alcotest.fail "read");
      Shfs.close_direct s h);
  match Shfs.open_direct s "missing" with
  | Error Fs.Enoent -> ()
  | _ -> Alcotest.fail "expected miss"

let test_shfs_replace () =
  let s = Shfs.create ~clock:(clock ()) () in
  Shfs.add s ~name:"x" (Bytes.of_string "v1");
  Shfs.add s ~name:"x" (Bytes.of_string "v2");
  Alcotest.(check int) "replace keeps one entry" 1 (Shfs.entries s);
  match Shfs.open_direct s "x" with
  | Ok h -> Alcotest.(check int) "new size" 2 (Shfs.size_direct s h)
  | Error _ -> Alcotest.fail "open"

let test_shfs_faster_than_vfs () =
  (* The Fig 22 claim: direct SHFS open is several times cheaper than a
     vfscore + ramfs open. *)
  let c = clock () in
  let s = Shfs.create ~clock:c () in
  Shfs.add s ~name:"f.html" (Bytes.make 128 'x');
  let v = Vfs.create ~clock:c in
  ignore (Vfs.mount v ~at:"/" (Ramfs.create ~clock:c ()));
  let fd = Result.get_ok (Vfs.open_file v "/f.html" ~create:true ()) in
  ignore (Vfs.close v fd);
  let cost f =
    let sp = Uksim.Clock.start c in
    for _ = 1 to 100 do
      f ()
    done;
    Uksim.Clock.elapsed_cycles c sp
  in
  let shfs_cost =
    cost (fun () ->
        match Shfs.open_direct s "f.html" with Ok h -> Shfs.close_direct s h | Error _ -> ())
  in
  let vfs_cost =
    cost (fun () ->
        match Vfs.open_file v "/f.html" () with Ok fd -> ignore (Vfs.close v fd) | Error _ -> ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "shfs %d vs vfs %d cycles" shfs_cost vfs_cost)
    true
    (vfs_cost > shfs_cost * 3)

let test_shfs_as_fs () =
  let s = Shfs.create ~clock:(clock ()) () in
  Shfs.add s ~name:"obj" (Bytes.of_string "via-vfs");
  let fs = Shfs.to_fs s in
  Alcotest.(check (result string reject)) "read through Fs.t" (Ok "via-vfs")
    (Result.map_error (fun _ -> "e") (read_file fs "/obj"));
  match fs.Fs.open_file "/new" ~create:true with
  | Error Fs.Enosys -> ()
  | _ -> Alcotest.fail "shfs is read-only via vfs"

let suite =
  [
    Alcotest.test_case "ramfs basics" `Quick test_ramfs_basic;
    Alcotest.test_case "ramfs directories" `Quick test_ramfs_dirs;
    Alcotest.test_case "ramfs error paths" `Quick test_ramfs_errors;
    Alcotest.test_case "ramfs capacity (ENOSPC)" `Quick test_ramfs_capacity;
    Alcotest.test_case "ramfs sparse writes" `Quick test_ramfs_sparse_write;
    Alcotest.test_case "vfs mounts and prefixes" `Quick test_vfs_mounts;
    Alcotest.test_case "vfs fd semantics" `Quick test_vfs_fd_semantics;
    Alcotest.test_case "vfs dentry cache" `Quick test_vfs_dentry_cache;
    Alcotest.test_case "9p codec examples" `Quick test_ninep_codec_examples;
    QCheck_alcotest.to_alcotest ninep_rw_roundtrip_prop;
    Alcotest.test_case "9p rejects truncation" `Quick test_ninep_truncated;
    Alcotest.test_case "9p end-to-end read" `Quick test_ninep_end_to_end_read;
    Alcotest.test_case "9p end-to-end write" `Quick test_ninep_end_to_end_write;
    Alcotest.test_case "9p readdir and remove" `Quick test_ninep_readdir_unlink;
    Alcotest.test_case "9p chunked io" `Quick test_ninep_chunked_io;
    Alcotest.test_case "9p latency scales with block size (Fig 20)" `Quick
      test_ninep_latency_scales_with_block;
    Alcotest.test_case "shfs basics" `Quick test_shfs_basics;
    Alcotest.test_case "shfs replace" `Quick test_shfs_replace;
    Alcotest.test_case "shfs beats vfs on open (Fig 22)" `Quick test_shfs_faster_than_vfs;
    Alcotest.test_case "shfs as mounted fs" `Quick test_shfs_as_fs;
  ]
