(* Tests for the hierarchical timing wheel. *)

module W = Uktime.Wheel

let test_fires_in_order () =
  let w = W.create ~now:0 () in
  let log = ref [] in
  ignore (W.arm w ~deadline:50_000 (fun () -> log := 2 :: !log));
  ignore (W.arm w ~deadline:10_000 (fun () -> log := 1 :: !log));
  ignore (W.arm w ~deadline:90_000 (fun () -> log := 3 :: !log));
  let fired = W.advance w ~now:100_000 in
  Alcotest.(check int) "three fired" 3 fired;
  Alcotest.(check (list int)) "deadline order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "none pending" 0 (W.pending w)

let test_not_early () =
  let w = W.create ~now:0 () in
  let hit = ref false in
  ignore (W.arm w ~deadline:1_000_000 (fun () -> hit := true));
  ignore (W.advance w ~now:500_000);
  Alcotest.(check bool) "not fired early" false !hit;
  ignore (W.advance w ~now:1_100_000);
  Alcotest.(check bool) "fired eventually" true !hit

let test_cancel () =
  let w = W.create ~now:0 () in
  let hit = ref false in
  let timer = W.arm w ~deadline:5_000 (fun () -> hit := true) in
  Alcotest.(check bool) "cancel pending" true (W.cancel w timer);
  Alcotest.(check bool) "second cancel fails" false (W.cancel w timer);
  ignore (W.advance w ~now:10_000);
  Alcotest.(check bool) "cancelled never fires" false !hit;
  Alcotest.(check int) "pending drained" 0 (W.pending w)

let test_past_deadline_clamped () =
  let w = W.create ~now:1_000_000 () in
  let hit = ref false in
  ignore (W.arm w ~deadline:10 (fun () -> hit := true));
  ignore (W.advance w ~now:1_010_000);
  Alcotest.(check bool) "past deadline fires promptly" true !hit

let test_long_range_cascading () =
  (* A deadline far beyond level 0 must survive cascades and fire. *)
  let w = W.create ~granularity:16 ~now:0 () in
  let hit = ref false in
  let far = 16 * 256 * 300 (* level-2 territory *) in
  ignore (W.arm w ~deadline:far (fun () -> hit := true));
  ignore (W.advance w ~now:(far - 1000));
  Alcotest.(check bool) "still pending" false !hit;
  ignore (W.advance w ~now:(far + 1000));
  Alcotest.(check bool) "fired after cascading" true !hit;
  Alcotest.(check bool) "cascade happened" true (W.cascades w > 0)

let test_rearm_from_callback () =
  let w = W.create ~now:0 () in
  let count = ref 0 in
  let rec periodic at () =
    incr count;
    if !count < 5 then ignore (W.arm w ~deadline:(at + 10_000) (periodic (at + 10_000)))
  in
  ignore (W.arm w ~deadline:10_000 (periodic 10_000));
  ignore (W.advance w ~now:100_000);
  Alcotest.(check int) "periodic timer" 5 !count

let test_backwards_time () =
  let w = W.create ~now:100_000 () in
  Alcotest.check_raises "no time travel" (Invalid_argument "Wheel.advance: time went backwards")
    (fun () -> ignore (W.advance w ~now:0))

let wheel_matches_heap_prop =
  QCheck.Test.make ~name:"wheel fires exactly the timers a sorted model fires" ~count:100
    QCheck.(pair (list (int_range 1 2_000_000)) (int_range 1 2_500_000))
    (fun (deadlines, horizon) ->
      let w = W.create ~now:0 () in
      let fired = ref [] in
      List.iteri
        (fun i d -> ignore (W.arm w ~deadline:d (fun () -> fired := i :: !fired)))
        deadlines;
      ignore (W.advance w ~now:horizon);
      (* The wheel rounds deadlines to ticks (granularity 256) and never
         fires early relative to the tick grid. *)
      let tick d = ((max d 256 + 255) / 256 * 256) - 256 in
      List.for_all
        (fun (i, d) ->
          let did = List.mem i !fired in
          let must = tick d + 512 <= horizon in
          let may_not = d > horizon + 512 in
          (not must || did) && not (may_not && did))
        (List.mapi (fun i d -> (i, d)) deadlines))

let test_many_timers () =
  let w = W.create ~now:0 () in
  for i = 1 to 50_000 do
    ignore (W.arm w ~deadline:(i * 100) (fun () -> ()))
  done;
  Alcotest.(check int) "all pending" 50_000 (W.pending w);
  ignore (W.advance w ~now:6_000_000);
  Alcotest.(check int) "all fired" 50_000 (W.fired w)

let suite =
  [
    Alcotest.test_case "fires in deadline order" `Quick test_fires_in_order;
    Alcotest.test_case "never early" `Quick test_not_early;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "past deadlines clamp" `Quick test_past_deadline_clamped;
    Alcotest.test_case "long-range cascading" `Quick test_long_range_cascading;
    Alcotest.test_case "re-arm from callback" `Quick test_rearm_from_callback;
    Alcotest.test_case "backwards time rejected" `Quick test_backwards_time;
    QCheck_alcotest.to_alcotest wheel_matches_heap_prop;
    Alcotest.test_case "50k timers" `Quick test_many_timers;
  ]
