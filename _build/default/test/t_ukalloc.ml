(* Tests for all ukalloc backends: unit behaviours plus a randomized
   malloc/free workload validated through the Checked invariant wrapper. *)

open Ukalloc

let mib = Uksim.Units.mib

let backends () =
  let clock = Uksim.Clock.create () in
  [
    ("buddy", Buddy.create ~clock ~base:(mib 16) ~len:(mib 16));
    ("tlsf", Tlsf.create ~clock ~base:(mib 16) ~len:(mib 16));
    ("tinyalloc", Tinyalloc.create ~clock ~base:(mib 16) ~len:(mib 16) ());
    ("mimalloc", Mimalloc.create ~clock ~base:(mib 16) ~len:(mib 16));
    ("bootalloc", Bootalloc.create ~clock ~base:(mib 16) ~len:(mib 16));
    ("oscar", Oscar.create ~clock ~base:(mib 16) ~len:(mib 16));
  ]

let test_roundtrip () =
  List.iter
    (fun (name, a) ->
      match Alloc.uk_malloc a 100 with
      | None -> Alcotest.failf "%s: malloc failed" name
      | Some addr ->
          Alcotest.(check bool) (name ^ ": 16-aligned") true (addr land 15 = 0);
          Alloc.uk_free a addr;
          let st = a.Alloc.stats () in
          Alcotest.(check int) (name ^ ": one alloc") 1 st.Alloc.allocs;
          Alcotest.(check int) (name ^ ": one free") 1 st.Alloc.frees)
    (backends ())

let test_zero_and_negative () =
  List.iter
    (fun (name, a) ->
      Alcotest.(check bool) (name ^ ": malloc 0 fails") true (Alloc.uk_malloc a 0 = None);
      Alcotest.(check bool) (name ^ ": malloc -1 fails") true (Alloc.uk_malloc a (-1) = None))
    (backends ())

let test_memalign () =
  List.iter
    (fun (name, a) ->
      match Alloc.uk_memalign a ~align:256 100 with
      | None -> Alcotest.failf "%s: memalign failed" name
      | Some addr -> Alcotest.(check int) (name ^ ": aligned 256") 0 (addr land 255))
    (backends ())

let test_calloc () =
  List.iter
    (fun (name, a) ->
      (match Alloc.uk_calloc a 4 32 with
      | None -> Alcotest.failf "%s: calloc failed" name
      | Some _ -> ());
      Alcotest.(check bool) (name ^ ": calloc 0 fails") true (Alloc.uk_calloc a 0 8 = None))
    (backends ())

let test_oom_and_recovery () =
  (* Exhaust a small region, then free and observe recovery (except for
     the by-design non-reclaiming bootalloc and address-burning oscar). *)
  let clock = Uksim.Clock.create () in
  let small =
    [
      ("buddy", Buddy.create ~clock ~base:(mib 1) ~len:(mib 1));
      ("tlsf", Tlsf.create ~clock ~base:(mib 1) ~len:(mib 1));
    ]
  in
  List.iter
    (fun (name, a) ->
      let addrs = ref [] in
      let rec fill () =
        match Alloc.uk_malloc a 4096 with
        | Some addr ->
            addrs := addr :: !addrs;
            fill ()
        | None -> ()
      in
      fill ();
      Alcotest.(check bool) (name ^ ": filled region") true (List.length !addrs > 100);
      Alcotest.(check bool) (name ^ ": OOM recorded") true ((a.Alloc.stats ()).Alloc.failed > 0);
      List.iter (Alloc.uk_free a) !addrs;
      (match Alloc.uk_malloc a 4096 with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: no recovery after free" name);
      Alcotest.(check bool)
        (name ^ ": live bytes low after frees")
        true
        ((a.Alloc.stats ()).Alloc.bytes_in_use <= 4096))
    small

let test_buddy_coalescing () =
  let clock = Uksim.Clock.create () in
  let a = Buddy.create ~clock ~base:(mib 1) ~len:(mib 1) in
  (* Fill with max-order block; requires full coalescing after frees. *)
  let all = List.init 256 (fun _ -> Option.get (Alloc.uk_malloc a 4096)) in
  List.iter (Alloc.uk_free a) all;
  match a.Alloc.memalign ~align:16 (mib 1 / 2) with
  | Some _ -> ()
  | None -> Alcotest.fail "buddy failed to coalesce back to large blocks"

let test_buddy_errors () =
  let clock = Uksim.Clock.create () in
  Alcotest.check_raises "len not power of two"
    (Invalid_argument "Buddy.create: len must be a power of two >= 2^min_order") (fun () ->
      ignore (Buddy.create ~clock ~base:0 ~len:1000));
  let a = Buddy.create ~clock ~base:(mib 1) ~len:(mib 1) in
  Alcotest.check_raises "free of unknown address"
    (Invalid_argument "Buddy.free: unknown address 0x7b") (fun () -> Alloc.uk_free a 123)

let test_tlsf_o1_behaviour () =
  (* TLSF's defining property: cost does not grow with the number of live
     blocks. Compare cycles of an alloc/free pair early vs. late. *)
  let clock = Uksim.Clock.create () in
  let a = Tlsf.create ~clock ~base:(mib 16) ~len:(mib 16) in
  let measure () =
    let s = Uksim.Clock.start clock in
    let addr = Option.get (Alloc.uk_malloc a 128) in
    Alloc.uk_free a addr;
    Uksim.Clock.elapsed_cycles clock s
  in
  let early = measure () in
  let keep = List.init 2000 (fun i -> Option.get (Alloc.uk_malloc a (64 + (i mod 512)))) in
  let late = measure () in
  ignore keep;
  Alcotest.(check bool)
    (Printf.sprintf "O(1): early=%d late=%d" early late)
    true
    (late <= early * 3)

let test_tinyalloc_degrades () =
  (* tinyalloc's free-list walk grows with fragmentation (Fig 16's
     crossover behaviour). *)
  let clock = Uksim.Clock.create () in
  let a = Tinyalloc.create ~clock ~base:(mib 16) ~len:(mib 64) () in
  let measure () =
    let s = Uksim.Clock.start clock in
    let addr = Option.get (Alloc.uk_malloc a 100000) in
    Alloc.uk_free a addr;
    Uksim.Clock.elapsed_cycles clock s
  in
  let early = measure () in
  (* Build a fragmented free list: allocate many, free alternating. *)
  let blocks = Array.init 512 (fun i -> Option.get (Alloc.uk_malloc a (64 + (8 * (i mod 16))))) in
  Array.iteri (fun i addr -> if i mod 2 = 0 then Alloc.uk_free a addr) blocks;
  let late = measure () in
  Alcotest.(check bool)
    (Printf.sprintf "degrades under fragmentation: early=%d late=%d" early late)
    true (late > early)

let test_mimalloc_flat () =
  (* Free-list sharding keeps the fast path flat under load (Fig 18). *)
  let clock = Uksim.Clock.create () in
  let a = Mimalloc.create ~clock ~base:(mib 64) ~len:(mib 64) in
  let measure () =
    let s = Uksim.Clock.start clock in
    let addr = Option.get (Alloc.uk_malloc a 128) in
    Alloc.uk_free a addr;
    Uksim.Clock.elapsed_cycles clock s
  in
  let early = measure () in
  let keep = List.init 5000 (fun i -> Option.get (Alloc.uk_malloc a (16 + (i mod 1000)))) in
  List.iteri (fun i addr -> if i mod 3 = 0 then Alloc.uk_free a addr) keep;
  let late = measure () in
  Alcotest.(check bool)
    (Printf.sprintf "flat under load: early=%d late=%d" early late)
    true
    (late <= early * 2)

let test_bootalloc_no_reclaim () =
  let clock = Uksim.Clock.create () in
  let a = Bootalloc.create ~clock ~base:0 ~len:65536 in
  let before = a.Alloc.availmem () in
  let addr = Option.get (Alloc.uk_malloc a 1024) in
  Alloc.uk_free a addr;
  Alcotest.(check bool) "free does not reclaim" true (a.Alloc.availmem () < before)

let test_oscar_never_reuses () =
  let clock = Uksim.Clock.create () in
  let a = Oscar.create ~clock ~base:0 ~len:(mib 4) in
  let a1 = Option.get (Alloc.uk_malloc a 64) in
  Alloc.uk_free a a1;
  let a2 = Option.get (Alloc.uk_malloc a 64) in
  Alcotest.(check bool) "addresses never reused" true (a1 <> a2);
  (* Physical memory is reclaimed even though addresses are not. *)
  Alloc.uk_free a a2;
  Alcotest.(check int) "physical reclaimed" (mib 4) (a.Alloc.availmem ())

let test_realloc () =
  List.iter
    (fun (name, a) ->
      let addr = Option.get (Alloc.uk_malloc a 64) in
      match Alloc.uk_realloc a addr 4096 with
      | None -> Alcotest.failf "%s: realloc failed" name
      | Some naddr ->
          Alcotest.(check bool) (name ^ ": realloc yields valid block") true (naddr > 0))
    (backends ())

let test_boot_cost_ordering () =
  (* Fig 14's driver: buddy init walks the region; bootalloc is O(1). *)
  let cost create =
    let clock = Uksim.Clock.create () in
    ignore (create clock);
    Uksim.Clock.cycles clock
  in
  let buddy = cost (fun clock -> Buddy.create ~clock ~base:(mib 256) ~len:(mib 256)) in
  let tlsf = cost (fun clock -> Tlsf.create ~clock ~base:(mib 256) ~len:(mib 256)) in
  let boot = cost (fun clock -> Bootalloc.create ~clock ~base:(mib 256) ~len:(mib 256)) in
  let mim = cost (fun clock -> Mimalloc.create ~clock ~base:(mib 256) ~len:(mib 256)) in
  Alcotest.(check bool) "bootalloc < tlsf" true (boot < tlsf);
  Alcotest.(check bool) "tlsf < mimalloc" true (tlsf < mim);
  Alcotest.(check bool) "mimalloc < buddy" true (mim < buddy)

let test_registry () =
  let clock = Uksim.Clock.create () in
  let r = Alloc.Registry.create () in
  let a = Tlsf.create ~clock ~base:(mib 1) ~len:(mib 1) in
  let b = Bootalloc.create ~clock ~base:(mib 4) ~len:(mib 1) in
  Alloc.Registry.register r a;
  Alloc.Registry.register r b;
  (match Alloc.Registry.default r with
  | Some d -> Alcotest.(check string) "first registered is default" "tlsf" d.Alloc.name
  | None -> Alcotest.fail "default");
  Alcotest.(check bool) "find by name" true (Alloc.Registry.find r "bootalloc" <> None);
  Alcotest.(check int) "all" 2 (List.length (Alloc.Registry.all r));
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Alloc.Registry.register: duplicate allocator tlsf") (fun () ->
      Alloc.Registry.register r (Tlsf.create ~clock ~base:(mib 8) ~len:(mib 1)))

(* Randomized workload through the Checked wrapper: catches overlapping
   blocks, misalignment, bad frees across every backend. *)
let random_workload_prop (name, mk_alloc) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: random malloc/free workload keeps invariants" name)
    ~count:30
    QCheck.(list (pair (int_bound 2) (int_range 1 2000)))
    (fun ops ->
      let checked = Checked.wrap (mk_alloc ()) in
      let a = Checked.alloc checked in
      let live = ref [] in
      List.iter
        (fun (op, size) ->
          match op with
          | 0 | 1 -> (
              match a.Alloc.malloc size with
              | Some addr -> live := (addr, size) :: !live
              | None -> ())
          | _ -> (
              match !live with
              | (addr, _) :: rest ->
                  a.Alloc.free addr;
                  live := rest
              | [] -> ()))
        ops;
      List.iter (fun (addr, _) -> a.Alloc.free addr) !live;
      Checked.live_count checked = 0)

let random_props =
  let mk f = fun () -> f (Uksim.Clock.create ()) in
  [
    ("buddy", mk (fun clock -> Buddy.create ~clock ~base:(mib 4) ~len:(mib 4)));
    ("tlsf", mk (fun clock -> Tlsf.create ~clock ~base:(mib 4) ~len:(mib 4)));
    ("tinyalloc", mk (fun clock -> Tinyalloc.create ~clock ~base:(mib 4) ~len:(mib 4) ()));
    ("mimalloc", mk (fun clock -> Mimalloc.create ~clock ~base:(mib 4) ~len:(mib 4)));
    ("oscar", mk (fun clock -> Oscar.create ~clock ~base:(mib 4) ~len:(mib 16)));
  ]
  |> List.map (fun b -> QCheck_alcotest.to_alcotest (random_workload_prop b))

let suite =
  [
    Alcotest.test_case "malloc/free roundtrip (all backends)" `Quick test_roundtrip;
    Alcotest.test_case "invalid sizes rejected" `Quick test_zero_and_negative;
    Alcotest.test_case "memalign" `Quick test_memalign;
    Alcotest.test_case "calloc" `Quick test_calloc;
    Alcotest.test_case "OOM and recovery" `Quick test_oom_and_recovery;
    Alcotest.test_case "buddy coalescing" `Quick test_buddy_coalescing;
    Alcotest.test_case "buddy error paths" `Quick test_buddy_errors;
    Alcotest.test_case "tlsf O(1) under load" `Quick test_tlsf_o1_behaviour;
    Alcotest.test_case "tinyalloc degrades under fragmentation" `Quick test_tinyalloc_degrades;
    Alcotest.test_case "mimalloc flat under load" `Quick test_mimalloc_flat;
    Alcotest.test_case "bootalloc never reclaims" `Quick test_bootalloc_no_reclaim;
    Alcotest.test_case "oscar never reuses addresses" `Quick test_oscar_never_reuses;
    Alcotest.test_case "realloc" `Quick test_realloc;
    Alcotest.test_case "boot cost ordering (Fig 14)" `Quick test_boot_cost_ordering;
    Alcotest.test_case "registry" `Quick test_registry;
  ]
  @ random_props
