(* Tests for page tables (ukmmu), boot orchestration (ukboot), and VMM
   models (ukplat). *)

module Pt = Ukmmu.Pagetable
module Boot = Ukboot.Boot
module Vmm = Ukplat.Vmm

let mib = Uksim.Units.mib

let test_static_identity () =
  let clock = Uksim.Clock.create () in
  let pt = Pt.create ~clock ~mode:Pt.Static ~ram_bytes:(mib 4) in
  Alcotest.(check int) "all pages mapped" (mib 4 / 4096) (Pt.mapped_pages pt);
  Alcotest.(check (option int)) "identity translation" (Some 0x1234) (Pt.translate pt 0x1234);
  Alcotest.(check (option int)) "beyond ram unmapped" None (Pt.translate pt (mib 8))

let test_static_boot_constant () =
  (* Fig 21: pre-initialized page tables boot in O(1) regardless of RAM. *)
  let boot_cycles ram =
    let clock = Uksim.Clock.create () in
    ignore (Pt.create ~clock ~mode:Pt.Static ~ram_bytes:ram);
    Uksim.Clock.cycles clock
  in
  Alcotest.(check int) "32MB == 1GB boot cost" (boot_cycles (mib 32)) (boot_cycles (mib 1024));
  let clock = Uksim.Clock.create () in
  let pt = Pt.create ~clock ~mode:Pt.Static ~ram_bytes:(mib 32) in
  Alcotest.(check int) "no charged entry writes" 0 (Pt.boot_entry_writes pt)

let test_dynamic_boot_proportional () =
  (* Fig 21: dynamic population grows linearly with RAM. *)
  let boot_cycles ram =
    let clock = Uksim.Clock.create () in
    ignore (Pt.create ~clock ~mode:Pt.Dynamic ~ram_bytes:ram);
    Uksim.Clock.cycles clock
  in
  let c32 = boot_cycles (mib 32) and c128 = boot_cycles (mib 128) in
  Alcotest.(check bool)
    (Printf.sprintf "roughly 4x: %d vs %d" c32 c128)
    true
    (c128 > 3 * c32 && c128 < 5 * c32)

let test_dynamic_vs_static_paper_point () =
  (* "a guest with a 32MB dynamic page-table takes slightly longer to boot
     than one with a pre-initialized 1GB page-table" *)
  let cycles mode ram =
    let clock = Uksim.Clock.create () in
    ignore (Pt.create ~clock ~mode ~ram_bytes:ram);
    Uksim.Clock.cycles clock
  in
  Alcotest.(check bool) "dynamic 32MB > static 1GB" true
    (cycles Pt.Dynamic (mib 32) > cycles Pt.Static (mib 1024))

let test_dynamic_map_unmap () =
  let clock = Uksim.Clock.create () in
  let pt = Pt.create ~clock ~mode:Pt.Dynamic ~ram_bytes:(mib 1) in
  let vaddr = mib 512 in
  Pt.map_page pt ~vaddr ~paddr:0x5000;
  Alcotest.(check (option int)) "mapped" (Some (0x5000 lor 0x123)) (Pt.translate pt (vaddr + 0x123));
  Pt.unmap_page pt ~vaddr;
  Alcotest.(check (option int)) "unmapped" None (Pt.translate pt vaddr);
  Alcotest.check_raises "unaligned rejected"
    (Invalid_argument "Pagetable.map_page: 0x7b not page-aligned") (fun () ->
      Pt.map_page pt ~vaddr:123 ~paddr:0)

let test_static_immutable () =
  let clock = Uksim.Clock.create () in
  let pt = Pt.create ~clock ~mode:Pt.Static ~ram_bytes:(mib 1) in
  Alcotest.check_raises "static is immutable"
    (Invalid_argument "Pagetable.map_page: static page table is immutable") (fun () ->
      Pt.map_page pt ~vaddr:0 ~paddr:0)

let test_protected32 () =
  let clock = Uksim.Clock.create () in
  let pt = Pt.create ~clock ~mode:Pt.Protected32 ~ram_bytes:(mib 8) in
  Alcotest.(check (option int)) "identity" (Some 42) (Pt.translate pt 42);
  Alcotest.(check int) "no tables" 0 (Pt.mapped_pages pt);
  Alcotest.(check int) "no tlb misses ever" 0 (Pt.tlb_misses pt)

let test_tlb () =
  let clock = Uksim.Clock.create () in
  let pt = Pt.create ~clock ~mode:Pt.Static ~ram_bytes:(mib 1) in
  ignore (Pt.translate pt 0x1000);
  let misses1 = Pt.tlb_misses pt in
  ignore (Pt.translate pt 0x1004);
  Alcotest.(check int) "second access hits" misses1 (Pt.tlb_misses pt);
  Alcotest.(check bool) "hits recorded" true (Pt.tlb_hits pt >= 1);
  Pt.tlb_flush pt;
  ignore (Pt.translate pt 0x1000);
  Alcotest.(check int) "miss after flush" (misses1 + 1) (Pt.tlb_misses pt)

let test_table_overhead () =
  let clock = Uksim.Clock.create () in
  let pt = Pt.create ~clock ~mode:Pt.Static ~ram_bytes:(mib 2) in
  (* 2MB = 512 PTEs = 1 leaf + PD + PDPT + PML4. *)
  Alcotest.(check int) "table pages" 4 (Pt.table_count pt);
  Alcotest.(check int) "table bytes" (4 * 4096) (Pt.table_bytes pt)

(* --- ukboot --------------------------------------------------------------- *)

let test_inittab_ordering () =
  let tab = Boot.Inittab.create () in
  Boot.Inittab.register tab ~level:Boot.Level.fs ~name:"fs" (fun () -> ());
  Boot.Inittab.register tab ~level:Boot.Level.early ~name:"early" (fun () -> ());
  Boot.Inittab.register tab ~level:Boot.Level.alloc ~name:"alloc-a" (fun () -> ());
  Boot.Inittab.register tab ~level:Boot.Level.alloc ~name:"alloc-b" (fun () -> ());
  Alcotest.(check (list (pair int string)))
    "level order, registration order within level"
    [ (1, "early"); (3, "alloc-a"); (3, "alloc-b"); (6, "fs") ]
    (Boot.Inittab.entries tab)

let test_boot_report () =
  let clock = Uksim.Clock.create () in
  let tab = Boot.Inittab.create () in
  Boot.Inittab.register tab ~level:1 ~name:"a" (fun () -> Uksim.Clock.advance clock 3600);
  Boot.Inittab.register tab ~level:2 ~name:"b" (fun () -> Uksim.Clock.advance clock 7200);
  let main_ran = ref false in
  let r = Boot.run ~clock ~main:(fun () -> main_ran := true) tab in
  Alcotest.(check bool) "main ran" true !main_ran;
  Alcotest.(check (float 0.1)) "boot time excludes main" 3000.0 r.Boot.guest_boot_ns;
  Alcotest.(check int) "two phases" 2 (List.length r.Boot.phases);
  let b = List.nth r.Boot.phases 1 in
  Alcotest.(check (float 0.1)) "phase duration" 2000.0 b.Boot.duration_ns;
  Alcotest.(check (float 0.1)) "phase start offset" 1000.0 b.Boot.start_ns

let test_inittab_level_range () =
  let tab = Boot.Inittab.create () in
  Alcotest.check_raises "bad level" (Invalid_argument "Inittab.register: level must be in 1..7")
    (fun () -> Boot.Inittab.register tab ~level:0 ~name:"x" (fun () -> ()))

(* --- ukplat ---------------------------------------------------------------- *)

let test_vmm_startup_ordering () =
  (* Fig 10: QEMU slowest, microVM middle, FC/Solo5 fastest. *)
  let s v = Vmm.startup_ns v in
  Alcotest.(check bool) "fc < microvm" true (s Vmm.Firecracker < s Vmm.Qemu_microvm);
  Alcotest.(check bool) "microvm < qemu" true (s Vmm.Qemu_microvm < s Vmm.Qemu);
  Alcotest.(check (float 0.1)) "qemu = 40ms" 40e6 (s Vmm.Qemu)

let test_vmm_boot_breakdown () =
  let clock = Uksim.Clock.create () in
  let tab = Boot.Inittab.create () in
  Boot.Inittab.register tab ~level:1 ~name:"ctor" (fun () -> Uksim.Clock.advance clock 36_000);
  let bd, report = Vmm.boot Vmm.Solo5 ~clock ~nics:1 ~inittab:tab () in
  Alcotest.(check (float 1.0)) "vmm startup" 3e6 bd.Vmm.vmm_startup_ns;
  Alcotest.(check bool) "guest time includes nic + ctors" true
    (bd.Vmm.guest_ns >= 10_000.0 +. report.Boot.guest_boot_ns);
  Alcotest.(check (float 1.0)) "total = vmm + guest" (bd.Vmm.vmm_startup_ns +. bd.Vmm.guest_ns)
    bd.Vmm.total_ns

let test_vmm_9p_attach () =
  (* Paper: +0.3ms boot on KVM with the 9pfs device. *)
  let boot_ns with_9p =
    let clock = Uksim.Clock.create () in
    let tab = Boot.Inittab.create () in
    let bd, _ = Vmm.boot Vmm.Qemu ~clock ~with_9p ~inittab:tab () in
    bd.Vmm.guest_ns
  in
  Alcotest.(check (float 1000.0)) "9p adds 0.3ms" 3.0e5 (boot_ns true -. boot_ns false)

let test_vmm_names () =
  List.iter
    (fun v -> Alcotest.(check (option string)) "roundtrip" (Some (Vmm.name v)) (Option.map Vmm.name (Vmm.of_name (Vmm.name v))))
    Vmm.all

let suite =
  [
    Alcotest.test_case "static identity map" `Quick test_static_identity;
    Alcotest.test_case "static boot O(1) (Fig 21)" `Quick test_static_boot_constant;
    Alcotest.test_case "dynamic boot linear (Fig 21)" `Quick test_dynamic_boot_proportional;
    Alcotest.test_case "dynamic 32MB vs static 1GB (Fig 21)" `Quick
      test_dynamic_vs_static_paper_point;
    Alcotest.test_case "dynamic map/unmap" `Quick test_dynamic_map_unmap;
    Alcotest.test_case "static immutable" `Quick test_static_immutable;
    Alcotest.test_case "protected 32-bit mode" `Quick test_protected32;
    Alcotest.test_case "TLB hits and misses" `Quick test_tlb;
    Alcotest.test_case "table overhead" `Quick test_table_overhead;
    Alcotest.test_case "inittab ordering" `Quick test_inittab_ordering;
    Alcotest.test_case "boot report" `Quick test_boot_report;
    Alcotest.test_case "inittab level range" `Quick test_inittab_level_range;
    Alcotest.test_case "VMM startup ordering (Fig 10)" `Quick test_vmm_startup_ordering;
    Alcotest.test_case "VMM boot breakdown" `Quick test_vmm_boot_breakdown;
    Alcotest.test_case "9p attach cost (text2)" `Quick test_vmm_9p_attach;
    Alcotest.test_case "VMM name roundtrip" `Quick test_vmm_names;
  ]
