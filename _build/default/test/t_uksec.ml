(* Tests for the §7 security facilities: MPK compartments, the ASan
   allocator wrapper, and HermiTux-style binary compat/rewriting. *)

module Mpk = Ukmpk.Mpk
module Asan = Ukalloc.Asan
module Bin = Uksyscall.Binary
module Shim = Uksyscall.Shim

let clock () = Uksim.Clock.create ()

(* --- MPK ------------------------------------------------------------------ *)

let test_mpk_key_allocation () =
  let m = Mpk.create ~clock:(clock ()) in
  let keys = List.init 15 (fun i -> Mpk.alloc_key m ~name:(Printf.sprintf "c%d" i) ()) in
  Alcotest.(check bool) "15 keys allocatable" true (List.for_all Result.is_ok keys);
  (match Mpk.alloc_key m () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "16th key must fail (hardware limit)");
  match keys with
  | Ok k :: _ -> Alcotest.(check string) "named" "c0" (Mpk.key_name m k)
  | _ -> Alcotest.fail "first key"

let test_mpk_isolation () =
  let c = clock () in
  let m = Mpk.create ~clock:c in
  let key = Result.get_ok (Mpk.alloc_key m ~name:"crypto" ()) in
  Mpk.bind_range m key ~base:0x10000 ~len:8192;
  (* Fresh compartments are inaccessible. *)
  (match Mpk.load m 0x10010 with
  | () -> Alcotest.fail "no-access compartment readable"
  | exception Mpk.Protection_fault { write = false; _ } -> ());
  (* Grant read-only: loads work, stores fault. *)
  Mpk.set_rights m key Mpk.Read_only;
  Mpk.load m 0x10010;
  (match Mpk.store m 0x10010 with
  | () -> Alcotest.fail "read-only compartment writable"
  | exception Mpk.Protection_fault { write = true; _ } -> ());
  (* Default-domain addresses stay accessible throughout. *)
  Mpk.store m 0x90000;
  Alcotest.(check int) "faults counted" 2 (Mpk.faults m)

let test_mpk_binding_rules () =
  let m = Mpk.create ~clock:(clock ()) in
  let a = Result.get_ok (Mpk.alloc_key m ()) in
  let b = Result.get_ok (Mpk.alloc_key m ()) in
  Mpk.bind_range m a ~base:0x4000 ~len:4096;
  Alcotest.check_raises "double binding rejected"
    (Invalid_argument "Mpk.bind_range: page 0x4000 already bound to key 1") (fun () ->
      Mpk.bind_range m b ~base:0x4000 ~len:16);
  Alcotest.(check bool) "key_of_addr" true (Mpk.key_of_addr m 0x4abc = a);
  Mpk.free_key m a;
  Alcotest.(check bool) "unbound after free" true
    (Mpk.key_of_addr m 0x4abc = Mpk.default_key)

let test_mpk_gate () =
  let c = clock () in
  let m = Mpk.create ~clock:c in
  let key = Result.get_ok (Mpk.alloc_key m ~name:"fscomp" ()) in
  Mpk.bind_range m key ~base:0x20000 ~len:4096;
  let gate = Mpk.Gate.create m ~name:"fs-entry" ~target_key:key in
  (* Inside the gate the compartment is writable; outside it is sealed. *)
  Mpk.Gate.enter gate (fun () -> Mpk.store m 0x20040);
  (match Mpk.store m 0x20040 with
  | () -> Alcotest.fail "sealed after gate exit"
  | exception Mpk.Protection_fault _ -> ());
  (* Exception safety: PKRU restored when the body throws. *)
  (try Mpk.Gate.enter gate (fun () -> failwith "inner") with Failure _ -> ());
  (match Mpk.store m 0x20040 with
  | () -> Alcotest.fail "sealed after exceptional exit"
  | exception Mpk.Protection_fault _ -> ());
  Alcotest.(check int) "crossings" 2 (Mpk.Gate.crossings gate);
  (* Each crossing is 4 WRPKRU writes; the cost is visible on the clock. *)
  Alcotest.(check bool) "wrpkru cycles charged" true
    (Uksim.Clock.cycles c >= 2 * 4 * Mpk.wrpkru_cost)

(* --- ASan ------------------------------------------------------------------ *)

let asan_env () =
  let c = clock () in
  let inner = Ukalloc.Tlsf.create ~clock:c ~base:(1 lsl 20) ~len:(1 lsl 22) in
  let t = Asan.wrap ~clock:c inner in
  (c, t, Asan.alloc t)

let test_asan_clean_usage () =
  let _, t, a = asan_env () in
  let addr = Option.get (a.Ukalloc.Alloc.malloc 100) in
  Asan.check_write t ~addr ~len:100;
  Asan.check_read t ~addr:(addr + 50) ~len:50;
  a.Ukalloc.Alloc.free addr;
  Alcotest.(check bool) "checks counted" true (Asan.checks_performed t > 0)

let test_asan_overflow () =
  let _, t, a = asan_env () in
  let addr = Option.get (a.Ukalloc.Alloc.malloc 64) in
  match Asan.check_write t ~addr ~len:65 with
  | () -> Alcotest.fail "off-by-one write not caught"
  | exception Asan.Asan (Asan.Heap_buffer_overflow { block; _ }) ->
      Alcotest.(check int) "right block" addr block

let test_asan_underflow () =
  let _, t, a = asan_env () in
  let addr = Option.get (a.Ukalloc.Alloc.malloc 64) in
  match Asan.check_read t ~addr:(addr - 1) ~len:1 with
  | () -> Alcotest.fail "underflow not caught"
  | exception Asan.Asan (Asan.Heap_buffer_overflow _) -> ()

let test_asan_use_after_free () =
  let _, t, a = asan_env () in
  let addr = Option.get (a.Ukalloc.Alloc.malloc 64) in
  a.Ukalloc.Alloc.free addr;
  match Asan.check_read t ~addr ~len:8 with
  | () -> Alcotest.fail "UAF not caught (quarantine failed)"
  | exception Asan.Asan (Asan.Use_after_free _) -> ()

let test_asan_double_free () =
  let _, _, a = asan_env () in
  let addr = Option.get (a.Ukalloc.Alloc.malloc 64) in
  a.Ukalloc.Alloc.free addr;
  match a.Ukalloc.Alloc.free addr with
  | () -> Alcotest.fail "double free not caught"
  | exception Asan.Asan (Asan.Double_free _) -> ()

let test_asan_wild () =
  let _, t, _ = asan_env () in
  match Asan.check_read t ~addr:0xdead0000 ~len:4 with
  | () -> Alcotest.fail "wild access not caught"
  | exception Asan.Asan (Asan.Wild_access _) -> ()

let test_asan_quarantine_eviction () =
  (* Freed blocks are parked: the inner allocator sees no frees until the
     quarantine overflows, then exactly the overflow is released. *)
  let c = clock () in
  let inner = Ukalloc.Tlsf.create ~clock:c ~base:(1 lsl 20) ~len:(1 lsl 22) in
  let t = Asan.wrap ~clock:c ~quarantine:4 inner in
  let a = Asan.alloc t in
  let addrs = List.init 10 (fun _ -> Option.get (a.Ukalloc.Alloc.malloc 64)) in
  let inner_frees () = (inner.Ukalloc.Alloc.stats ()).Ukalloc.Alloc.frees in
  List.iteri
    (fun i addr ->
      a.Ukalloc.Alloc.free addr;
      if i < 4 then
        Alcotest.(check int) "parked, not released" 0 (inner_frees ()))
    addrs;
  Alcotest.(check int) "overflow released to the inner allocator" 6 (inner_frees ())

let test_asan_randomized_no_false_positives =
  QCheck.Test.make ~name:"asan: valid programs never trip the sanitizer" ~count:50
    QCheck.(list (pair (int_range 1 512) bool))
    (fun ops ->
      let c = Uksim.Clock.create () in
      let inner = Ukalloc.Mimalloc.create ~clock:c ~base:(1 lsl 22) ~len:(1 lsl 24) in
      let t = Asan.wrap ~clock:c inner in
      let a = Asan.alloc t in
      let live = ref [] in
      List.iter
        (fun (size, do_free) ->
          (match a.Ukalloc.Alloc.malloc size with
          | Some addr ->
              Asan.check_write t ~addr ~len:size;
              live := (addr, size) :: !live
          | None -> ());
          if do_free then
            match !live with
            | (addr, size) :: rest ->
                Asan.check_read t ~addr ~len:size;
                a.Ukalloc.Alloc.free addr;
                live := rest
            | [] -> ())
        ops;
      true)

(* --- binary compat / rewriting --------------------------------------------- *)

let sample_binary =
  [
    Bin.Mov (0, 1); Bin.Syscall 39 (* getpid *); Bin.Add (0, 2); Bin.Syscall 1 (* write *);
    Bin.Cmp (0, 1); Bin.Nop; Bin.Syscall 57 (* fork: unsupported *); Bin.Ret;
  ]

let test_binary_roundtrip () =
  List.iter
    (fun insn ->
      match Bin.decode (Bin.encode insn) with
      | Some got when got = insn -> ()
      | Some _ | None -> Alcotest.fail "encode/decode mismatch")
    sample_binary

let test_binary_scan_and_rewrite () =
  let b = Bin.assemble sample_binary in
  Alcotest.(check (list int)) "syscall sites" [ 1; 3; 6 ] (Bin.syscall_sites b);
  let r = Bin.rewrite b in
  Alcotest.(check bool) "marked rewritten" true (Bin.rewritten r);
  Alcotest.(check (list int)) "sites preserved" [ 1; 3; 6 ] (Bin.syscall_sites r);
  Alcotest.(check bool) "original untouched" false (Bin.rewritten b)

let test_binary_execution_costs () =
  let run binary =
    let c = clock () in
    let shim = Shim.create ~clock:c ~mode:Shim.Native_link in
    Shim.register shim ~sysno:39 (fun _ -> Ok 42);
    Shim.register shim ~sysno:1 (fun _ -> Ok 0);
    Bin.execute ~clock:c ~shim binary
  in
  let plain = run (Bin.assemble sample_binary) in
  let rewritten = run (Bin.rewrite (Bin.assemble sample_binary)) in
  Alcotest.(check int) "same instruction count" plain.Bin.instructions
    rewritten.Bin.instructions;
  Alcotest.(check int) "three syscalls each" 3 plain.Bin.syscalls;
  Alcotest.(check int) "fork stubbed as ENOSYS" 1 plain.Bin.enosys;
  (* Trap path costs 84/call, rewritten 4/call: 3 * 80 cycle gap. *)
  Alcotest.(check int) "rewriting saves the trap tax" (3 * 80)
    (plain.Bin.cycles - rewritten.Bin.cycles)

let test_binary_disassembles () =
  let c = clock () in
  let dbg = Ukdebug.Debug.create ~clock:c () in
  Ukdebug.Debug.Disasm.register dbg Ukdebug.Debug.Disasm.zydis_like;
  match Bin.disassemble_with dbg (Bin.assemble sample_binary) with
  | Ok lines ->
      Alcotest.(check int) "one line per insn" (List.length sample_binary) (List.length lines);
      Alcotest.(check string) "syscall rendered" "syscall ; nr=39" (List.nth lines 1)
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "mpk: key allocation limit" `Quick test_mpk_key_allocation;
    Alcotest.test_case "mpk: compartment isolation" `Quick test_mpk_isolation;
    Alcotest.test_case "mpk: binding rules" `Quick test_mpk_binding_rules;
    Alcotest.test_case "mpk: call gates" `Quick test_mpk_gate;
    Alcotest.test_case "asan: clean usage" `Quick test_asan_clean_usage;
    Alcotest.test_case "asan: heap overflow" `Quick test_asan_overflow;
    Alcotest.test_case "asan: underflow" `Quick test_asan_underflow;
    Alcotest.test_case "asan: use after free" `Quick test_asan_use_after_free;
    Alcotest.test_case "asan: double free" `Quick test_asan_double_free;
    Alcotest.test_case "asan: wild access" `Quick test_asan_wild;
    Alcotest.test_case "asan: quarantine eviction" `Quick test_asan_quarantine_eviction;
    QCheck_alcotest.to_alcotest test_asan_randomized_no_false_positives;
    Alcotest.test_case "binary: insn roundtrip" `Quick test_binary_roundtrip;
    Alcotest.test_case "binary: scan and rewrite" `Quick test_binary_scan_and_rewrite;
    Alcotest.test_case "binary: trap vs rewritten cost" `Quick test_binary_execution_costs;
    Alcotest.test_case "binary: disassembly via ukdebug" `Quick test_binary_disassembles;
  ]
