(* A static web server unikernel (the paper's nginx scenario): boot a
   networked VM, serve files from a ramfs through vfscore, and load-test
   it with a wrk-like client over a virtio wire.

   Run with: dune exec examples/webserver.exe *)

module Cfg = Unikraft.Config
module Vm = Unikraft.Vm
module A = Uknetstack.Addr

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let wire_guest, wire_client = Uknetdev.Wire.create_pair ~engine () in

  (* Server VM: nginx-class configuration — lwip over virtio-net,
     vfscore+ramfs for content, mimalloc as the app allocator. *)
  let cfg =
    ok
      (Cfg.make ~app:"app-nginx" ~net:Cfg.Vhost_net ~fs:Cfg.Ramfs ~alloc:Cfg.Mimalloc
         ~mem_mb:64 ())
  in
  let env = ok (Vm.boot ~vmm:Ukplat.Vmm.Qemu ~clock ~engine ~wire:wire_guest cfg) in
  let sched = Option.get env.Vm.sched in
  Format.printf "server booted: guest %.2f ms on %s@."
    (env.Vm.breakdown.Ukplat.Vmm.guest_ns /. 1e6)
    (Ukplat.Vmm.name env.Vm.breakdown.Ukplat.Vmm.vmm);

  (* Populate the root filesystem with content. *)
  let vfs = Option.get env.Vm.vfs in
  let put path body =
    let fd = Result.get_ok (Ukvfs.Vfs.open_file vfs path ~create:true ()) in
    ignore (Ukvfs.Vfs.pwrite vfs fd ~off:0 (Bytes.of_string body));
    ignore (Ukvfs.Vfs.close vfs fd)
  in
  put "/index.html" Ukapps.Httpd.default_page;
  put "/about.html" "<html><body>ukraft example server</body></html>";

  let httpd =
    Ukapps.Httpd.create ~clock ~sched ~stack:(Option.get env.Vm.stack) ~alloc:env.Vm.alloc
      (Ukapps.Httpd.Via_vfs vfs)
  in

  (* Client machine: its own stack behind the other wire endpoint. *)
  let cdev =
    Uknetdev.Virtio_net.create ~clock ~engine ~backend:Uknetdev.Virtio_net.Vhost_net
      ~wire:wire_client ()
  in
  let cstack =
    Uknetstack.Stack.create ~clock ~engine ~sched ~dev:cdev
      { Uknetstack.Stack.mac = A.Mac.of_int 0x2; ip = A.Ipv4.of_string "172.44.0.3";
        netmask = A.Ipv4.of_string "255.255.255.0"; gateway = None }
  in
  Uknetstack.Stack.start cstack;

  (* Load test: 30 connections fetching the 612-byte page. *)
  let r =
    Ukapps.Wrk.run ~clock ~sched ~stack:cstack ~server:(A.Ipv4.of_string "172.44.0.2", 80)
      ~connections:30 ~requests:20_000 ()
  in
  Format.printf "wrk: %.0f req/s, mean latency %.1f us, p99 %.1f us, errors %d@."
    r.Ukapps.Wrk.rate_per_sec r.Ukapps.Wrk.latency_us_mean r.Ukapps.Wrk.latency_us_p99
    r.Ukapps.Wrk.errors;
  let hs = Ukapps.Httpd.stats httpd in
  Format.printf "server: %d requests, %d x 404, %a sent@." hs.Ukapps.Httpd.requests
    hs.Ukapps.Httpd.errors_404 Uksim.Units.pp_bytes hs.Ukapps.Httpd.bytes_sent;
  let ss = Uknetstack.Stack.stats (Option.get env.Vm.stack) in
  Format.printf "server stack: %d frames in, %d tcp segments, %d dropped@."
    ss.Uknetstack.Stack.rx_eth ss.Uknetstack.Stack.rx_tcp ss.Uknetstack.Stack.rx_drop;
  let st = env.Vm.alloc.Ukalloc.Alloc.stats () in
  Format.printf "allocator (%s): %d allocs / %d frees, peak %a@."
    env.Vm.alloc.Ukalloc.Alloc.name st.Ukalloc.Alloc.allocs st.Ukalloc.Alloc.frees
    Uksim.Units.pp_bytes st.Ukalloc.Alloc.peak_bytes
