(* Tour of the 9pfs stack: a guest mounts a host share over virtio-9p and
   does real file I/O through vfscore, with every RPC visible.

   Run with: dune exec examples/ninep_tour.exe *)

module Cfg = Unikraft.Config
module Vm = Unikraft.Vm
module Fs = Ukvfs.Fs

let ok = function Ok v -> v | Error e -> failwith e
let oke = function Ok v -> v | Error e -> failwith (Fs.errno_to_string e)

let () =
  (* The host side: a directory tree exported by the VMM's 9p server. *)
  let host_clock = Uksim.Clock.create () in
  let host = Ukvfs.Ramfs.create ~clock:host_clock () in
  let put path body =
    let h = oke (host.Fs.open_file path ~create:true) in
    ignore (oke (host.Fs.write h ~off:0 (Bytes.of_string body)));
    host.Fs.close h
  in
  oke (host.Fs.mkdir "/etc");
  put "/etc/motd" "welcome to the 9p share";
  put "/data.bin" (String.make 65536 'd');

  (* Boot a guest with 9pfs as the root filesystem. *)
  let cfg = ok (Cfg.make ~app:"app-sqlite" ~fs:Cfg.Ninep ~mem_mb:32 ()) in
  let env = ok (Vm.boot ~vmm:Ukplat.Vmm.Qemu ~host_share:host cfg) in
  Format.printf "guest booted with 9pfs root in %.2f ms (the 9p device adds ~0.3 ms on KVM)@."
    (env.Vm.breakdown.Ukplat.Vmm.guest_ns /. 1e6);

  let vfs = Option.get env.Vm.vfs in
  let clock = env.Vm.clock in

  (* Reads go out as Twalk/Topen/Tread RPCs. *)
  let fd = oke (Ukvfs.Vfs.open_file vfs "/etc/motd" ()) in
  let data = oke (Ukvfs.Vfs.read vfs fd ~len:100) in
  Format.printf "read /etc/motd over 9p: %S@." (Bytes.to_string data);
  ignore (Ukvfs.Vfs.close vfs fd);

  (* Directory listing (Tread on a directory fid). *)
  Format.printf "ls /: %s@." (String.concat " " (oke (Ukvfs.Vfs.readdir vfs "/")));

  (* Guest writes are visible on the host. *)
  let fd = oke (Ukvfs.Vfs.open_file vfs "/from-guest" ~create:true ()) in
  ignore (oke (Ukvfs.Vfs.write vfs fd (Bytes.of_string "guest was here")));
  ignore (Ukvfs.Vfs.close vfs fd);
  let h = oke (host.Fs.open_file "/from-guest" ~create:false) in
  Format.printf "host sees: %S@." (Bytes.to_string (oke (host.Fs.read h ~off:0 ~len:64)));
  host.Fs.close h;

  (* Latency vs block size: each read is chunked into 8KB-iounit RPCs, so
     the virtual-time latency scales with the block (paper Fig 20). *)
  let fd = oke (Ukvfs.Vfs.open_file vfs "/data.bin" ()) in
  Format.printf "@.%-8s %12s@." "block" "latency (us)";
  List.iter
    (fun block ->
      let iters = 50 in
      let s = Uksim.Clock.start clock in
      for _ = 1 to iters do
        ignore (oke (Ukvfs.Vfs.pread vfs fd ~off:0 ~len:block))
      done;
      Format.printf "%-8d %12.1f@." block
        (Uksim.Clock.elapsed_ns clock s /. float_of_int iters /. 1e3))
    [ 4096; 8192; 16384; 32768 ];
  ignore (Ukvfs.Vfs.close vfs fd)
