(* An authoritative DNS server unikernel — the dnsmasq/bind class of
   workload from the paper's syscall study (§4.1), served from a
   sanitized (+asan) build to show §7's security knobs in use.

   Run with: dune exec examples/nameserver.exe *)

module Cfg = Unikraft.Config
module Vm = Unikraft.Vm
module Dns = Ukapps.Dns
module A = Uknetstack.Addr
module S = Uknetstack.Stack

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let wa, wb = Uknetdev.Wire.create_pair ~engine () in
  let cfg =
    ok
      (Cfg.make ~app:"app-udpkv" (* UDP service profile *) ~net:Cfg.Vhost_net ~alloc:Cfg.Tlsf
         ~asan:true ~mem_mb:16 ())
  in
  let env = ok (Vm.boot ~vmm:Ukplat.Vmm.Qemu ~clock ~engine ~wire:wa cfg) in
  let sched = Option.get env.Vm.sched in
  Format.printf "nameserver booted (%s heap) in %.2f ms guest time@."
    env.Vm.alloc.Ukalloc.Alloc.name
    (env.Vm.breakdown.Ukplat.Vmm.guest_ns /. 1e6);

  let srv = Dns.Server.create ~clock ~sched ~stack:(Option.get env.Vm.stack) () in
  Dns.Server.add_a srv ~name:"www.uk.test" "172.44.0.10";
  Dns.Server.add_a srv ~name:"www.uk.test" "172.44.0.11" (* round-robin pool *);
  Dns.Server.add_a srv ~name:"db.uk.test" "172.44.0.20";
  Dns.Server.add_record srv ~name:"cache.uk.test"
    { Dns.name = "cache.uk.test"; rtype = Dns.Cname; ttl = 60; rdata = Dns.Name "www.uk.test" };
  Dns.Server.add_record srv ~name:"uk.test"
    { Dns.name = "uk.test"; rtype = Dns.Txt; ttl = 600; rdata = Dns.Text "v=ukraft1" };

  (* Client machine. *)
  let cdev =
    Uknetdev.Virtio_net.create ~clock ~engine ~backend:Uknetdev.Virtio_net.Vhost_net ~wire:wb ()
  in
  let cstack =
    S.create ~clock ~engine ~sched ~dev:cdev
      { S.mac = A.Mac.of_int 0x2; ip = A.Ipv4.of_string "172.44.0.3";
        netmask = A.Ipv4.of_string "255.255.255.0"; gateway = None }
  in
  S.start cstack;

  let resolve name qtype =
    match Dns.Client.lookup ~clock ~stack:cstack ~server:(A.Ipv4.of_string "172.44.0.2") ~qtype name with
    | Ok m ->
        let rendered =
          match m.Dns.rcode with
          | Dns.Nx_domain -> "NXDOMAIN"
          | _ ->
              String.concat ", "
                (List.map
                   (fun (r : Dns.rr) ->
                     match r.Dns.rdata with
                     | Dns.Ipv4_addr ip -> A.Ipv4.to_string ip
                     | Dns.Name n -> "-> " ^ n
                     | Dns.Text t -> Printf.sprintf "%S" t
                     | Dns.Ipv6_addr s -> s)
                   m.Dns.answers)
        in
        Format.printf "  %-16s %s@." name rendered
    | Error e -> Format.printf "  %-16s error: %s@." name e
  in
  ignore
    (Uksched.Sched.spawn sched ~name:"dig" (fun () ->
         Format.printf "queries over the virtio wire:@.";
         resolve "www.uk.test" Dns.A;
         resolve "cache.uk.test" Dns.A;
         resolve "uk.test" Dns.Txt;
         resolve "missing.uk.test" Dns.A));
  Uksched.Sched.run sched;

  Format.printf "served %d queries (%d NXDOMAIN); heap checks so far: %d@."
    (Dns.Server.queries_served srv)
    (Dns.Server.nxdomain_count srv)
    (match env.Vm.asan with Some a -> Ukalloc.Asan.checks_performed a | None -> 0);

  (* Measure sustained resolution rate. *)
  let n = 5_000 in
  let t0 = Uksim.Clock.ns clock in
  ignore
    (Uksched.Sched.spawn sched ~name:"load" (fun () ->
         for i = 1 to n do
           ignore
             (Dns.Client.lookup ~clock ~stack:cstack ~server:(A.Ipv4.of_string "172.44.0.2")
                (if i land 7 = 0 then "db.uk.test" else "www.uk.test"))
         done));
  Uksched.Sched.run sched;
  let elapsed = Uksim.Clock.ns clock -. t0 in
  Format.printf "%d sequential lookups: %.0f queries/s (%.1f us mean latency)@." n
    (Uksim.Stats.throughput_per_sec ~events:n ~elapsed_ns:elapsed)
    (elapsed /. float_of_int n /. 1e3)
