(* The specialization ladder of the paper's §6: the same UDP key-value
   service built three ways —
     1. through the socket API over the lwip stack (easy, slower),
     2. against the raw uknetdev API in mixed polling mode (fast),
   and the same story for storage: open() through vfscore vs. direct SHFS.

   Run with: dune exec examples/specialization.exe *)

module Cfg = Unikraft.Config
module Vm = Unikraft.Vm
module A = Uknetstack.Addr
module Vn = Uknetdev.Virtio_net

let ok = function Ok v -> v | Error e -> failwith e

let kv_via_sockets () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let wa, wb = Uknetdev.Wire.create_pair ~engine () in
  let cfg = ok (Cfg.make ~app:"app-udpkv" ~net:Cfg.Vhost_net ~alloc:Cfg.Tlsf ()) in
  let env = ok (Vm.boot ~vmm:Ukplat.Vmm.Qemu ~clock ~engine ~wire:wa cfg) in
  let sched = Option.get env.Vm.sched in
  let store = Ukapps.Udp_kv.create_store ~clock ~alloc:env.Vm.alloc in
  for i = 0 to 1023 do
    Ukapps.Udp_kv.store_set store (Printf.sprintf "k%04d" i) "value"
  done;
  Ukapps.Udp_kv.serve_sockets ~sched ~stack:(Option.get env.Vm.stack) ~store ();
  let cdev = Vn.create ~clock ~engine ~backend:Vn.Vhost_net ~wire:wb () in
  let cstack =
    Uknetstack.Stack.create ~clock ~engine ~sched ~dev:cdev
      { Uknetstack.Stack.mac = A.Mac.of_int 0x2; ip = A.Ipv4.of_string "172.44.0.3";
        netmask = A.Ipv4.of_string "255.255.255.0"; gateway = None }
  in
  Uknetstack.Stack.start cstack;
  let r =
    Ukapps.Udp_kv.Client.run_sockets ~clock ~sched ~stack:cstack
      ~server:(A.Ipv4.of_string "172.44.0.2", 5000) ~requests:10_000 ()
  in
  r.Ukapps.Udp_kv.Client.rate_per_sec

let kv_via_uknetdev () =
  (* Stack and scheduler removed (one Kconfig change); the app owns the
     driver: polling loop, inline header handling, burst tx. *)
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  let wa, wb = Uknetdev.Wire.create_pair ~engine () in
  let sdev = Vn.create ~clock ~engine ~backend:Vn.Vhost_user ~wire:wa () in
  let cdev = Vn.create ~clock ~engine ~backend:Vn.Vhost_user ~wire:wb () in
  let alloc = Ukalloc.Tlsf.create ~clock ~base:(1 lsl 26) ~len:(1 lsl 26) in
  let store = Ukapps.Udp_kv.create_store ~clock ~alloc in
  for i = 0 to 1023 do
    Ukapps.Udp_kv.store_set store (Printf.sprintf "k%04d" i) "value"
  done;
  let sip = A.Ipv4.of_string "172.44.0.2" and cip = A.Ipv4.of_string "172.44.0.3" in
  let smac = A.Mac.of_int 0x1 and cmac = A.Mac.of_int 0x2 in
  Ukapps.Udp_kv.serve_netdev ~clock ~sched ~dev:sdev ~store ~mac:smac ~ip:sip ();
  let r =
    Ukapps.Udp_kv.Client.run_netdev ~clock ~sched ~dev:cdev ~mac:cmac ~ip:cip ~server_mac:smac
      ~server:(sip, 5000) ~requests:30_000 ()
  in
  r.Ukapps.Udp_kv.Client.rate_per_sec

let storage_ladder () =
  let clock = Uksim.Clock.create () in
  (* vfscore + ramfs path. *)
  let vfs = Ukvfs.Vfs.create ~clock in
  ignore (Ukvfs.Vfs.mount vfs ~at:"/" (Ukvfs.Ramfs.create ~clock ()));
  let wc_vfs = Ukapps.Webcache.create ~clock (Ukapps.Webcache.Vfs_backed (vfs, "/")) in
  ok (Ukapps.Webcache.populate wc_vfs ~n_files:200 ());
  (* SHFS direct path. *)
  let shfs = Ukvfs.Shfs.create ~clock () in
  let wc_shfs = Ukapps.Webcache.create ~clock (Ukapps.Webcache.Shfs_backed shfs) in
  ok (Ukapps.Webcache.populate wc_shfs ~n_files:200 ());
  let v = Ukapps.Webcache.measure_open wc_vfs () in
  let s = Ukapps.Webcache.measure_open wc_shfs () in
  (v, s)

let () =
  Format.printf "network specialization (UDP KV store, paper Table 4):@.";
  let sockets = kv_via_sockets () in
  Format.printf "  sockets over lwip:       %8.0f req/s@." sockets;
  let netdev = kv_via_uknetdev () in
  Format.printf "  raw uknetdev (polling):  %8.0f req/s  (%.1fx)@." netdev (netdev /. sockets);
  Format.printf "@.storage specialization (open() latency, paper Fig 22):@.";
  let v, s = storage_ladder () in
  Format.printf "  vfscore + ramfs: hit %5.0f ns, miss %5.0f ns@." v.Ukapps.Webcache.hit_ns
    v.Ukapps.Webcache.miss_ns;
  Format.printf "  SHFS direct:     hit %5.0f ns, miss %5.0f ns  (%.1fx faster)@."
    s.Ukapps.Webcache.hit_ns s.Ukapps.Webcache.miss_ns
    (v.Ukapps.Webcache.hit_ns /. s.Ukapps.Webcache.hit_ns);
  Format.printf
    "@.=> the paper's thesis: pick the API level per component and win the@.   specialization factor without rewriting the OS.@."
