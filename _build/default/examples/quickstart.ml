(* Quickstart: configure a unikernel, build its image, boot it on a VMM,
   and run its main() — the whole Unikraft flow in ~40 lines.

   Run with: dune exec examples/quickstart.exe *)

module Cfg = Unikraft.Config
module Img = Unikraft.Image
module Vm = Unikraft.Vm

let ok = function Ok v -> v | Error e -> failwith e

let () =
  (* 1. Configure: pick micro-libraries through the Kconfig-style menu.
     A helloworld needs no scheduler, no network stack, no real libc. *)
  let cfg =
    ok
      (Cfg.make ~app:"app-hello" ~platform:"plat-kvm" ~libc:Cfg.Nolibc ~sched:Cfg.None_
         ~alloc:Cfg.Bootalloc ~mem_mb:8 ())
  in
  Format.printf "configuration: %a@." Cfg.pp cfg;

  (* 2. Build: the linker composes only the selected micro-libraries and
     dead-code-eliminates the rest. *)
  let image = ok (Img.build cfg) in
  Format.printf "image: %a@." Img.pp image;
  Format.printf "micro-libraries linked: %s@." (String.concat ", " (Img.libs image));

  (* 3. Boot on QEMU/KVM and inspect the phase-by-phase boot report. *)
  let env = ok (Vm.boot ~vmm:Ukplat.Vmm.Qemu cfg) in
  let bd = env.Vm.breakdown in
  Format.printf "boot: VMM %.2f ms + guest %.1f us = total %.2f ms@."
    (bd.Ukplat.Vmm.vmm_startup_ns /. 1e6)
    (bd.Ukplat.Vmm.guest_ns /. 1e3)
    (bd.Ukplat.Vmm.total_ns /. 1e6);
  List.iter
    (fun p ->
      Format.printf "  [level %d] %-24s %a@." p.Ukboot.Boot.level p.Ukboot.Boot.phase
        Uksim.Units.pp_ns p.Ukboot.Boot.duration_ns)
    env.Vm.report.Ukboot.Boot.phases;

  (* 4. Run the application. *)
  Vm.run_main env (fun e ->
      let line = Ukapps.Hello.main ~clock:e.Vm.clock () in
      Format.printf "guest says: %s@." line);

  (* Compare with other VMMs, Fig 10 style. *)
  Format.printf "@.boot across VMMs:@.";
  List.iter
    (fun vmm ->
      let env = ok (Vm.boot ~vmm cfg) in
      let bd = env.Vm.breakdown in
      Format.printf "  %-14s total %6.2f ms (guest only: %5.1f us)@." (Ukplat.Vmm.name vmm)
        (bd.Ukplat.Vmm.total_ns /. 1e6)
        (bd.Ukplat.Vmm.guest_ns /. 1e3))
    [ Ukplat.Vmm.Qemu; Ukplat.Vmm.Qemu_microvm; Ukplat.Vmm.Firecracker; Ukplat.Vmm.Solo5 ]
