(* A Redis-like key-value unikernel under redis-benchmark-style load,
   swapping memory allocators to show the paper's Fig 18 effect.

   Run with: dune exec examples/keyvalue.exe *)

module Cfg = Unikraft.Config
module Vm = Unikraft.Vm
module A = Uknetstack.Addr

let ok = function Ok v -> v | Error e -> failwith e

let run_with ~alloc workload =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let wa, wb = Uknetdev.Wire.create_pair ~engine () in
  let cfg = ok (Cfg.make ~app:"app-redis" ~net:Cfg.Vhost_net ~alloc ~mem_mb:64 ()) in
  let env = ok (Vm.boot ~vmm:Ukplat.Vmm.Qemu ~clock ~engine ~wire:wa cfg) in
  let sched = Option.get env.Vm.sched in
  let server =
    Ukapps.Resp_store.create ~clock ~sched ~stack:(Option.get env.Vm.stack) ~alloc:env.Vm.alloc
      ()
  in
  let cdev =
    Uknetdev.Virtio_net.create ~clock ~engine ~backend:Uknetdev.Virtio_net.Vhost_net ~wire:wb ()
  in
  let cstack =
    Uknetstack.Stack.create ~clock ~engine ~sched ~dev:cdev
      { Uknetstack.Stack.mac = A.Mac.of_int 0x2; ip = A.Ipv4.of_string "172.44.0.3";
        netmask = A.Ipv4.of_string "255.255.255.0"; gateway = None }
  in
  Uknetstack.Stack.start cstack;
  let r =
    Ukapps.Resp_bench.run ~clock ~sched ~stack:cstack ~server:(A.Ipv4.of_string "172.44.0.2", 6379)
      ~connections:30 ~pipeline:16 ~requests:20_000 workload
  in
  (r.Ukapps.Resp_bench.rate_per_sec, Ukapps.Resp_store.stats server)

let () =
  Format.printf "redis-benchmark: 30 connections, pipeline 16, 20k requests@.@.";
  Format.printf "%-12s %14s %14s@." "allocator" "GET (req/s)" "SET (req/s)";
  List.iter
    (fun alloc ->
      let get, _ = run_with ~alloc Ukapps.Resp_bench.Get in
      let set, st = run_with ~alloc Ukapps.Resp_bench.Set in
      ignore st;
      Format.printf "%-12s %14.0f %14.0f@." (Cfg.alloc_backend_name alloc) get set)
    [ Cfg.Tlsf; Cfg.Mimalloc; Cfg.Tinyalloc; Cfg.Buddy ];
  Format.printf "@.=> as in the paper's Fig 18: no allocator wins everywhere;@.";
  Format.printf "   pick per workload via the ukalloc API (one Kconfig line).@."
