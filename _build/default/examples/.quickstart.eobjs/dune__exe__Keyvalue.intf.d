examples/keyvalue.mli:
