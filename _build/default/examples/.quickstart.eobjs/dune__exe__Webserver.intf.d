examples/webserver.mli:
