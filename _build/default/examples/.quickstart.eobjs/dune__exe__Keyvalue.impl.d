examples/keyvalue.ml: Format List Option Ukapps Uknetdev Uknetstack Ukplat Uksim Unikraft
