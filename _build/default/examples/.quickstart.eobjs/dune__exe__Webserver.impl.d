examples/webserver.ml: Bytes Format Option Result Ukalloc Ukapps Uknetdev Uknetstack Ukplat Uksim Ukvfs Unikraft
