examples/ninep_tour.ml: Bytes Format List Option String Ukplat Uksim Ukvfs Unikraft
