examples/quickstart.ml: Format List String Ukapps Ukboot Ukplat Uksim Unikraft
