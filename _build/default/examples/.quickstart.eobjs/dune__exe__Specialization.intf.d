examples/specialization.mli:
