examples/nameserver.ml: Format List Option Printf String Ukalloc Ukapps Uknetdev Uknetstack Ukplat Uksched Uksim Unikraft
