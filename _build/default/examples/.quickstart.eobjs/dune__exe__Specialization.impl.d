examples/specialization.ml: Format Option Printf Ukalloc Ukapps Uknetdev Uknetstack Ukplat Uksched Uksim Ukvfs Unikraft
