examples/ninep_tour.mli:
