examples/quickstart.mli:
