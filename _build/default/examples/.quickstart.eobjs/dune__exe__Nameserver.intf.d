examples/nameserver.mli:
