(* Boot-time and memory-footprint experiments (Figs 10, 11, 14, 21;
   text1, text2). *)

open Common

let fig10 =
  {
    Bench.id = "fig10";
    group = "boot";
    descr = "boot time per VMM (guest vs VMM time)";
    run =
      (fun () ->
        row "%-14s %12s %14s %14s %12s\n" "vmm" "vmm(ms)" "guest,0nic(us)" "guest,1nic(us)"
          "total(ms)";
        List.iter
          (fun vmm ->
            let boot nics =
              (* The NIC-attached image needs the stack (and so a
                 scheduler); the bare image boots scheduler-less. *)
              let sched = if nics > 0 then Cfg.Coop else Cfg.None_ in
              let cfg =
                ok
                  (Cfg.make ~app:"app-hello" ~libc:Cfg.Nolibc ~sched ~alloc:Cfg.Bootalloc
                     ~net:(if nics > 0 then Cfg.Vhost_net else Cfg.No_net)
                     ())
              in
              (* For the 1-NIC case attach a wire. *)
              if nics = 0 then (ok (Vm.boot ~vmm cfg)).Vm.breakdown
              else begin
                let clock = Uksim.Clock.create () in
                let engine = Uksim.Engine.create clock in
                let wa, _ = Uknetdev.Wire.create_pair ~engine () in
                (ok (Vm.boot ~vmm ~clock ~engine ~wire:wa cfg)).Vm.breakdown
              end
            in
            let b0, b1 = Bench.phase ("boot_" ^ Vmm.name vmm) (fun () -> (boot 0, boot 1)) in
            row "%-14s %12.2f %14.1f %14.1f %12.2f\n" (Vmm.name vmm)
              (ms b0.Vmm.vmm_startup_ns) (us b0.Vmm.guest_ns) (us b1.Vmm.guest_ns)
              (ms b1.Vmm.total_ns))
          [ Vmm.Qemu; Vmm.Qemu_microvm; Vmm.Firecracker; Vmm.Solo5 ];
        row "=> guest boot is tens-to-hundreds of us; total time is dominated by the VMM\n");
  }

(* Fig 11: minimum memory to boot and exercise each application. The
   workload allocates the app's working set from the configured
   allocator; a size works if nothing failed. *)
let min_memory_mb ~app ~alloc ~workload =
  let works mem_mb =
    match
      Cfg.make ~app ~alloc ~mem_mb
        ~fs:(if app = "app-sqlite" then Cfg.Ramfs else Cfg.No_fs)
        ()
    with
    | Error _ -> false
    | Ok cfg -> (
        match Vm.boot ~vmm:Vmm.Qemu cfg with
        | Error _ -> false
        | Ok env -> (
            match workload env with
            | () -> (env.Vm.alloc.Ukalloc.Alloc.stats ()).Ukalloc.Alloc.failed = 0
            | exception _ -> false))
  in
  let rec scan m = if m > 64 then m else if works m then m else scan (m + 1) in
  scan 2

let alloc_n env ~count ~size =
  (* Exercise the allocator like the app's steady state: a persistent
     working set plus short-lived per-request buffers. *)
  let a = env.Vm.alloc in
  for _ = 1 to count do
    ignore (Ukalloc.Alloc.uk_malloc a size)
  done;
  for _ = 1 to count do
    match Ukalloc.Alloc.uk_malloc a 512 with
    | Some addr -> Ukalloc.Alloc.uk_free a addr
    | None -> ()
  done

let fig11 =
  {
    Bench.id = "fig11";
    group = "boot";
    descr = "minimum memory needed to run each application";
    run =
      (fun () ->
        let workloads =
          [
            ("hello", "app-hello", fun _ -> ());
            ("nginx", "app-nginx", fun env -> alloc_n env ~count:600 ~size:2048);
            ("redis", "app-redis", fun env -> alloc_n env ~count:1500 ~size:1024);
            ("sqlite", "app-sqlite", fun env -> alloc_n env ~count:1000 ~size:1024);
          ]
        in
        row "%-14s %8s %8s %8s %8s\n" "OS" "hello" "nginx" "redis" "sqlite";
        let uk =
          List.map
            (fun (name, app, wl) -> (name, min_memory_mb ~app ~alloc:Cfg.Tlsf ~workload:wl))
            workloads
        in
        let cell sizes app =
          match List.assoc_opt app sizes with Some mb -> Printf.sprintf "%dMB" mb | None -> "-"
        in
        row "%-14s %8s %8s %8s %8s\n" "unikraft" (cell uk "hello") (cell uk "nginx")
          (cell uk "redis") (cell uk "sqlite");
        List.iter
          (fun p ->
            let s = p.Ukos.Profiles.min_mem_mb in
            row "%-14s %8s %8s %8s %8s\n" p.Ukos.Profiles.os_name (cell s "hello")
              (cell s "nginx") (cell s "redis") (cell s "sqlite"))
          Ukos.Profiles.all;
        row "=> Unikraft guests need single-digit MBs; other systems tens to hundreds\n");
  }

let fig14 =
  {
    Bench.id = "fig14";
    group = "boot";
    descr = "nginx guest boot time per allocator (1GB heap)";
    run =
      (fun () ->
        row "%-12s %14s\n" "allocator" "guest boot(ms)";
        List.iter
          (fun alloc ->
            let clock = Uksim.Clock.create () in
            let engine = Uksim.Engine.create clock in
            let wa, _ = Uknetdev.Wire.create_pair ~engine () in
            let cfg = ok (Cfg.make ~app:"app-nginx" ~alloc ~net:Cfg.Vhost_net ~mem_mb:1024 ()) in
            let env = ok (Vm.boot ~vmm:Vmm.Qemu ~clock ~engine ~wire:wa cfg) in
            row "%-12s %14.2f\n" (alloc_name alloc) (ms env.Vm.breakdown.Vmm.guest_ns))
          all_allocs;
        row "=> just-in-time instantiation should avoid the buddy allocator (paper: 0.49-3.07ms)\n");
  }

let fig21 =
  {
    Bench.id = "fig21";
    group = "boot";
    descr = "boot time: static vs dynamic page-table initialization";
    run =
      (fun () ->
        row "%-8s %16s %16s\n" "RAM" "static(us)" "dynamic(us)";
        List.iter
          (fun mem_mb ->
            let boot paging =
              let cfg =
                ok
                  (Cfg.make ~app:"app-hello" ~libc:Cfg.Nolibc ~sched:Cfg.None_
                     ~alloc:Cfg.Bootalloc ~paging ~mem_mb ())
              in
              (ok (Vm.boot ~vmm:Vmm.Qemu cfg)).Vm.breakdown.Vmm.guest_ns
            in
            row "%-8s %16.1f %16.1f\n"
              (Printf.sprintf "%dMB" mem_mb)
              (us (boot Cfg.Static_pt))
              (us (boot Cfg.Dynamic_pt)))
          [ 32; 128; 512; 1024 ];
        row "=> static cost is flat; dynamic grows linearly with RAM (paper Fig 21)\n");
  }

let text1 =
  {
    Bench.id = "text1";
    group = "boot";
    descr = "unikernel boot-time baselines (§5.1)";
    run =
      (fun () ->
        row "%-14s %12s %s\n" "system" "boot(ms)" "notes";
        let uk vmm =
          let cfg =
            ok (Cfg.make ~app:"app-hello" ~libc:Cfg.Nolibc ~sched:Cfg.None_ ~alloc:Cfg.Bootalloc ())
          in
          (ok (Vm.boot ~vmm cfg)).Vm.breakdown.Vmm.guest_ns
        in
        row "%-14s %12.3f %s\n" "unikraft/qemu" (ms (uk Vmm.Qemu)) "guest only";
        row "%-14s %12.3f %s\n" "unikraft/fc" (ms (uk Vmm.Firecracker)) "guest only";
        List.iter
          (fun p ->
            match p.Ukos.Profiles.boot_ns with
            | Some ns -> row "%-14s %12.1f %s\n" p.Ukos.Profiles.os_name (ms ns) p.Ukos.Profiles.notes
            | None -> ())
          Ukos.Profiles.all);
  }

let text2 =
  {
    Bench.id = "text2";
    group = "boot";
    descr = "9pfs device boot-time overhead (§5.2)";
    run =
      (fun () ->
        let boot vmm fs =
          let cfg =
            ok (Cfg.make ~app:"app-sqlite" ~fs ~alloc:Cfg.Tlsf ~mem_mb:32 ())
          in
          (ok (Vm.boot ~vmm cfg)).Vm.breakdown.Vmm.guest_ns
        in
        List.iter
          (fun (name, vmm) ->
            let without = boot vmm Cfg.Ramfs in
            let with9p = boot vmm Cfg.Ninep in
            row "%-6s guest boot: ramfs %.2fms, 9pfs %.2fms (+%.2fms)\n" name (ms without)
              (ms with9p)
              (ms (with9p -. without)))
          [ ("kvm", Vmm.Qemu); ("xen", Vmm.Xen) ];
        row "=> paper: +0.3ms on KVM, +2.7ms on Xen\n");
  }

let register () = List.iter Bench.register_exp [ fig10; fig11; fig14; fig21; text1; text2 ]
