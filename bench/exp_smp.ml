(* Core-scaling benchmark over the uksmp substrate.

   The paper's evaluation is single-core; this experiment measures what
   the multicore substrate buys: httpd and RESP throughput at 1/2/4/8
   server cores (weak scaling — fixed per-core load, so ideal scaling is
   rate proportional to cores with flat elapsed), a per-core-arena vs.
   shared-lock allocator ablation at 4 cores, and a same-seed 8-core
   determinism replay. A machine-readable summary lands in
   BENCH_smp.json for CI to gate on. *)

open Common
module Cluster = Ukapps.Cluster
module Spin = Uklock.Lock.Spin

let core_counts = [ 1; 2; 4; 8 ]
let page = String.make 612 'x' (* the paper's static page size *)

let httpd_requests_per_core () = scaled 4000
let resp_requests_per_core () = scaled 8000

let run_httpd ?(alloc_mode = Cluster.Arena) ?(seed = 1) ~n () =
  Bench.trial ();
  let c = Cluster.create ~seed ~alloc_mode ~n () in
  ignore (Cluster.add_httpd c (Ukapps.Httpd.In_memory [ ("/index.html", page) ]));
  let r =
    Cluster.run_httpd_load c ~connections_per_core:8
      ~requests_per_core:(httpd_requests_per_core ()) ()
  in
  (c, r)

let run_resp ?(alloc_mode = Cluster.Arena) ?(seed = 1) ~n workload =
  Bench.trial ();
  let c = Cluster.create ~seed ~alloc_mode ~n () in
  (* 4096 keys covers Resp_bench's whole key space, so GETs are all hits. *)
  ignore (Cluster.add_resp c ~populate:4096 ());
  (* Prepopulation runs on core 0 before the load; drop its lock traffic so
     the reported spin stats cover only the measured serving phase. *)
  Spin.reset_stats (Cluster.alloc_spin c);
  let r =
    Cluster.run_resp_load c ~connections_per_core:8
      ~requests_per_core:(resp_requests_per_core ()) workload
  in
  (c, r)

(* One line that must replay byte-identically for a fixed seed. *)
let httpd_fingerprint c (r : Ukapps.Wrk.result) =
  Printf.sprintf "trace=%016x requests=%d errors=%d rate=%.6f elapsed=%.6f"
    (Cluster.trace_hash c) r.Ukapps.Wrk.requests r.Ukapps.Wrk.errors
    r.Ukapps.Wrk.rate_per_sec r.Ukapps.Wrk.elapsed_ns

let smp =
  {
    Bench.id = "smp";
    group = "smp";
    descr = "core scaling: httpd + RESP over uksmp (1/2/4/8 cores)";
    run =
      (fun () ->
        (* --- httpd scaling curve --- *)
        row "httpd, %d requests/core, 8 connections/core (weak scaling)\n"
          (httpd_requests_per_core ());
        row "%-8s %12s %10s %12s %8s\n" "cores" "kreq/s" "speedup" "elapsed ms" "errors";
        let httpd_rates =
          Bench.phase "httpd_scaling" (fun () ->
              List.map
                (fun n ->
                  let _, r = run_httpd ~n () in
                  (n, r))
                core_counts)
        in
        let base_rate =
          (List.assoc 1 httpd_rates).Ukapps.Wrk.rate_per_sec
        in
        List.iter
          (fun (n, (r : Ukapps.Wrk.result)) ->
            row "%-8d %12.1f %9.2fx %12.2f %8d\n" n (kreq r.rate_per_sec)
              (r.rate_per_sec /. base_rate) (ms r.elapsed_ns) r.errors)
          httpd_rates;
        let speedup_4 =
          (List.assoc 4 httpd_rates).Ukapps.Wrk.rate_per_sec /. base_rate
        in

        (* --- RESP scaling curves --- *)
        let resp_curve workload label =
          row "\nRESP %s, %d requests/core, pipeline 16 (weak scaling)\n" label
            (resp_requests_per_core ());
          row "%-8s %12s %10s %8s\n" "cores" "kreq/s" "speedup" "errors";
          let runs =
            Bench.phase ("resp_" ^ String.lowercase_ascii label) (fun () ->
                List.map
                  (fun n ->
                    let _, r = run_resp ~n workload in
                    (n, r))
                  core_counts)
          in
          let base = (List.assoc 1 runs).Ukapps.Resp_bench.rate_per_sec in
          List.iter
            (fun (n, (r : Ukapps.Resp_bench.result)) ->
              row "%-8d %12.1f %9.2fx %8d\n" n (kreq r.rate_per_sec)
                (r.rate_per_sec /. base) r.errors)
            runs;
          runs
        in
        ignore (resp_curve Ukapps.Resp_bench.Get "GET");
        let set_runs = resp_curve Ukapps.Resp_bench.Set "SET" in
        ignore set_runs;

        (* --- allocator ablation: per-core arena vs one shared lock --- *)
        row "\nallocator ablation, RESP SET at 4 cores\n";
        row "%-14s %12s %16s %16s\n" "allocator" "kreq/s" "spin waits" "spin wait cyc";
        let ablate mode label =
          let c, r = run_resp ~alloc_mode:mode ~n:4 Ukapps.Resp_bench.Set in
          let st = Spin.stats (Cluster.alloc_spin c) in
          row "%-14s %12.1f %16d %16d\n" label
            (kreq r.Ukapps.Resp_bench.rate_per_sec)
            st.Spin.contended st.Spin.wait_cycles;
          r.Ukapps.Resp_bench.rate_per_sec
        in
        let arena_rate, shared_rate =
          Bench.phase "alloc_ablation" (fun () ->
              let arena = ablate Cluster.Arena "per-core arena" in
              let shared = ablate Cluster.Shared_lock "shared lock" in
              (arena, shared))
        in
        row "arena/shared: %.2fx\n" (arena_rate /. shared_rate);

        (* --- determinism: same seed, 8 cores, twice --- *)
        let fp () =
          let c, r = run_httpd ~seed:7 ~n:8 () in
          httpd_fingerprint c r
        in
        let fp1, fp2 = Bench.phase "determinism" (fun () -> (fp (), fp ())) in
        let det_ok = String.equal fp1 fp2 in
        row "\ndeterminism (8 cores, seed 7): %s\n"
          (if det_ok then "byte-identical replay" else "MISMATCH");
        row "  run 1: %s\n  run 2: %s\n" fp1 fp2;

        (* --- tracing invariance: same run with the tracer live --- *)
        (* The uktrace determinism guarantee, gated in CI: spans and the
           profiling sampler must not move the simulation by a cycle, so
           the fingerprint (which includes the uksmp trace hash) has to
           replay byte-identically with tracing on. *)
        let tracer = Uktrace.Tracer.default in
        let was = Uktrace.Tracer.enabled tracer in
        Uktrace.Tracer.set_enabled tracer true;
        let fp3 = fp () in
        Uktrace.Tracer.set_enabled tracer was;
        let trace_ok = String.equal fp1 fp3 in
        row "tracing-on replay: %s\n"
          (if trace_ok then "byte-identical (tracer is invisible)" else "MISMATCH");

        (* --- machine-readable summary for CI --- *)
        Bench.emit "httpd_rate_per_sec"
          (Printf.sprintf "{%s}"
             (String.concat ", "
                (List.map
                   (fun (n, (r : Ukapps.Wrk.result)) ->
                     Printf.sprintf "\"%d\": %.1f" n r.rate_per_sec)
                   httpd_rates)));
        Bench.emit "speedup_4" (Printf.sprintf "%.3f" speedup_4);
        Bench.emit "arena_rate_per_sec" (Printf.sprintf "%.1f" arena_rate);
        Bench.emit "sharedlock_rate_per_sec" (Printf.sprintf "%.1f" shared_rate);
        Bench.emit_b "determinism_ok" det_ok;
        Bench.emit_b "trace_invariant_ok" trace_ok);
  }

let register () = Bench.register_exp smp
