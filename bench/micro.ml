(* Bechamel micro-benchmarks: real (wall-clock) cost of the hot
   primitives of each table's code path. One group per paper table. *)

open Bechamel

let mib = Uksim.Units.mib

(* Table 1 group: syscall dispatch paths. *)
let tab1_tests =
  let mk name mode =
    let clock = Uksim.Clock.create () in
    let shim = Uksyscall.Shim.create ~clock ~mode in
    Uksyscall.Shim.register shim ~sysno:0 (fun _ -> Ok 0);
    Test.make ~name (Staged.stage (fun () -> Uksyscall.Shim.call shim ~sysno:0 [||]))
  in
  [
    mk "dispatch/native" Uksyscall.Shim.Native_link;
    mk "dispatch/bincompat" Uksyscall.Shim.Binary_compat;
    mk "dispatch/linux" Uksyscall.Shim.Linux_vm;
  ]

(* Table 2 group: the link-check machinery over the porting dataset. *)
let tab2_tests =
  [
    Test.make ~name:"porting/table2"
      (Staged.stage (fun () -> ignore (Ukbuild.Porting.table2 ())));
    Test.make ~name:"porting/link-nginx"
      (Staged.stage
         (let e =
            List.find (fun (x : Ukbuild.Porting.entry) -> x.Ukbuild.Porting.lib = "lib-nginx")
              Ukbuild.Porting.entries
          in
          fun () ->
            ignore
              (Ukbuild.Porting.link_check e
                 { Ukbuild.Porting.libc = Ukbuild.Porting.Musl; compat_layer = true })));
  ]

(* Table 4 group: the per-request primitives of the KV fast path. *)
let tab4_tests =
  let clock = Uksim.Clock.create () in
  let alloc = Ukalloc.Tlsf.create ~clock ~base:(mib 64) ~len:(mib 64) in
  let store = Ukapps.Udp_kv.create_store ~clock ~alloc in
  Ukapps.Udp_kv.store_set store "k0001" "v";
  let nb =
    let b = Uknetdev.Netbuf.of_bytes (Bytes.of_string "G k0001") in
    let src = Uknetstack.Addr.Ipv4.of_string "10.0.0.2" in
    let dst = Uknetstack.Addr.Ipv4.of_string "10.0.0.1" in
    Uknetstack.Pkt.Udp.encode { Uknetstack.Pkt.Udp.src_port = 6000; dst_port = 5000 } ~src ~dst b;
    Uknetstack.Pkt.Ipv4.encode
      (Uknetstack.Pkt.Ipv4.header ~src ~dst ~proto:Uknetstack.Pkt.Ipv4.Udp
         ~payload_len:(Uknetdev.Netbuf.len b))
      b;
    Uknetdev.Netbuf.to_payload b
  in
  [
    Test.make ~name:"udpkv/store-get"
      (Staged.stage (fun () -> Ukapps.Udp_kv.store_get store "k0001"));
    Test.make ~name:"udpkv/ip-udp-decode"
      (Staged.stage (fun () ->
           let b = Uknetdev.Netbuf.of_bytes nb in
           let src = Uknetstack.Addr.Ipv4.of_string "10.0.0.2" in
           let dst = Uknetstack.Addr.Ipv4.of_string "10.0.0.1" in
           match Uknetstack.Pkt.Ipv4.decode b with
           | Ok _ -> ignore (Uknetstack.Pkt.Udp.decode ~src ~dst b)
           | Error _ -> ()));
  ]

(* Allocator group (Figs 14-18 substrate). *)
let alloc_tests =
  let mk name create =
    let a = create () in
    Test.make ~name
      (Staged.stage (fun () ->
           match a.Ukalloc.Alloc.malloc 128 with
           | Some addr -> a.Ukalloc.Alloc.free addr
           | None -> ()))
  in
  [
    mk "alloc/tlsf" (fun () ->
        Ukalloc.Tlsf.create ~clock:(Uksim.Clock.create ()) ~base:(mib 16) ~len:(mib 16));
    mk "alloc/buddy" (fun () ->
        Ukalloc.Buddy.create ~clock:(Uksim.Clock.create ()) ~base:(mib 16) ~len:(mib 16));
    mk "alloc/mimalloc" (fun () ->
        Ukalloc.Mimalloc.create ~clock:(Uksim.Clock.create ()) ~base:(mib 16) ~len:(mib 16));
    mk "alloc/tinyalloc" (fun () ->
        Ukalloc.Tinyalloc.create ~clock:(Uksim.Clock.create ()) ~base:(mib 16) ~len:(mib 16) ());
  ]

(* Support-library group: the data structures under the drivers. *)
let support_tests =
  let ring = Ukring.Ring.create ~capacity:256 () in
  let wheel_clock = ref 0 in
  let wheel = Uktime.Wheel.create ~now:0 () in
  let dns_msg =
    Ukapps.Dns.encode
      { Ukapps.Dns.id = 1; query = false; rcode = Ukapps.Dns.No_error;
        recursion_desired = false;
        questions = [ { Ukapps.Dns.qname = "www.example.com"; qtype = Ukapps.Dns.A } ];
        answers =
          [ { Ukapps.Dns.name = "www.example.com"; rtype = Ukapps.Dns.A; ttl = 60;
              rdata = Ukapps.Dns.Ipv4_addr (Uknetstack.Addr.Ipv4.of_string "10.0.0.1") } ];
        authority = [] }
  in
  [
    Test.make ~name:"support/ring-enq-deq"
      (Staged.stage (fun () ->
           ignore (Ukring.Ring.enqueue ring 42);
           ignore (Ukring.Ring.dequeue ring)));
    Test.make ~name:"support/wheel-arm-cancel"
      (Staged.stage (fun () ->
           wheel_clock := !wheel_clock + 257;
           let t = Uktime.Wheel.arm wheel ~deadline:(!wheel_clock + 100_000) (fun () -> ()) in
           ignore (Uktime.Wheel.cancel wheel t)));
    Test.make ~name:"support/dns-decode"
      (Staged.stage (fun () -> ignore (Ukapps.Dns.decode dns_msg)));
  ]

let groups =
  [
    Test.make_grouped ~name:"tab1" tab1_tests;
    Test.make_grouped ~name:"tab2" tab2_tests;
    Test.make_grouped ~name:"tab4" tab4_tests;
    Test.make_grouped ~name:"alloc" alloc_tests;
    Test.make_grouped ~name:"support" support_tests;
  ]

let run () =
  Printf.printf "\n=== bechamel micro-benchmarks (real wall-clock, ns/op) ===\n%!";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  List.iter
    (fun group ->
      let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] group in
      let results =
        Analyze.all
          (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock raw
      in
      let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> Printf.printf "%-36s %12.1f ns/op\n" name t
          | Some [] | None -> Printf.printf "%-36s %12s\n" name "n/a")
        (List.sort compare rows))
    groups
