(* Build-side experiments: dependency graphs, image sizes, porting study,
   syscall support analyses (Figs 1-3, 5-9; Table 2). *)

open Common
module G = Ukgraph.Digraph
module L = Ukbuild.Linker
module Cat = Ukbuild.Catalog
module P = Ukbuild.Porting

let fig01 =
  {
    Bench.id = "fig01";
    group = "build";
    descr = "Linux kernel component dependency graph";
    run =
      (fun () ->
        let g = Ukgraph.Linux_kernel.graph () in
        row "%-10s %10s %10s %12s\n" "component" "out-edges" "in-edges" "out-calls";
        List.iter
          (fun c ->
            let out_calls =
              List.fold_left (fun acc s -> acc + G.weight g c s) 0 (G.succs g c)
            in
            row "%-10s %10d %10d %12d\n" c (G.out_degree g c) (G.in_degree g c) out_calls)
          Ukgraph.Linux_kernel.components;
        row "components=%d edges=%d total-dependencies=%d density=%.2f\n" (G.n_nodes g)
          (G.n_edges g) (G.total_weight g) (Ukgraph.Linux_kernel.density ());
        row
          "=> removing any single component requires fixing its dependents, e.g. mm: %d dependents\n"
          (List.length (Ukgraph.Linux_kernel.removal_impact "mm")));
  }

let image_of ?(flags = L.default_flags) ?(net = false) ?(fs = false) ?alloc ?sched ~plat app =
  let r = Cat.registry () in
  let roots = Cat.app_roots ~app ~net ~fs ?alloc ?sched () in
  match L.link r ~name:app ~platform:plat ~roots ~flags () with
  | Ok img -> img
  | Error e -> failwith e

let dep_graph_exp id name app net alloc sched =
  {
    Bench.id = id;
    group = "build";
    descr = Printf.sprintf "%s Unikraft dependency graph" name;
    run =
      (fun () ->
        let img = image_of ~net ?alloc ?sched ~plat:"plat-kvm" app in
        row "libraries (%d): %s\n" (List.length img.L.libs) (String.concat " " img.L.libs);
        row "%-16s -> %s\n" "library" "dependencies (api calls)";
        List.iter
          (fun lib ->
            let succs = G.succs img.L.dep_graph lib in
            if succs <> [] then
              row "%-16s -> %s\n" lib
                (String.concat ", "
                   (List.map
                      (fun d -> Printf.sprintf "%s(%d)" d (G.weight img.L.dep_graph lib d))
                      succs)))
          (G.nodes img.L.dep_graph);
        row "image: %s\n" (Fmt.str "%a" L.pp_image img));
  }

let fig02 = dep_graph_exp "fig02" "nginx" "app-nginx" true (Some "alloc-tlsf") (Some "sched-coop")
let fig03 = dep_graph_exp "fig03" "helloworld" "app-hello" false None None

let fig04 =
  {
    Bench.id = "fig04";
    group = "build";
    descr = "the Unikraft architecture: APIs and specialization scenarios";
    run =
      (fun () ->
        row "%s\n"
          (String.concat "\n"
             [
               "  app layer      : app-{hello,nginx,redis,sqlite,webcache,udpkv,httpreply}";
               "  libc layer     : nolibc | musl (+glibc-compat) | newlib        (1)";
               "  posix layer    : uksyscall shim (146 syscalls, ENOSYS stubs)";
               "  socket/file    : lwip sockets (2)        vfscore (3)";
               "  core APIs      : uksched (4) | ukboot (5) | ukalloc (6) |";
               "                   uknetdev (7) | ukblock (8)";
               "  backends       : {coop,preempt} | {buddy,tlsf,tinyalloc,mimalloc,";
               "                   bootalloc,oscar} | virtio-net/{vhost-net,vhost-user} |";
               "                   virtio-blk/ramdisk | ramfs/9pfs/shfs";
               "  platform       : plat-{kvm,xen,fc,solo5,linuxu}";
               "  support        : ukdebug ukring uktime uklibparam ukmpk ukasan";
             ]);
        row "\nscenario -> experiment map:\n";
        List.iter
          (fun (n, what) -> row "  (%d) %s\n" n what)
          [
            (1, "unmodified app + libc: figs 12/13/17");
            (2, "standard sockets over lwip: figs 12/13, tab 4 LWIP row");
            (3, "vfscore path vs specialized SHFS: fig 22");
            (4, "pluggable schedulers: coop vs preempt vs none (run-to-completion)");
            (5, "specialized boot code: fig 21 (page tables), fig 14 (allocators)");
            (6, "pluggable allocators: figs 14-18");
            (7, "raw uknetdev: fig 19, tab 4 uknetdev row");
            (8, "raw ukblock: abl-block");
          ])
  }

let fig05 =
  {
    Bench.id = "fig05";
    group = "build";
    descr = "syscalls required by 30 server apps vs supported (heatmap)";
    run =
      (fun () ->
        let hm = Uksyscall.Appdb.heatmap () in
        row "legend: '.'=unneeded  1-9,#=apps needing it  uppercase=supported by Unikraft\n";
        List.iteri
          (fun i cell ->
            if i mod 32 = 0 then row "\n%3d  " i;
            let open Uksyscall.Appdb in
            let c =
              if cell.needed_by = 0 then if cell.supported then 'o' else '.'
              else begin
                let d =
                  if cell.needed_by >= 30 then '#'
                  else Char.chr (Char.code '0' + min 9 (cell.needed_by / 4 + 1))
                in
                if cell.supported then
                  (* uppercase-ish marker: letters A.. for supported *)
                  Char.chr (Char.code d - Char.code '0' + Char.code 'A')
                else d
              end
            in
            print_char c)
          hm;
        row "\n";
        let needed = List.filter (fun c -> c.Uksyscall.Appdb.needed_by > 0) hm in
        let supported_needed =
          List.filter (fun c -> c.Uksyscall.Appdb.supported) needed
        in
        row "needed by >=1 app: %d/314; of those supported: %d (%.0f%%)\n" (List.length needed)
          (List.length supported_needed)
          (100.0 *. float_of_int (List.length supported_needed) /. float_of_int (List.length needed)));
  }

let fig06 =
  {
    Bench.id = "fig06";
    group = "build";
    descr = "developer survey: porting effort over time";
    run =
      (fun () ->
        row "%-8s %10s %10s %10s %10s\n" "quarter" "lib(h)" "deps(h)" "OS(h)" "build(h)";
        List.iter
          (fun (q, (l, d, o, b)) -> row "%-8s %10.1f %10.1f %10.1f %10.1f\n" q l d o b)
          (P.Survey.by_quarter ());
        row "=> dependency and OS-primitive effort collapses as the common code base matures\n");
  }

let fig07 =
  {
    Bench.id = "fig07";
    group = "build";
    descr = "syscall support per app: now / +5 / +10 / +15 most-wanted";
    run =
      (fun () ->
        row "%-18s %5s %6s %6s %6s %6s\n" "application" "#req" "now" "+5" "+10" "+15";
        List.iter
          (fun c ->
            let open Uksyscall.Appdb in
            row "%-18s %5d %5.0f%% %5.0f%% %5.0f%% %5.0f%%\n" c.app c.n_required
              (100. *. c.now) (100. *. c.plus5) (100. *. c.plus10) (100. *. c.plus15))
          (Uksyscall.Appdb.coverage ());
        let next = Uksyscall.Appdb.most_wanted_missing 5 in
        row "next 5 most-wanted: %s\n"
          (String.concat ", " (List.map Uksyscall.Sysno.name next)));
  }

let fig08 =
  {
    Bench.id = "fig08";
    group = "build";
    descr = "Unikraft image sizes with and without LTO and DCE";
    run =
      (fun () ->
        row "%-12s %12s %12s %12s %12s\n" "app" "plain" "+DCE" "+LTO" "+DCE+LTO";
        List.iter
          (fun (app, net, fs) ->
            let sz dce lto =
              (image_of ~flags:{ L.dce; lto } ~net ~fs ~alloc:"alloc-tlsf" ~sched:"sched-coop"
                 ~plat:"plat-kvm" app)
                .L.image_bytes
            in
            let hello = app = "app-hello" in
            let sz dce lto =
              if hello then (image_of ~flags:{ L.dce; lto } ~plat:"plat-kvm" app).L.image_bytes
              else sz dce lto
            in
            row "%-12s %10dKB %10dKB %10dKB %10dKB\n"
              (String.sub app 4 (String.length app - 4))
              (sz false false / 1024) (sz true false / 1024) (sz false true / 1024)
              (sz true true / 1024))
          [ ("app-hello", false, false); ("app-nginx", true, false); ("app-redis", true, false);
            ("app-sqlite", false, true) ]);
  }

let fig09 =
  {
    Bench.id = "fig09";
    group = "build";
    descr = "image sizes: Unikraft vs other OSes (stripped, w/o LTO+DCE)";
    run =
      (fun () ->
        let flags = { L.dce = true; lto = false } in
        let uk app net fs =
          let img =
            if app = "app-hello" then image_of ~flags ~plat:"plat-kvm" app
            else image_of ~flags ~net ~fs ~alloc:"alloc-tlsf" ~sched:"sched-coop"
                ~plat:"plat-kvm" app
          in
          img.L.image_bytes / 1024
        in
        let uk_sizes =
          [ ("hello", uk "app-hello" false false); ("nginx", uk "app-nginx" true false);
            ("redis", uk "app-redis" true false); ("sqlite", uk "app-sqlite" false true) ]
        in
        row "%-14s %10s %10s %10s %10s\n" "OS" "hello" "nginx" "redis" "sqlite";
        let print_row name sizes =
          let cell app =
            match List.assoc_opt app sizes with
            | Some kb -> Printf.sprintf "%dKB" kb
            | None -> "-"
          in
          row "%-14s %10s %10s %10s %10s\n" name (cell "hello") (cell "nginx") (cell "redis")
            (cell "sqlite")
        in
        print_row "unikraft" uk_sizes;
        List.iter
          (fun p -> print_row p.Ukos.Profiles.os_name p.Ukos.Profiles.image_kb)
          Ukos.Profiles.all);
  }

let tab02 =
  {
    Bench.id = "tab02";
    group = "build";
    descr = "automated porting vs musl/newlib (Table 2)";
    run =
      (fun () ->
        let mark b = if b then "ok" else "X" in
        row "%-18s %8s %5s %8s %8s %5s %8s %6s\n" "library" "musl-MB" "std" "compat"
          "newlibMB" "std" "compat" "glue";
        List.iter
          (fun r ->
            row "%-18s %8.3f %5s %8s %8.3f %5s %8s %6d\n" r.P.name r.P.musl_mb
              (mark r.P.musl_std) (mark r.P.musl_compat) r.P.newlib_mb (mark r.P.newlib_std)
              (mark r.P.newlib_compat) r.P.glue)
          (P.table2 ());
        let rows = P.table2 () in
        let count f = List.length (List.filter f rows) in
        row "=> musl std: %d/24 build; with compat layer: %d/24; newlib std: %d/24\n"
          (count (fun r -> r.P.musl_std))
          (count (fun r -> r.P.musl_compat))
          (count (fun r -> r.P.newlib_std)));
  }

let register () = List.iter Bench.register_exp [ fig01; fig02; fig03; fig04; fig05; fig06; fig07; fig08; fig09; tab02 ]
