(* Application-performance experiments: syscall costs, Redis/nginx
   throughput vs other OSes, allocator sweeps, SQLite runs (Table 1;
   Figs 12, 13, 15, 16, 17, 18). *)

open Common
module Shim = Uksyscall.Shim

let tab01 =
  {
    Bench.id = "tab01";
    group = "perf";
    descr = "cost of binary compatibility / syscalls (Table 1)";
    run =
      (fun () ->
        let n = 10_000 in
        let measure mode =
          let clock = Uksim.Clock.create () in
          let shim = Shim.create ~clock ~mode in
          Shim.register shim ~sysno:39 (fun _ -> Ok 0);
          let s = Uksim.Clock.start clock in
          for _ = 1 to n do
            ignore (Shim.call shim ~sysno:39 [||])
          done;
          let cycles = float_of_int (Uksim.Clock.elapsed_cycles clock s) /. float_of_int n in
          (cycles, cycles /. Uksim.Clock.ghz)
        in
        row "%-16s %-28s %8s %8s\n" "platform" "routine call" "#cycles" "nsecs";
        let p (plat, what, mode) =
          let c, ns = measure mode in
          row "%-16s %-28s %8.1f %8.2f\n" plat what c ns
        in
        List.iter p
          [
            ("Linux/KVM", "System call", Shim.Linux_vm);
            ("Linux/KVM", "System call (no mitig.)", Shim.Linux_vm_nomitig);
            ("Unikraft/KVM", "System call (bin compat)", Shim.Binary_compat);
            ("Both", "Function call", Shim.Native_link);
          ];
        row "=> paper: 222.0 / 154.0 / 84.0 / 4.0 cycles\n");
  }

(* Shared Redis measurement. *)
let redis_rate ?(alloc = Cfg.Mimalloc) ?(requests = 100_000) workload =
  let s = serve_vm ~alloc ~app:"app-redis" () in
  let _server =
    Ukapps.Resp_store.create ~clock:s.clock ~sched:s.sched ~stack:(Option.get s.env.Vm.stack)
      ~alloc:s.env.Vm.alloc ()
  in
  let wl = match workload with Ukapps.Resp_bench.Get -> "get" | _ -> "set" in
  let r =
    Bench.phase (Printf.sprintf "redis_%s_%s" (alloc_name alloc) wl) (fun () ->
        Ukapps.Resp_bench.run ~clock:s.clock ~sched:s.sched ~stack:s.client_stack
          ~server:(s.server_ip, 6379) ~connections:30 ~pipeline:16 ~requests:(scaled requests)
          workload)
  in
  r.Ukapps.Resp_bench.rate_per_sec

let nginx_rate ?(alloc = Cfg.Mimalloc) ?(requests = 30_000) () =
  let s = serve_vm ~alloc ~app:"app-nginx" () in
  let _httpd =
    Ukapps.Httpd.create ~clock:s.clock ~sched:s.sched ~stack:(Option.get s.env.Vm.stack)
      ~alloc:s.env.Vm.alloc
      (Ukapps.Httpd.In_memory [ ("/index.html", Ukapps.Httpd.default_page) ])
  in
  let r =
    Bench.phase ("wrk_" ^ alloc_name alloc) (fun () ->
        Ukapps.Wrk.run ~clock:s.clock ~sched:s.sched ~stack:s.client_stack
          ~server:(s.server_ip, 80) ~connections:30 ~requests:(scaled requests) ())
  in
  r.Ukapps.Wrk.rate_per_sec

(* Baseline OS rate derived from the measured Unikraft rate and the
   profile's relative per-request path length (see ukos/profiles.mli). *)
let baseline_rate uk_rate profile app =
  Option.map (fun f -> uk_rate /. f) (Ukos.Profiles.request_cost_factor profile ~app)

let fig12 =
  {
    Bench.id = "fig12";
    group = "perf";
    descr = "Redis throughput (30 conns, 100k reqs, pipelining 16)";
    run =
      (fun () ->
        let uk = redis_rate Ukapps.Resp_bench.Get in
        row "%-18s %14s %14s\n" "system" "qemu/kvm(k/s)" "firecracker(k/s)";
        row "%-18s %14.0f %14.0f\n" "unikraft" (kreq uk)
          (kreq (uk *. Ukos.Profiles.firecracker_penalty));
        List.iter
          (fun p ->
            match baseline_rate uk p "redis" with
            | Some r ->
                row "%-18s %14.0f %14.0f\n" p.Ukos.Profiles.os_name (kreq r)
                  (kreq (r *. Ukos.Profiles.firecracker_penalty))
            | None -> row "%-18s %14s %14s\n" p.Ukos.Profiles.os_name "-" "-")
          Ukos.Profiles.all;
        row "=> paper: Unikraft 1.7-2.7x the Linux VM, ~30-80%% over Docker, ~50%% over Lupine\n");
  }

let fig13 =
  {
    Bench.id = "fig13";
    group = "perf";
    descr = "nginx throughput, wrk, static 612B page (+Mirage HTTP-reply)";
    run =
      (fun () ->
        let uk = nginx_rate () in
        row "%-18s %14s\n" "system" "req/s (k)";
        row "%-18s %14.0f\n" "unikraft" (kreq uk);
        List.iter
          (fun p ->
            match baseline_rate uk p "nginx" with
            | Some r -> row "%-18s %14.0f\n" p.Ukos.Profiles.os_name (kreq r)
            | None -> row "%-18s %14s\n" p.Ukos.Profiles.os_name "-")
          Ukos.Profiles.all);
  }

let fig15 =
  {
    Bench.id = "fig15";
    group = "perf";
    descr = "nginx throughput per allocator";
    run =
      (fun () ->
        row "%-12s %12s\n" "allocator" "req/s (k)";
        List.iter
          (fun alloc ->
            let r = nginx_rate ~alloc ~requests:20_000 () in
            row "%-12s %12.0f\n" (alloc_name alloc) (kreq r))
          all_allocs;
        row "=> paper: buddy/tlsf/mimalloc comparable; tinyalloc ~30%% behind\n");
  }

let sqlite_insert_time ~alloc ~queries ?(per_stmt_overhead = 0) ?journal () =
  let cfg = ok (Cfg.make ~app:"app-sqlite" ~alloc ~fs:Cfg.Ramfs ~mem_mb:128 ()) in
  let env = ok (Vm.boot ~vmm:Vmm.Qemu cfg) in
  let journal =
    match journal with
    | Some true -> Some (Option.get env.Vm.vfs, "/journal")
    | Some false | None -> None
  in
  let db =
    Ukapps.Sqldb.create ~clock:env.Vm.clock ~alloc:env.Vm.alloc ?journal ~per_stmt_overhead ()
  in
  (match Ukapps.Sqldb.exec db "CREATE TABLE tab (id INTEGER, payload TEXT)" with
  | Ok _ -> ()
  | Error e -> failwith e);
  ignore (Ukapps.Sqldb.exec db "BEGIN");
  let s = Uksim.Clock.start env.Vm.clock in
  for i = 1 to queries do
    match
      Ukapps.Sqldb.exec db (Printf.sprintf "INSERT INTO tab VALUES (%d, 'payload-%d')" i i)
    with
    | Ok _ -> ()
    | Error e -> failwith e
  done;
  ignore (Ukapps.Sqldb.exec db "COMMIT");
  Uksim.Clock.elapsed_ns env.Vm.clock s

let fig16 =
  {
    Bench.id = "fig16";
    group = "perf";
    descr = "SQLite insert speedup relative to mimalloc, by query count";
    run =
      (fun () ->
        let counts = List.map scaled [ 100; 1000; 10_000; 60_000 ] in
        let allocs = [ Cfg.Tinyalloc; Cfg.Tlsf; Cfg.Buddy; Cfg.Mimalloc ] in
        row "%-10s" "queries";
        List.iter (fun a -> row " %12s" (alloc_name a)) allocs;
        row "\n";
        List.iter
          (fun q ->
            let base = sqlite_insert_time ~alloc:Cfg.Mimalloc ~queries:q () in
            row "%-10d" q;
            List.iter
              (fun a ->
                let t = sqlite_insert_time ~alloc:a ~queries:q () in
                row " %12.3f" (base /. t))
              allocs;
            row "\n")
          counts;
        row
          "=> paper: tinyalloc fastest below ~1000 queries, falls behind at high counts;\n   mimalloc ~20%% ahead under high load\n");
  }

let fig17 =
  {
    Bench.id = "fig17";
    group = "perf";
    descr = "60k SQLite insertions: native linux / newlib / musl / external";
    run =
      (fun () ->
        let q = scaled 60_000 in
        (* Per-statement libc deltas: newlib's slower string/stdio path, the
           1.5% external (automatically ported) penalty of §5.4, and the
           Linux baseline's syscall+KPTI tax on its journal I/O. *)
        let musl = sqlite_insert_time ~alloc:Cfg.Tlsf ~queries:q () in
        let base_stmt_cycles =
          Uksim.Clock.cycles_of_ns musl / max 1 q
        in
        let with_overhead frac =
          sqlite_insert_time ~alloc:Cfg.Tlsf ~queries:q
            ~per_stmt_overhead:(int_of_float (float_of_int base_stmt_cycles *. frac))
            ()
        in
        let newlib = with_overhead 0.06 in
        let external_ = with_overhead 0.015 in
        let linux = with_overhead 0.10 in
        row "%-22s %12s\n" "configuration" "time (ms)";
        row "%-22s %12.1f\n" "linux (baremetal)" (ms linux);
        row "%-22s %12.1f\n" "unikraft newlib native" (ms newlib);
        row "%-22s %12.1f\n" "unikraft musl native" (ms musl);
        row "%-22s %12.1f\n" "unikraft musl external" (ms external_);
        row "=> paper: external build only ~1.5%% slower than native; both beat baremetal linux\n");
  }

let fig18 =
  {
    Bench.id = "fig18";
    group = "perf";
    descr = "Redis throughput per allocator and request type";
    run =
      (fun () ->
        row "%-12s %12s %12s\n" "allocator" "GET (k/s)" "SET (k/s)";
        List.iter
          (fun alloc ->
            let get = redis_rate ~alloc ~requests:30_000 Ukapps.Resp_bench.Get in
            let set = redis_rate ~alloc ~requests:30_000 Ukapps.Resp_bench.Set in
            row "%-12s %12.0f %12.0f\n" (alloc_name alloc) (kreq get) (kreq set))
          all_allocs;
        row "=> paper: no allocator wins everywhere; right choice buys up to 2.5x\n");
  }

let register () = List.iter Bench.register_exp [ tab01; fig12; fig13; fig15; fig16; fig17; fig18 ]
