(* The experiment harness: regenerates every table and figure of the
   Unikraft paper (see DESIGN.md for the per-experiment index).

   Usage:
     dune exec bench/main.exe                 # run everything
     dune exec bench/main.exe -- --only fig12 # one experiment
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --micro      # bechamel micro-benchmarks
     UKRAFT_FAST=1 dune exec bench/main.exe   # reduced request counts *)

let experiments : Common.experiment list =
  Exp_build.all @ Exp_boot.all @ Exp_perf.all @ Exp_io.all @ Exp_ablation.all @ Exp_chaos.all
  @ Exp_smp.all

let print_experiments oc =
  List.iter
    (fun (e : Common.experiment) -> Printf.fprintf oc "%-12s %s\n" e.Common.id e.Common.title)
    experiments

let run_one (e : Common.experiment) =
  Common.section e.Common.id e.Common.title;
  let t0 = Unix.gettimeofday () in
  (try e.Common.run ()
   with exn ->
     Printf.printf "!! experiment %s failed: %s\n" e.Common.id (Printexc.to_string exn));
  Printf.printf "[%s done in %.1fs]\n%!" e.Common.id (Unix.gettimeofday () -. t0)

let () =
  let args = Array.to_list Sys.argv in
  let has flag = List.mem flag args in
  let value flag =
    let rec go = function
      | a :: b :: _ when a = flag -> Some b
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  if has "--list" then print_experiments stdout
  else begin
    (match value "--only" with
    | Some id -> (
        match List.find_opt (fun (e : Common.experiment) -> e.Common.id = id) experiments with
        | Some e -> run_one e
        | None ->
            Printf.eprintf "unknown experiment %s; available experiments:\n" id;
            print_experiments stderr;
            exit 1)
    | None ->
        Printf.printf "ukraft experiment harness - reproducing the Unikraft paper (EuroSys'21)\n";
        Printf.printf "fast mode: %b (set UKRAFT_FAST=1 to shrink workloads)\n" Common.fast;
        List.iter run_one experiments);
    if has "--micro" then Micro.run ()
  end
