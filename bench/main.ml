(* The experiment harness: regenerates every table and figure of the
   Unikraft paper (see DESIGN.md for the per-experiment index).

   Usage:
     dune exec bench/main.exe                 # run everything
     dune exec bench/main.exe -- --only fig12 # one experiment
     dune exec bench/main.exe -- --only perf  # one group
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --micro      # bechamel micro-benchmarks
     UKRAFT_FAST=1  dune exec bench/main.exe  # reduced request counts
     UKRAFT_TRACE=1 dune exec bench/main.exe  # + Chrome TRACE_<id>.json

   Experiments live in the Exp_* modules and self-describe through
   Bench.register; every group run lands a BENCH_<group>.json with the
   emitted results plus per-phase uktrace metrics snapshots. *)

let () =
  Exp_build.register ();
  Exp_boot.register ();
  Exp_perf.register ();
  Exp_io.register ();
  Exp_ablation.register ();
  Exp_chaos.register ();
  Exp_smp.register ();
  Exp_fleet.register ();
  Exp_cluster.register ();
  Exp_infer.register ();
  Exp_store.register ();
  Exp_compat.register ();
  Bench.main ~micro:Micro.run ()
