(* Cluster robustness benchmark: fault-tolerant multi-host serving.

   The fleet experiments show one host scaling; this drill shows a
   cluster of hosts surviving the failures that actually happen in a
   multi-host deployment: crashes, gray freezes, *asymmetric*
   partitions (requests arrive, responses vanish), and hosts dying in
   the middle of a live migration. Headline gates, enforced by CI from
   BENCH_cluster.json:

   - the full drill — diurnal load, a 60 s (virtual) asymmetric
     partition, and a seeded kill of the migration destination mid-copy
     — ends with zero lost responses (every offered request completes,
     sheds, or expires: nothing vanishes);
   - live migration beats the kill+clone baseline on p99;
   - hedged requests beat unhedged p99.9 under a straggler host;
   - the planted-bug detector control (suspect_phi = 0) produces false
     positives — proving the suspicion machinery actually fires;
   - the whole drill replays byte-identically from one seed with
     hedging and tracing on (cluster_replay_ok).

   FAST mode scales the request rates down, never the partition or
   migration windows — shrinking the fault windows would make the drill
   vacuous. *)

open Common
module Host = Ukcluster.Host
module Net = Ukcluster.Netmodel
module Detector = Ukcluster.Detector
module Router = Ukcluster.Router
module Cluster = Ukcluster.Cluster
module Fh = Ukfault.Faulthost

let seed = 0xC1057e5
let sec = Uksim.Units.sec
let ms = Uksim.Units.msec

(* FAST shrinks offered load, not fault windows. *)
let rps r = if Bench.fast then r /. 10.0 else r

let show name (r : Cluster.report) =
  row
    "  %-12s offered %6d  done %6d  shed %4d  expired %4d  lost %d  p99 %8.0fus  p99.9 %8.0fus\n"
    name r.Cluster.offered r.Cluster.completed r.Cluster.shed r.Cluster.expired
    r.Cluster.lost r.Cluster.p99_us r.Cluster.p999_us

(* --- the drill ------------------------------------------------------------- *)

let run_drill () =
  Bench.trial ();
  row "partition drill: diurnal load, 60s asymmetric partition, kill mid-migration\n";
  let c =
    Cluster.create ~seed ~n_hosts:4
      ~router_params:(Router.params ~hedge:true ())
      ()
  in
  let t0 = Cluster.settle_ns c in
  (* Live-migrate host 0's shard to host 1, then kill host 1 while the
     first pre-copy round is still streaming: the migration must abort,
     restart toward a surviving host, and commit. *)
  Cluster.migrate c ~at_ns:(t0 +. sec 20.0) ~src:0 ~dst:1;
  let fh =
    Fh.arm ~clock:(Cluster.clock c) ~engine:(Cluster.engine c) ~ops:(Cluster.ops c)
      [
        (t0 +. sec 10.0, Fh.Partition_asym ([ 3 ], [ Cluster.front c ]));
        (t0 +. sec 20.0 +. ms 4.0, Fh.Crash 1);
        (t0 +. sec 25.0, Fh.Recover 1);
        (t0 +. sec 70.0, Fh.Heal ([ 3 ], [ Cluster.front c ]));
      ]
  in
  let r =
    Cluster.run c
      (Ukfleet.Workload.diurnal ~base_rps:(rps 1500.0) ~amplitude:0.6
         ~period_ns:(sec 30.0) ~duration_ns:(sec 90.0))
  in
  show "drill" r;
  row "  detector: %d suspects, %d recovers, %d deads;  migrations %d (aborts %d);  faults applied %d\n"
    r.Cluster.suspects r.Cluster.recovers r.Cluster.deads r.Cluster.migrations
    r.Cluster.migration_aborts (Fh.stats fh).Fh.applied;
  Bench.emit_i "drill_offered" r.Cluster.offered;
  Bench.emit_i "drill_completed" r.Cluster.completed;
  Bench.emit_i "drill_lost" r.Cluster.lost;
  Bench.emit_i "drill_suspects" r.Cluster.suspects;
  Bench.emit_i "drill_migration_aborts" r.Cluster.migration_aborts;
  Bench.emit_i "drill_migrations" r.Cluster.migrations;
  Bench.emit_b "zero_lost_responses"
    (r.Cluster.lost = 0 && r.Cluster.migrations >= 1
   && r.Cluster.migration_aborts >= 1 && r.Cluster.suspects >= 1)

(* --- migration vs kill+clone ----------------------------------------------- *)

let failover_cluster () =
  Bench.trial ();
  (* Two hosts, half the traffic on the victim shard, and a deliberately
     sluggish detector: the baseline pays full price for every request
     that keeps hammering a dead host until suspicion lands. *)
  Cluster.create ~seed ~n_hosts:2 ~classes:[| Host.X86; Host.X86 |]
    ~detector_params:(Detector.params ~interval_ns:(ms 15.0) ())
    ()

let run_migration_vs_kill_clone () =
  row "\nshard failover: live migration vs kill+clone baseline\n";
  let load = Ukfleet.Workload.steady ~rps:(rps 4000.0) ~duration_ns:(sec 0.8) in
  let mig =
    let c = failover_cluster () in
    Cluster.migrate c ~at_ns:(Cluster.settle_ns c +. sec 0.3) ~src:0 ~dst:1;
    Cluster.run c load
  in
  show "migrate" mig;
  let kc =
    let c = failover_cluster () in
    Cluster.kill_clone c ~at_ns:(Cluster.settle_ns c +. sec 0.3) ~src:0 ~dst:1;
    Cluster.run c load
  in
  show "kill+clone" kc;
  Bench.emit_f "migration_p99_us" mig.Cluster.p99_us;
  Bench.emit_f "kill_clone_p99_us" kc.Cluster.p99_us;
  Bench.emit_i "migration_lost" mig.Cluster.lost;
  Bench.emit_i "kill_clone_lost" kc.Cluster.lost;
  Bench.emit_b "migration_beats_kill_clone"
    (mig.Cluster.lost = 0 && kc.Cluster.lost = 0
   && mig.Cluster.p99_us < kc.Cluster.p99_us)

(* --- hedging under a straggler --------------------------------------------- *)

let straggler_cluster ~hedge =
  Bench.trial ();
  let c =
    Cluster.create ~seed ~n_hosts:4
      ~classes:[| Host.X86; Host.X86; Host.X86; Host.Arm |]
      ~router_params:
        (Router.params ~hedge ~hedge_quantile:70.0
           ~hedge_min_ns:(Uksim.Units.usec 100.0) ~attempt_timeout_ns:(ms 8.0) ())
      ()
  in
  (* the ARM host also sits behind a slow WAN hop — the straggler *)
  Net.set_link (Cluster.net c) ~src:(Cluster.front c) ~dst:3 ~latency_ns:(ms 1.5)
    ~gbps:10.0;
  Net.set_link (Cluster.net c) ~src:3 ~dst:(Cluster.front c) ~latency_ns:(ms 1.5)
    ~gbps:10.0;
  c

let run_hedging () =
  row "\ntail hedging: straggler host behind a 1.5ms WAN hop\n";
  let load = Ukfleet.Workload.steady ~rps:(rps 3000.0) ~duration_ns:(sec 1.0) in
  let plain = Cluster.run (straggler_cluster ~hedge:false) load in
  show "no hedge" plain;
  let hedged_c = straggler_cluster ~hedge:true in
  let hedged = Cluster.run hedged_c load in
  show "hedged" hedged;
  row "  hedges %d, wins %d, cancelled %d\n" hedged.Cluster.hedges
    hedged.Cluster.hedge_wins hedged.Cluster.cancelled;
  Bench.emit_f "unhedged_p999_us" plain.Cluster.p999_us;
  Bench.emit_f "hedged_p999_us" hedged.Cluster.p999_us;
  Bench.emit_i "hedge_wins" hedged.Cluster.hedge_wins;
  Bench.emit_b "hedging_beats_straggler"
    (hedged.Cluster.lost = 0 && plain.Cluster.lost = 0
   && hedged.Cluster.hedge_wins > 0
   && hedged.Cluster.p999_us < plain.Cluster.p999_us)

(* --- planted-bug positive control ------------------------------------------ *)

let run_planted () =
  Bench.trial ();
  row "\nplanted bug: detector with suspect_phi = 0 must cry wolf\n";
  let c =
    Cluster.create ~seed ~n_hosts:2 ~classes:[| Host.X86; Host.X86 |]
      ~detector_params:(Detector.params ~interval_ns:(ms 1.0) ~suspect_phi:0.0 ())
      ()
  in
  let r = Cluster.run c (Ukfleet.Workload.steady ~rps:(rps 1000.0) ~duration_ns:(sec 0.2)) in
  row "  %d false suspicions on a fault-free run (%d rescued by pongs)\n"
    r.Cluster.suspects r.Cluster.recovers;
  Bench.emit_i "planted_suspects" r.Cluster.suspects;
  (* if this stops firing, the suspicion machinery is broken *)
  Bench.emit_b "planted_detector_fp" (r.Cluster.suspects > 0 && r.Cluster.lost = 0)

(* --- seeded replay --------------------------------------------------------- *)

let replay_drill () =
  Bench.trial ();
  let c =
    Cluster.create ~seed:(seed lxor 0x5eed) ~n_hosts:4
      ~router_params:(Router.params ~hedge:true ())
      ()
  in
  let t0 = Cluster.settle_ns c in
  Cluster.migrate c ~at_ns:(t0 +. ms 120.0) ~src:0 ~dst:1;
  ignore
    (Fh.arm ~clock:(Cluster.clock c) ~engine:(Cluster.engine c) ~ops:(Cluster.ops c)
       [
         (t0 +. ms 50.0, Fh.Partition_asym ([ 2 ], [ Cluster.front c ]));
         (t0 +. ms 122.0, Fh.Crash 1);
         (t0 +. ms 200.0, Fh.Recover 1);
         (t0 +. ms 300.0, Fh.Heal ([ 2 ], [ Cluster.front c ]));
       ]);
  Cluster.run c
    (Ukfleet.Workload.diurnal ~base_rps:(rps 1500.0) ~amplitude:0.6
       ~period_ns:(ms 200.0) ~duration_ns:(ms 400.0))

let run_replay () =
  row "\nseeded replay: same seed, same drill => byte-identical trace (hedging on)\n";
  let a = replay_drill () and b = replay_drill () in
  let ok = a.Cluster.trace_hash = b.Cluster.trace_hash && a = b in
  row "  trace hash %016x vs %016x: %s\n" a.Cluster.trace_hash b.Cluster.trace_hash
    (if ok then "identical" else "MISMATCH");
  Bench.emit_s "cluster_trace_hash" (Printf.sprintf "%016x" a.Cluster.trace_hash);
  Bench.emit_b "cluster_replay_ok" ok

let run () =
  Bench.phase "drill" run_drill;
  Bench.phase "failover" run_migration_vs_kill_clone;
  Bench.phase "hedging" run_hedging;
  Bench.phase "planted" run_planted;
  Bench.phase "replay" run_replay

let register () =
  Bench.register ~id:"cluster" ~group:"cluster"
    ~descr:
      "fault-tolerant multi-host serving: partition drill, live migration vs kill+clone, hedging, planted detector"
    run
