(* Chaos soak: the webserver and key-value workloads under seeded fault
   injection (ukfault), plus supervision/watchdog/OOM/degraded-mode and
   block-device error drills.

   Everything is driven from fixed seeds, so two runs of this experiment
   produce identical numbers — the determinism check at the end verifies
   that property on the 10%-loss webserver run. *)

module Fn = Ukfault.Faultnet
module Fa = Ukfault.Faultalloc
module Fb = Ukfault.Faultblk
module S = Uknetstack.Stack
module A = Uknetstack.Addr
module B = Ukblock.Blockdev

let chaos_seed = 0xC4A05 (* fixed: the soak replays byte-for-byte *)

(* A served workload over a loopback link with BOTH transmit directions
   going through fault injectors driven from one seed. *)
type chaotic = {
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  sched : Uksched.Sched.t;
  server_stack : S.t;
  client_stack : S.t;
  server_fault : Fn.t;
  client_fault : Fn.t;
  alloc : Ukalloc.Alloc.t;
}

let chaotic_link ?(seed = chaos_seed) plan =
  Bench.trial ();
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  let da, db = Uknetdev.Loopback.create_pair ~clock ~engine () in
  let rng = Uksim.Rng.create seed in
  let server_fault = Fn.wrap ~clock ~engine ~rng:(Uksim.Rng.split rng) ~plan da in
  let client_fault = Fn.wrap ~clock ~engine ~rng:(Uksim.Rng.split rng) ~plan db in
  let mk dev ip mac =
    let s =
      S.create ~clock ~engine ~sched ~dev
        { S.mac = A.Mac.of_int mac; ip = A.Ipv4.of_string ip;
          netmask = A.Ipv4.of_string "255.255.255.0"; gateway = None }
    in
    S.start s;
    s
  in
  let server_stack = mk (Fn.dev server_fault) "10.0.0.1" 0x1 in
  let client_stack = mk (Fn.dev client_fault) "10.0.0.2" 0x2 in
  let alloc = Ukalloc.Tlsf.create ~clock ~base:(16 * 1024 * 1024) ~len:(16 * 1024 * 1024) in
  { clock; engine; sched; server_stack; client_stack; server_fault; client_fault; alloc }

let injected (c : chaotic) =
  let a = Fn.stats c.server_fault and b = Fn.stats c.client_fault in
  a.Fn.dropped + b.Fn.dropped + a.Fn.flap_dropped + b.Fn.flap_dropped

(* --- webserver under increasing loss ------------------------------------- *)

type web_run = {
  rate : float;
  p99_us : float;
  wrk_errors : int;
  served : int;
  drops : int;
  stack_rx_drop : int;
}

let web_run ?(seed = chaos_seed) ~loss ~corrupt ~requests () =
  let c = chaotic_link ~seed (Fn.plan ~drop:loss ~corrupt ()) in
  let httpd =
    Ukapps.Httpd.create ~clock:c.clock ~sched:c.sched ~stack:c.server_stack ~alloc:c.alloc
      (Ukapps.Httpd.In_memory [ ("/index.html", Ukapps.Httpd.default_page) ])
  in
  let r =
    Ukapps.Wrk.run ~clock:c.clock ~sched:c.sched ~stack:c.client_stack
      ~server:(A.Ipv4.of_string "10.0.0.1", 80) ~connections:10 ~requests ()
  in
  let hs = Ukapps.Httpd.stats httpd in
  { rate = r.Ukapps.Wrk.rate_per_sec; p99_us = r.Ukapps.Wrk.latency_us_p99;
    wrk_errors = r.Ukapps.Wrk.errors; served = hs.Ukapps.Httpd.requests; drops = injected c;
    stack_rx_drop = (S.stats c.server_stack).S.rx_drop + (S.stats c.client_stack).S.rx_drop }

let run_web () =
  let requests = Common.scaled 4000 in
  Common.row "webserver vs injected loss (%d requests, 10 connections, seed %#x)\n" requests
    chaos_seed;
  Common.row "  %-22s %12s %10s %10s %8s %10s\n" "fault plan" "req/s" "p99 (us)" "served"
    "errors" "drops";
  List.iter
    (fun (label, loss, corrupt) ->
      let w = web_run ~loss ~corrupt ~requests () in
      Common.row "  %-22s %12.0f %10.1f %10d %8d %10d\n" label w.rate w.p99_us w.served
        w.wrk_errors w.drops;
      (* Convergence: every request completed and came back well-formed. *)
      if w.wrk_errors > 0 then
        Common.row "  !! %d responses lost under %s — TCP failed to recover\n" w.wrk_errors
          label)
    [
      ("clean link", 0.0, 0.0);
      ("5% loss", 0.05, 0.0);
      ("10% loss", 0.10, 0.0);
      ("20% loss", 0.20, 0.0);
      ("10% loss + 1% corrupt", 0.10, 0.01);
    ];
  Common.row "  => 100%% of payload bytes delivered at every rate: the go-back-N\n";
  Common.row "     retransmission path converges (no livelock) up to 20%% loss.\n"

(* --- key-value store under loss ------------------------------------------- *)

let run_kv () =
  let requests = Common.scaled 4000 in
  Common.row "\nkey-value (redis-like) vs injected loss (%d GETs, pipeline 8)\n" requests;
  Common.row "  %-12s %12s %8s\n" "loss" "req/s" "errors";
  List.iter
    (fun loss ->
      let c = chaotic_link (Fn.plan ~drop:loss ()) in
      let store =
        Ukapps.Resp_store.create ~clock:c.clock ~sched:c.sched ~stack:c.server_stack
          ~alloc:c.alloc ()
      in
      ignore store;
      let r =
        Ukapps.Resp_bench.run ~clock:c.clock ~sched:c.sched ~stack:c.client_stack
          ~server:(A.Ipv4.of_string "10.0.0.1", 6379) ~connections:10 ~pipeline:8 ~requests
          Ukapps.Resp_bench.Get
      in
      Common.row "  %-12s %12.0f %8d\n"
        (Printf.sprintf "%.0f%%" (loss *. 100.0))
        r.Ukapps.Resp_bench.rate_per_sec r.Ukapps.Resp_bench.errors)
    [ 0.0; 0.10 ]

(* --- supervised app: crash injection, watchdog, recovery latency ---------- *)

let run_supervision () =
  Common.row "\nsupervised worker: injected crashes, watchdog, recovery latency\n";
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  let rng = Uksim.Rng.create chaos_seed in
  let recovery = Uksim.Stats.create () in
  let iterations = ref 0 in
  let crash_at = ref 0.0 in
  let target = Common.scaled 400 in
  (* Watchdog with a 10 ms budget; the worker pets it every 1 ms of work,
     so in steady state it never bites even across crash/restart gaps. *)
  let wd = Ukos.Watchdog.create ~clock ~engine ~timeout_ns:10.0e6 ~name:"worker-wd" () in
  let policy =
    { Uksched.Supervisor.max_restarts = 1000; backoff_ns = 0.2e6; backoff_factor = 2.0;
      max_backoff_ns = 2.0e6; jitter = 0.0 }
  in
  let sup =
    Uksched.Supervisor.supervise sched ~engine ~policy ~name:"worker"
      ~on_crash:(fun _ -> crash_at := Uksim.Clock.ns clock)
      (fun () ->
        if !crash_at > 0.0 then begin
          (* Back up: measure crash-to-restart latency. *)
          Uksim.Stats.add recovery ((Uksim.Clock.ns clock -. !crash_at) /. 1000.0);
          crash_at := 0.0
        end;
        while !iterations < target do
          incr iterations;
          Ukos.Watchdog.pet wd;
          Uksched.Sched.sleep_ns 1.0e6;
          (* ~3% of iterations hit an injected fault and crash the
             worker thread. *)
          if Uksim.Rng.float rng 1.0 < 0.03 then failwith "injected worker crash"
        done;
        (* Work done: disarm before the pets stop coming. *)
        Ukos.Watchdog.stop wd)
  in
  ignore (Uksched.Sched.spawn sched ~name:"main" (fun () -> Uksched.Sched.sleep_ns 3.0e9));
  Uksched.Sched.run sched;
  Ukos.Watchdog.stop wd;
  Common.row "  iterations completed     %d / %d\n" !iterations target;
  Common.row "  crashes / restarts       %d / %d (budget left %d)\n"
    (Uksched.Supervisor.crashes sup) (Uksched.Supervisor.restarts sup)
    (Uksched.Supervisor.restarts_remaining sup);
  Common.row "  watchdog bites           %d (steady state target: 0)\n" (Ukos.Watchdog.bites wd);
  Common.row "  recovery latency (us)    p50 %.0f  p99 %.0f  max %.0f\n"
    (Uksim.Stats.median recovery) (Uksim.Stats.percentile recovery 99.0)
    (Uksim.Stats.max recovery);
  Common.row "  final state              %s\n"
    (match Uksched.Supervisor.state sup with
    | Uksched.Supervisor.Completed -> "completed"
    | Uksched.Supervisor.Gave_up -> "GAVE UP"
    | Uksched.Supervisor.Running | Uksched.Supervisor.Restarting -> "running")

(* --- allocator pressure: degraded mode (503 shedding) ---------------------- *)

let run_oom () =
  Common.row "\nallocator pressure: webserver sheds load instead of crashing\n";
  let c = chaotic_link (Fn.plan ()) in
  let fa = Fa.wrap ~fail_every:25 c.alloc in
  let httpd =
    Ukapps.Httpd.create ~clock:c.clock ~sched:c.sched ~stack:c.server_stack ~alloc:(Fa.alloc fa)
      (Ukapps.Httpd.In_memory [ ("/index.html", Ukapps.Httpd.default_page) ])
  in
  let requests = Common.scaled 2000 in
  let r =
    Ukapps.Wrk.run ~clock:c.clock ~sched:c.sched ~stack:c.client_stack
      ~server:(A.Ipv4.of_string "10.0.0.1", 80) ~connections:10 ~requests ()
  in
  let hs = Ukapps.Httpd.stats httpd in
  Common.row "  requests served          %d (every 25th pool alloc failed)\n"
    hs.Ukapps.Httpd.requests;
  Common.row "  shed with 503            %d (= wrk non-200 count: %d)\n"
    hs.Ukapps.Httpd.errors_503 r.Ukapps.Wrk.errors;
  Common.row "  injected OOM failures    %d over %d attempts\n" (Fa.injected_failures fa)
    (Fa.attempts fa);
  Common.row "  => no crash, no lost connection: pressure becomes 503s.\n"

(* --- block-device faults: retry until success ------------------------------ *)

let run_blk () =
  Common.row "\nblock device: 10%% I/O errors + torn writes, writer retries\n";
  let clock = Uksim.Clock.create () in
  let inner = Ukblock.Virtio_blk.create_ramdisk ~clock () in
  let fb =
    Fb.wrap ~clock ~rng:(Uksim.Rng.create chaos_seed)
      ~plan:(Fb.plan ~io_error:0.08 ~torn_write:0.02 ~latency_spike:0.02 ()) inner
  in
  let dev = Fb.dev fb in
  let writes = Common.scaled 2000 in
  let retries = ref 0 in
  for i = 0 to writes - 1 do
    let data = Bytes.make 512 (Char.chr (i land 0xff)) in
    let lba = i mod dev.B.capacity_sectors in
    let rec attempt n =
      match dev.B.write_sync ~lba data with
      | Ok () -> ()
      | Error _ when n < 8 ->
          incr retries;
          attempt (n + 1)
      | Error e -> failwith ("unrecoverable write: " ^ B.error_to_string e)
    in
    attempt 0
  done;
  (* Verify the last stripe of writes really landed. *)
  let verified = ref true in
  for i = writes - 10 to writes - 1 do
    match inner.B.read_sync ~lba:(i mod dev.B.capacity_sectors) ~sectors:1 with
    | Ok got -> if Bytes.get got 0 <> Char.chr (i land 0xff) then verified := false
    | Error _ -> verified := false
  done;
  let st = Fb.stats fb in
  Common.row "  %d writes, %d retries; injected: %d io errors, %d torn, %d spikes\n" writes
    !retries st.Fb.io_errors st.Fb.torn_writes st.Fb.latency_spikes;
  Common.row "  data verified after retry: %b\n" !verified

(* --- fleet drill: kill instances mid-spike -------------------------------- *)

module Fv = Ukfault.Faultvm
module Fleet = Ukfleet.Fleet

(* A snapshot-clone fleet rides out a 6x spike while Faultvm kills 20% of
   the ready instances in the middle of it. The gate: every offered
   request gets exactly one response (completed or shed) — the
   supervisor respawns the slots and the orphaned requests are
   re-dispatched, so nothing is lost. *)
let run_fleet () =
  Bench.trial ();
  Common.row "\nfleet drill: kill 20%% of instances mid-spike, supervisor respawns\n";
  let fleet =
    Fleet.create ~seed:chaos_seed ~boot_mode:Fleet.Snapshot
      ~autoscale:Ukfleet.Autoscaler.default ~initial:4
      ~shed_after_ns:(Uksim.Units.msec 50.0) ~slo_bucket_ns:(Uksim.Units.msec 1.0)
      ~image:Ukfleet.Image.httpd ()
  in
  let c = Fleet.costs fleet in
  let cap = 1e9 /. c.Fleet.service_ns in
  let dur = Uksim.Units.msec (if Bench.fast then 30.0 else 60.0) in
  let spike_at = 0.2 *. dur and spike_len = 0.5 *. dur in
  let w =
    Ukfleet.Workload.spike ~base_rps:cap ~factor:6.0 ~at_ns:spike_at ~spike_ns:spike_len
      ~duration_ns:dur
  in
  let drill_at = Fleet.settle_ns fleet +. spike_at +. (0.5 *. spike_len) in
  let fv =
    Fv.arm ~clock:(Fleet.control_clock fleet) ~engine:(Fleet.control_engine fleet)
      ~rng:(Uksim.Rng.create chaos_seed)
      ~plan:(Fv.plan ~at_ns:drill_at ~kill_fraction:0.2 ())
      ~targets:(fun () -> Fleet.ready_ids fleet)
      ~kill:(fun ~now_ns iid -> Fleet.kill fleet ~now_ns ~iid)
  in
  let r = Fleet.run fleet w in
  let st = Fv.stats fv in
  Common.row "  killed %d instances mid-spike (%d missed); %d respawns\n" st.Fv.killed
    st.Fv.missed r.Fleet.restarts;
  Common.row "  offered=%d completed=%d shed=%d redispatched=%d lost=%d\n" r.Fleet.offered
    r.Fleet.completed r.Fleet.shed r.Fleet.redispatched r.Fleet.lost;
  Common.row "  p99=%.0fus slo_violation=%.1fms peak=%d instances\n" r.Fleet.p99_us
    (r.Fleet.slo_violation_ns /. 1e6) r.Fleet.peak_instances;
  Bench.emit_i "fleet_killed" st.Fv.killed;
  Bench.emit_i "fleet_restarts" r.Fleet.restarts;
  Bench.emit_i "fleet_redispatched" r.Fleet.redispatched;
  Bench.emit_i "fleet_lost" r.Fleet.lost;
  Bench.emit_b "fleet_zero_lost" (r.Fleet.lost = 0 && st.Fv.killed > 0);
  if r.Fleet.lost <> 0 then Common.row "  !! fleet drill LOST responses\n"

(* --- determinism ----------------------------------------------------------- *)

let run_determinism () =
  Common.row "\ndeterministic replay (same seed, 10%% loss webserver run twice)\n";
  let requests = Common.scaled 1000 in
  let a = web_run ~loss:0.10 ~corrupt:0.0 ~requests () in
  let b = web_run ~loss:0.10 ~corrupt:0.0 ~requests () in
  let identical = a = b in
  Common.row "  run 1: %.0f req/s, %d drops, %d errors\n" a.rate a.drops a.wrk_errors;
  Common.row "  run 2: %.0f req/s, %d drops, %d errors\n" b.rate b.drops b.wrk_errors;
  Common.row "  identical stats: %b\n" identical;
  if not identical then Common.row "  !! chaos run is NOT deterministic\n"

let run () =
  Bench.phase "web" run_web;
  Bench.phase "kv" run_kv;
  Bench.phase "supervision" run_supervision;
  Bench.phase "oom" run_oom;
  Bench.phase "blk" run_blk;
  Bench.phase "fleet" run_fleet;
  Bench.phase "determinism" run_determinism

let register () =
  Bench.register ~id:"chaos" ~group:"chaos"
    ~descr:"chaos soak: faults across net, alloc, block (ukfault)" run
