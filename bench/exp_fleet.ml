(* Fleet orchestration benchmark: boot-for-scale as a control plane.

   The paper's millisecond boots (Fig 15/16) matter operationally
   because they let a fleet scale reactively instead of over-provisioning.
   This experiment replays three workload shapes — a linear ramp, a
   compressed diurnal cycle, and the flash-crowd 10x spike — against an
   autoscaled fleet under each scale-out path (cold boot, warm pool,
   snapshot clone) and against Linux-VM and Docker baseline fleets built
   from the same §5 profiles. Headline gates, which CI enforces from
   BENCH_fleet.json:

   - snapshot-clone scale-out beats cold boot on spike p99;
   - the unikernel fleet's SLO-violation window under the spike is
     >= 5x shorter than the Linux-VM baseline's (cold boots beat it too);
   - a fixed seed replays with a byte-identical event-trace hash
     (fleet_replay_ok).

   Everything derives from the calibrated substrate: Image.calibrate
   boots the httpd constructor table through Ukplat.Vmm.boot and
   measures per-request service time over a real uknetstack loopback. *)

open Common
module Fleet = Ukfleet.Fleet
module Workload = Ukfleet.Workload
module Autoscaler = Ukfleet.Autoscaler
module Frontdoor = Ukfleet.Frontdoor

let image = Ukfleet.Image.httpd
let seed = 0xF1EE7

(* Wider-than-default shed bound and fine SLO buckets: requests queue
   through a scale-out stall instead of being cut off at the default 4 ms
   bound, so p99 and the violation window resolve the difference between
   a 3.7 ms cold boot and a 1.3 ms clone. *)
let shed_after_ns = Uksim.Units.msec 50.0
let bucket_ns = Uksim.Units.msec 1.0

let mk ?(boot_mode = Fleet.Cold) ?backend ?policy () =
  Bench.trial ();
  Fleet.create ~seed ?backend ~boot_mode ?policy ~autoscale:Autoscaler.default
    ~initial:2 ~shed_after_ns ~slo_bucket_ns:bucket_ns ~image ()

let capacity () =
  let f = Fleet.create ~image () in
  1e9 /. (Fleet.costs f).Fleet.service_ns

(* Virtual horizon per scenario; FAST mode shortens the horizon, not the
   rates — the scale-out story needs the offered load kept honest. *)
let horizon ms = Uksim.Units.msec (if Bench.fast then ms /. 4.0 else ms)

let show name (r : Fleet.report) =
  row "  %-14s p50 %6.0fus  p99 %8.0fus  slo-viol %6.1fms  shed %5d  boots %d/%d/%d  peak %2d\n"
    name r.Fleet.p50_us r.Fleet.p99_us
    (r.Fleet.slo_violation_ns /. 1e6)
    r.Fleet.shed r.Fleet.cold_boots r.Fleet.clones r.Fleet.warm_hits
    r.Fleet.peak_instances

(* --- calibration ----------------------------------------------------------- *)

let run_calib () =
  Bench.trial ();
  row "calibrated costs (httpd image, firecracker)\n";
  let f = Fleet.create ~image () in
  let c = Fleet.costs f in
  row "  cold boot  %8.3f ms   (vmm create + full guest boot)\n" (c.Fleet.cold_boot_ns /. 1e6);
  row "  clone      %8.3f ms   (snapshot restore + %d MB copy)\n" (c.Fleet.clone_ns /. 1e6)
    image.Ukfleet.Image.mem_mb;
  row "  warm hit   %8.3f ms   (activation of a pre-booted spare)\n"
    (c.Fleet.warm_activation_ns /. 1e6);
  row "  service    %8.1f us   => one instance ~ %.0f req/s\n" (c.Fleet.service_ns /. 1e3)
    (1e9 /. c.Fleet.service_ns);
  Bench.emit_f "cold_boot_ms" (c.Fleet.cold_boot_ns /. 1e6);
  Bench.emit_f "clone_ms" (c.Fleet.clone_ns /. 1e6);
  Bench.emit_f "warm_activation_ms" (c.Fleet.warm_activation_ns /. 1e6);
  Bench.emit_f "service_us" (c.Fleet.service_ns /. 1e3);
  Bench.emit_b "clone_cheaper_than_cold" (c.Fleet.clone_ns < c.Fleet.cold_boot_ns)

(* --- ramp ------------------------------------------------------------------ *)

let run_ramp () =
  let cap = capacity () in
  row "\nramp: 0.5x -> 4x one-instance capacity over %.0f ms (autoscaled)\n"
    (horizon 100.0 /. 1e6);
  let w =
    Workload.ramp ~from_rps:(0.5 *. cap) ~to_rps:(4.0 *. cap) ~duration_ns:(horizon 100.0)
  in
  List.iter
    (fun (name, bm) ->
      let r = Fleet.run (mk ~boot_mode:bm ()) w in
      show name r;
      Bench.emit_f (Printf.sprintf "ramp_%s_p99_us" name) r.Fleet.p99_us;
      Bench.emit_i (Printf.sprintf "ramp_%s_lost" name) r.Fleet.lost)
    [ ("cold", Fleet.Cold); ("warm", Fleet.Warm_pool 2); ("clone", Fleet.Snapshot) ]

(* --- diurnal --------------------------------------------------------------- *)

let run_diurnal () =
  let cap = capacity () in
  row "\ndiurnal: base 1.5x capacity, amplitude 0.8, two compressed day cycles\n";
  let dur = horizon 120.0 in
  let w =
    Workload.diurnal ~base_rps:(1.5 *. cap) ~amplitude:0.8 ~period_ns:(dur /. 2.0)
      ~duration_ns:dur
  in
  List.iter
    (fun (name, bm) ->
      let r = Fleet.run (mk ~boot_mode:bm ()) w in
      show name r;
      Bench.emit_f (Printf.sprintf "diurnal_%s_p99_us" name) r.Fleet.p99_us;
      Bench.emit_i (Printf.sprintf "diurnal_%s_retired" name) r.Fleet.retired)
    [ ("cold", Fleet.Cold); ("clone", Fleet.Snapshot) ]

(* --- the 10x spike --------------------------------------------------------- *)

let spike_workload cap =
  let dur = horizon 150.0 in
  Workload.spike ~base_rps:(1.5 *. cap) ~factor:10.0 ~at_ns:(0.2 *. dur)
    ~spike_ns:(0.4 *. dur) ~duration_ns:dur

let run_spike () =
  let cap = capacity () in
  row "\nflash crowd: 10x spike over 1.5x-capacity base (the paper's motivation)\n";
  let w = spike_workload cap in
  let results =
    List.map
      (fun (name, boot_mode, backend) ->
        let r = Fleet.run (mk ~boot_mode ?backend ()) w in
        show name r;
        Bench.emit_f (Printf.sprintf "spike_%s_p99_us" name) r.Fleet.p99_us;
        Bench.emit_f (Printf.sprintf "spike_%s_slo_ms" name)
          (r.Fleet.slo_violation_ns /. 1e6);
        Bench.emit_i (Printf.sprintf "spike_%s_shed" name) r.Fleet.shed;
        Bench.emit_i (Printf.sprintf "spike_%s_lost" name) r.Fleet.lost;
        (name, r))
      [
        ("cold", Fleet.Cold, None);
        ("warm", Fleet.Warm_pool 4, None);
        ("clone", Fleet.Snapshot, None);
        ("linux_vm", Fleet.Cold, Some (Fleet.Baseline Ukos.Profiles.linux_vm));
        ("docker", Fleet.Cold, Some (Fleet.Baseline Ukos.Profiles.docker));
      ]
  in
  let get n = List.assoc n results in
  let slo n = (get n).Fleet.slo_violation_ns in
  let ratio = slo "linux_vm" /. Float.max bucket_ns (slo "clone") in
  row "  => clone p99 %.0fus vs cold %.0fus; SLO window linux/clone = %.1fx\n"
    (get "clone").Fleet.p99_us (get "cold").Fleet.p99_us ratio;
  Bench.emit_f "spike_slo_ratio_linux_over_clone" ratio;
  Bench.emit_b "spike_clone_beats_cold" ((get "clone").Fleet.p99_us < (get "cold").Fleet.p99_us);
  Bench.emit_b "spike_slo_ratio_ge5" (ratio >= 5.0);
  Bench.emit_b "spike_cold_beats_linux" (slo "cold" < slo "linux_vm")

(* --- front-door policies --------------------------------------------------- *)

let run_policies () =
  let cap = capacity () in
  row "\nfront-door policies at fixed fleet size (steady 3x capacity, 4 instances)\n";
  let w = Workload.steady ~rps:(3.0 *. cap) ~duration_ns:(horizon 60.0) in
  List.iter
    (fun (name, p) ->
      Bench.trial ();
      let f =
        Fleet.create ~seed ~policy:p ~initial:4 ~shed_after_ns ~slo_bucket_ns:bucket_ns
          ~image ()
      in
      let r = Fleet.run f w in
      show name r;
      Bench.emit_f (Printf.sprintf "policy_%s_p99_us" name) r.Fleet.p99_us)
    [
      ("round_robin", Frontdoor.Round_robin);
      ("least_loaded", Frontdoor.Least_loaded);
      ("cons_hash", Frontdoor.Consistent_hash);
    ]

(* --- seeded replay --------------------------------------------------------- *)

let run_replay () =
  let cap = capacity () in
  row "\nseeded replay: same seed, same config => byte-identical event trace\n";
  let w = spike_workload cap in
  let go () = Fleet.run (mk ~boot_mode:Fleet.Snapshot ()) w in
  let a = go () and b = go () in
  let ok = a.Fleet.trace_hash = b.Fleet.trace_hash && a = b in
  row "  trace hash %016x vs %016x: %s\n" a.Fleet.trace_hash b.Fleet.trace_hash
    (if ok then "identical" else "MISMATCH");
  Bench.emit_s "fleet_trace_hash" (Printf.sprintf "%016x" a.Fleet.trace_hash);
  Bench.emit_b "fleet_replay_ok" ok

let run () =
  Bench.phase "calib" run_calib;
  Bench.phase "ramp" run_ramp;
  Bench.phase "diurnal" run_diurnal;
  Bench.phase "spike" run_spike;
  Bench.phase "policies" run_policies;
  Bench.phase "replay" run_replay

let register () =
  Bench.register ~id:"fleet" ~group:"fleet"
    ~descr:"fleet orchestration: cold vs warm-pool vs snapshot-clone scale-out vs baselines"
    run
