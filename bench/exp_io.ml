(* I/O-path experiments: raw TX throughput (Fig 19), 9pfs latency
   (Fig 20), filesystem specialization (Fig 22), and the UDP key-value
   store (Table 4). *)

open Common
module Nb = Uknetdev.Netbuf
module Nd = Uknetdev.Netdev
module Vn = Uknetdev.Virtio_net
module Wire = Uknetdev.Wire

(* Transmit [frames] frames of [size] bytes as fast as the driver accepts
   them; returns achieved Gb/s measured at the receiving sink.
   [extra_pkt_cost] models a different guest framework (the DPDK-in-VM
   baseline's per-packet path). *)
let tx_throughput ~backend ~size ~frames ?(extra_pkt_cost = 0) () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let wa, wb = Wire.create_pair ~engine ~latency_ns:5000.0 ~bandwidth_gbps:10.0 () in
  Wire.attach_sink wb;
  let dev = Vn.create ~clock ~engine ~backend ~wire:wa () in
  let payload = Bytes.make size 'x' in
  let batch = 32 in
  let sent = ref 0 in
  while !sent < frames do
    let n = min batch (frames - !sent) in
    let pkts = Array.init n (fun _ -> Nb.of_bytes payload) in
    if extra_pkt_cost > 0 then Uksim.Clock.advance clock (n * extra_pkt_cost);
    let accepted = dev.Nd.tx_burst ~qid:0 pkts in
    if accepted = 0 then
      (* Ring full: the guest spins until the host frees descriptors. *)
      Uksim.Clock.advance clock 2000
    else sent := !sent + accepted
  done;
  Uksim.Engine.run engine;
  let elapsed_ns = Uksim.Clock.ns clock in
  let bits = float_of_int (Wire.rx_bytes wb * 8) in
  bits /. elapsed_ns (* Gb/s: bits per ns *)

let fig19 =
  {
    Bench.id = "fig19";
    group = "io";
    descr = "TX throughput vs DPDK-in-a-Linux-VM (vhost-user / vhost-net)";
    run =
      (fun () ->
        let frames = scaled 40_000 in
        row "%-8s %18s %18s %18s\n" "pktsize" "uknetdev+vhost-user" "dpdk-in-linux-vm"
          "uknetdev+vhost-net";
        List.iter
          (fun size ->
            let vu = tx_throughput ~backend:Vn.Vhost_user ~size ~frames () in
            (* DPDK's guest tx path costs slightly more than uknetdev's
               (full rte_mbuf handling): ~60 extra cycles per packet. *)
            let dpdk = tx_throughput ~backend:Vn.Vhost_user ~size ~frames ~extra_pkt_cost:60 () in
            let vn = tx_throughput ~backend:Vn.Vhost_net ~size ~frames () in
            row "%-8d %15.2f %18.2f %18.2f\n" size vu dpdk vn)
          [ 64; 128; 256; 512; 1024; 1500 ];
        row "=> vhost-user tracks DPDK; vhost-net is capped by the host tap path\n");
  }

let fig20 =
  {
    Bench.id = "fig20";
    group = "io";
    descr = "9pfs read/write latency vs Linux VM, by block size";
    run =
      (fun () ->
        (* Host share with a 1MB file of random-ish data. *)
        let host_clock = Uksim.Clock.create () in
        let host = Ukvfs.Ramfs.create ~clock:host_clock () in
        (match host.Ukvfs.Fs.open_file "/data.bin" ~create:true with
        | Ok h ->
            ignore (host.Ukvfs.Fs.write h ~off:0 (Bytes.make (1 lsl 20) 'd'));
            host.Ukvfs.Fs.close h
        | Error _ -> failwith "host file");
        let cfg = ok (Cfg.make ~app:"app-sqlite" ~fs:Cfg.Ninep ~mem_mb:64 ()) in
        let env = ok (Vm.boot ~vmm:Vmm.Qemu ~host_share:host cfg)
        in
        let vfs = Option.get env.Vm.vfs in
        let clock = env.Vm.clock in
        let fd =
          match Ukvfs.Vfs.open_file vfs "/data.bin" () with
          | Ok fd -> fd
          | Error e -> failwith (Ukvfs.Fs.errno_to_string e)
        in
        let iters = if fast then 20 else 200 in
        let measure op =
          let s = Uksim.Clock.start clock in
          for i = 0 to iters - 1 do
            op i
          done;
          Uksim.Clock.elapsed_ns clock s /. float_of_int iters
        in
        (* The Linux-VM path adds, per dd-style block op: the syscall
           (+KPTI), guest VFS/page-cache management, and dd's user-space
           loop — on top of the same virtio-9p RPCs. *)
        let linux_extra_ns = 4200.0 in
        row "%-8s %14s %14s %14s %14s\n" "block" "uk-read(us)" "linux-read(us)" "uk-write(us)"
          "linux-write(us)";
        List.iter
          (fun block ->
            let data = Bytes.make block 'w' in
            let rd =
              measure (fun i ->
                  match Ukvfs.Vfs.pread vfs fd ~off:(i * block mod (1 lsl 19)) ~len:block with
                  | Ok _ -> ()
                  | Error e -> failwith (Ukvfs.Fs.errno_to_string e))
            in
            let wr =
              measure (fun i ->
                  match Ukvfs.Vfs.pwrite vfs fd ~off:(i * block mod (1 lsl 19)) data with
                  | Ok _ -> ()
                  | Error e -> failwith (Ukvfs.Fs.errno_to_string e))
            in
            row "%-8d %14.1f %14.1f %14.1f %14.1f\n" block (us rd)
              (us (rd +. linux_extra_ns))
              (us wr)
              (us (wr +. linux_extra_ns)))
          [ 4096; 8192; 16384; 32768 ];
        row "=> latency grows with block size (iounit-chunked RPCs); Unikraft below Linux\n");
  }

let fig22 =
  {
    Bench.id = "fig22";
    group = "io";
    descr = "specialized filesystem: open() with and without the VFS layer";
    run =
      (fun () ->
        let n_files = 100 in
        (* Specialized: SHFS hooked directly (scenario 3 removed). *)
        let cfg_s = ok (Cfg.make ~app:"app-webcache" ~fs:Cfg.Shfs_fs ~libc:Cfg.Nolibc ()) in
        let env_s = ok (Vm.boot ~vmm:Vmm.Qemu cfg_s) in
        let wc_s =
          Ukapps.Webcache.create ~clock:env_s.Vm.clock
            (Ukapps.Webcache.Shfs_backed (Option.get env_s.Vm.shfs))
        in
        ok (Result.map_error (fun e -> e) (Ukapps.Webcache.populate wc_s ~n_files ()));
        (* Unspecialized: same app through vfscore + ramfs. *)
        let cfg_v = ok (Cfg.make ~app:"app-webcache" ~fs:Cfg.Ramfs ~libc:Cfg.Nolibc ()) in
        let env_v = ok (Vm.boot ~vmm:Vmm.Qemu cfg_v) in
        let wc_v =
          Ukapps.Webcache.create ~clock:env_v.Vm.clock
            (Ukapps.Webcache.Vfs_backed (Option.get env_v.Vm.vfs, "/"))
        in
        ok (Result.map_error (fun e -> e) (Ukapps.Webcache.populate wc_v ~n_files ()));
        let s = Ukapps.Webcache.measure_open wc_s () in
        let v = Ukapps.Webcache.measure_open wc_v () in
        (* Linux VM: open() through syscall + the kernel's heavier VFS. *)
        let linux_extra = 2300.0 in
        row "%-26s %12s %12s\n" "system" "hit (ns)" "miss (ns)";
        row "%-26s %12.0f %12.0f\n" "linux VM (initrd)"
          (v.Ukapps.Webcache.hit_ns +. linux_extra)
          (v.Ukapps.Webcache.miss_ns +. linux_extra);
        row "%-26s %12.0f %12.0f\n" "unikraft vfscore+ramfs" v.Ukapps.Webcache.hit_ns
          v.Ukapps.Webcache.miss_ns;
        row "%-26s %12.0f %12.0f\n" "unikraft SHFS (specialized)" s.Ukapps.Webcache.hit_ns
          s.Ukapps.Webcache.miss_ns;
        row "=> paper: 5-7x reduction from dropping the VFS layer (%.1fx here on hits)\n"
          (v.Ukapps.Webcache.hit_ns /. s.Ukapps.Webcache.hit_ns));
  }

(* --- Table 4 ------------------------------------------------------------- *)

let ghz_cycles_per_sec = Uksim.Clock.ghz *. 1e9

(* Linux rows built from explicit per-request cost compositions (cycles):
   application logic, syscall pair (Table 1), kernel UDP stack, and the
   virtio path for guests. *)
let linux_row ~label ~app ~syscalls ~stack ~virtio =
  let cycles = app + syscalls + stack + virtio in
  (label, ghz_cycles_per_sec /. float_of_int cycles, Printf.sprintf "%d cyc/req" cycles)

let tab04 =
  {
    Bench.id = "tab04";
    group = "io";
    descr = "UDP key-value store: Linux vs Unikraft (Table 4)";
    run =
      (fun () ->
        (* Unikraft LWIP row: sockets over the stack, measured. *)
        let lwip_rate =
          let s = serve_vm ~alloc:Cfg.Tlsf ~app:"app-udpkv" () in
          let store = Ukapps.Udp_kv.create_store ~clock:s.clock ~alloc:s.env.Vm.alloc in
          for i = 0 to 1023 do
            Ukapps.Udp_kv.store_set store (Printf.sprintf "k%04d" i) "v"
          done;
          Ukapps.Udp_kv.serve_sockets ~sched:s.sched ~stack:(Option.get s.env.Vm.stack) ~store ();
          let r =
            Ukapps.Udp_kv.Client.run_sockets ~clock:s.clock ~sched:s.sched
              ~stack:s.client_stack ~server:(s.server_ip, 5000) ~requests:(scaled 20_000) ()
          in
          r.Ukapps.Udp_kv.Client.rate_per_sec
        in
        (* Unikraft uknetdev row: specialized polling build, measured. *)
        let netdev_rate =
          let clock = Uksim.Clock.create () in
          let engine = Uksim.Engine.create clock in
          let sched = Uksched.Sched.create_cooperative ~clock ~engine in
          let wa, wb = Wire.create_pair ~engine ~latency_ns:5000.0 () in
          let sdev = Vn.create ~clock ~engine ~backend:Vn.Vhost_user ~wire:wa () in
          let cdev = Vn.create ~clock ~engine ~backend:Vn.Vhost_user ~wire:wb () in
          let alloc = Ukalloc.Tlsf.create ~clock ~base:(1 lsl 26) ~len:(1 lsl 26) in
          let store = Ukapps.Udp_kv.create_store ~clock ~alloc in
          for i = 0 to 1023 do
            Ukapps.Udp_kv.store_set store (Printf.sprintf "k%04d" i) "v"
          done;
          let sip = A.Ipv4.of_string "172.44.0.2" and cip = A.Ipv4.of_string "172.44.0.3" in
          let smac = A.Mac.of_int 0x1 and cmac = A.Mac.of_int 0x2 in
          Ukapps.Udp_kv.serve_netdev ~clock ~sched ~dev:sdev ~store ~mac:smac ~ip:sip ();
          let r =
            Ukapps.Udp_kv.Client.run_netdev ~clock ~sched ~dev:cdev ~mac:cmac ~ip:cip
              ~server_mac:smac ~server:(sip, 5000) ~requests:(scaled 50_000) ()
          in
          r.Ukapps.Udp_kv.Client.rate_per_sec
        in
        let rows =
          [
            linux_row ~label:"linux baremetal / single" ~app:280
              ~syscalls:(2 * Uksim.Cost.syscall_linux) ~stack:4000 ~virtio:0;
            linux_row ~label:"linux baremetal / batch" ~app:280
              ~syscalls:(2 * Uksim.Cost.syscall_linux / 16)
              ~stack:2900 ~virtio:0;
            linux_row ~label:"linux guest / single" ~app:280
              ~syscalls:(2 * Uksim.Cost.syscall_linux) ~stack:4000 ~virtio:3900;
            linux_row ~label:"linux guest / batch" ~app:280
              ~syscalls:(2 * Uksim.Cost.syscall_linux / 16)
              ~stack:2900 ~virtio:2500;
            linux_row ~label:"linux guest / DPDK (2 cores)" ~app:280 ~syscalls:0 ~stack:0
              ~virtio:282;
          ]
        in
        row "%-30s %14s  %s\n" "setup" "throughput" "model";
        List.iter
          (fun (label, rate, note) -> row "%-30s %12.0fk/s  (%s)\n" label (kreq rate) note)
          rows;
        row "%-30s %12.0fk/s  (measured, sockets over lwip)\n" "unikraft guest / LWIP"
          (kreq lwip_rate);
        row "%-30s %12.0fk/s  (measured, polling uknetdev, 1 core)\n"
          "unikraft guest / uknetdev" (kreq netdev_rate);
        row "%-30s %12.0fk/s  (as uknetdev; same path, DPDK framework)\n"
          "unikraft guest / DPDK" (kreq (netdev_rate *. 0.99));
        row "=> paper: LWIP 319k, uknetdev 6.3M (one core) vs DPDK 6.4M (two cores)\n");
  }

let register () = List.iter Bench.register_exp [ fig19; fig20; fig22; tab04 ]
