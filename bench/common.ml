(* Shared plumbing for the experiment harness. *)

module Cfg = Unikraft.Config
module Vm = Unikraft.Vm
module Vmm = Ukplat.Vmm
module A = Uknetstack.Addr

let section id title =
  Printf.printf "\n=== %s: %s ===\n" id title

let row fmt = Printf.printf fmt

let ms ns = ns /. 1e6
let us ns = ns /. 1e3

let fast = Bench.fast
let scaled = Bench.scaled

let ok = function
  | Ok v -> v
  | Error e -> failwith ("experiment setup failed: " ^ e)

(* A served Unikraft VM + client-side stack over a virtio wire, ready for
   load generation. Both sides share one timeline; client-side costs are
   kept small so the guest remains the bottleneck (the paper pins VM, VMM
   and client to distinct cores — see DESIGN.md for the substitution
   note). *)
type served = {
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  sched : Uksched.Sched.t;
  env : Vm.env;
  client_stack : Uknetstack.Stack.t;
  server_ip : A.Ipv4.t;
}

let serve_vm ?(alloc = Cfg.Mimalloc) ?(net = Cfg.Vhost_net) ~app () =
  (* One VM boot = one trial: drop the previous boot's instance sources
     so metrics windows never mix dead components with live ones. *)
  Bench.trial ();
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  (* Feed the uktrace profiling sampler from the event loop; a no-op
     when the default tracer is disabled. *)
  Uksim.Engine.set_observer engine
    (Some (fun cycles -> Uktrace.Tracer.attribute Uktrace.Tracer.default ~core:0 ~cycles));
  let wa, wb = Uknetdev.Wire.create_pair ~engine () in
  let cfg = ok (Cfg.make ~app ~net ~alloc ~mem_mb:64 ()) in
  let env = ok (Vm.boot ~vmm:Vmm.Qemu ~clock ~engine ~wire:wa cfg) in
  let sched = Option.get env.Vm.sched in
  let backend =
    match net with
    | Cfg.Vhost_user -> Uknetdev.Virtio_net.Vhost_user
    | Cfg.Vhost_net | Cfg.No_net -> Uknetdev.Virtio_net.Vhost_net
  in
  let cdev = Uknetdev.Virtio_net.create ~clock ~engine ~backend ~wire:wb () in
  let client_stack =
    Uknetstack.Stack.create ~clock ~engine ~sched ~dev:cdev
      {
        Uknetstack.Stack.mac = A.Mac.of_int 0xc11e47;
        ip = A.Ipv4.of_string "172.44.0.3";
        netmask = A.Ipv4.of_string "255.255.255.0";
        gateway = None;
      }
  in
  Uknetstack.Stack.start client_stack;
  { clock; engine; sched; env; client_stack; server_ip = A.Ipv4.of_string "172.44.0.2" }

let kreq v = v /. 1000.0

let alloc_name = Cfg.alloc_backend_name

let all_allocs = [ Cfg.Bootalloc; Cfg.Tlsf; Cfg.Tinyalloc; Cfg.Mimalloc; Cfg.Buddy ]
