(* The experiment harness core: a single registration API for every
   experiment, plus the uktrace plumbing that gives each run a metrics
   section in its BENCH_<group>.json.

   Experiment files call [register] (or [register_exp] on a record) at
   startup; [main] owns --list / --only / --micro, runs the selection,
   and writes one BENCH_<group>.json per group touched. Inside a run,
   experiments use [emit] to add result fields to their JSON object,
   [phase] to bracket a measurement window with a registry diff, and
   [trial] to mark a repetition boundary (clears instance sources and
   resets survivors, so counters never leak between trials).

   UKRAFT_TRACE=1 additionally enables the default tracer and writes a
   Chrome trace_event file TRACE_<id>.json per experiment. *)

type experiment = { id : string; group : string; descr : string; run : unit -> unit }

let experiments : experiment list ref = ref [] (* newest first *)

let register ~id ~group ~descr run =
  experiments := { id; group; descr; run } :: !experiments

let register_exp e = experiments := e :: !experiments
let all () = List.rev !experiments

(* Scale factor for request counts: UKRAFT_FAST=1 shrinks workloads for
   smoke runs. *)
let fast = try Sys.getenv "UKRAFT_FAST" = "1" with Not_found -> false
let scaled n = if fast then max 100 (n / 20) else n

let tracing = try Sys.getenv "UKRAFT_TRACE" = "1" with Not_found -> false

(* --- per-experiment state ---------------------------------------------- *)

type state = {
  mutable emits : (string * string) list; (* key -> raw JSON, newest first *)
  mutable phases : (string * Uktrace.Registry.snapshot) list; (* newest first *)
}

let cur : state option ref = ref None

let emit key json =
  match !cur with Some s -> s.emits <- (key, json) :: s.emits | None -> ()

let emit_i key v = emit key (string_of_int v)
let emit_f ?(fmt = format_of_string "%.3f") key v = emit key (Printf.sprintf fmt v)
let emit_b key v = emit key (if v then "true" else "false")
let emit_s key v = emit key (Printf.sprintf "\"%s\"" (String.escaped v))

let trial () =
  Uktrace.Registry.clear ();
  Uktrace.Registry.reset ()

let phase name f =
  match !cur with
  | None -> f ()
  | Some s ->
      let before = Uktrace.Registry.snapshot () in
      Fun.protect f ~finally:(fun () ->
          let after = Uktrace.Registry.snapshot () in
          let d = Uktrace.Registry.(prune (diff ~before ~after)) in
          s.phases <- (name, d) :: s.phases)

(* --- running ------------------------------------------------------------ *)

type result = {
  rid : string;
  rgroup : string;
  rseconds : float;
  rfailed : string option;
  remits : (string * string) list; (* oldest first *)
  rphases : (string * Uktrace.Registry.snapshot) list; (* oldest first *)
  rtotal : Uktrace.Registry.snapshot;
}

let run_one e =
  Printf.printf "\n=== %s: %s ===\n" e.id e.descr;
  let s = { emits = []; phases = [] } in
  cur := Some s;
  trial ();
  if tracing then Uktrace.Tracer.(reset default);
  let before = Uktrace.Registry.snapshot () in
  let t0 = Unix.gettimeofday () in
  let failed =
    try
      e.run ();
      None
    with exn ->
      let msg = Printexc.to_string exn in
      Printf.printf "!! experiment %s failed: %s\n" e.id msg;
      Some msg
  in
  let dt = Unix.gettimeofday () -. t0 in
  let after = Uktrace.Registry.snapshot () in
  cur := None;
  if tracing then begin
    let fname = Printf.sprintf "TRACE_%s.json" e.id in
    let oc = open_out fname in
    output_string oc (Uktrace.Tracer.(to_chrome_json default));
    close_out oc;
    Printf.printf "[wrote %s]\n" fname
  end;
  Printf.printf "[%s done in %.1fs]\n%!" e.id dt;
  {
    rid = e.id;
    rgroup = e.group;
    rseconds = dt;
    rfailed = failed;
    remits = List.rev s.emits;
    rphases = List.rev s.phases;
    rtotal = Uktrace.Registry.(prune (diff ~before ~after));
  }

(* --- JSON output -------------------------------------------------------- *)

let write_group_file group results =
  let fname = Printf.sprintf "BENCH_%s.json" group in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"group\": \"%s\",\n" group);
  Buffer.add_string b (Printf.sprintf "  \"fast\": %b,\n" fast);
  Buffer.add_string b "  \"experiments\": {\n";
  let last = List.length results - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string b (Printf.sprintf "    \"%s\": {\n" (String.escaped r.rid));
      let scalar k v =
        Buffer.add_string b (Printf.sprintf "      \"%s\": %s,\n" (String.escaped k) v)
      in
      scalar "seconds" (Printf.sprintf "%.2f" r.rseconds);
      (match r.rfailed with
      | Some msg -> scalar "failed" (Printf.sprintf "\"%s\"" (String.escaped msg))
      | None -> ());
      List.iter (fun (k, v) -> scalar k v) r.remits;
      Buffer.add_string b "      \"metrics\": {\n";
      Buffer.add_string b
        (Printf.sprintf "        \"total\": %s" (Uktrace.Registry.to_json ~indent:8 r.rtotal));
      List.iter
        (fun (pn, pd) ->
          Buffer.add_string b
            (Printf.sprintf ",\n        \"%s\": %s" (String.escaped pn)
               (Uktrace.Registry.to_json ~indent:8 pd)))
        r.rphases;
      Buffer.add_string b "\n      }\n";
      Buffer.add_string b (if i = last then "    }\n" else "    },\n"))
    results;
  Buffer.add_string b "  }\n}\n";
  let oc = open_out fname in
  Buffer.output_buffer oc b;
  close_out oc;
  Printf.printf "[wrote %s]\n%!" fname

(* --- entry point -------------------------------------------------------- *)

let print_experiments oc =
  List.iter
    (fun e -> Printf.fprintf oc "%-12s %-10s %s\n" e.id e.group e.descr)
    (all ())

let main ?micro () =
  let args = Array.to_list Sys.argv in
  let has flag = List.mem flag args in
  let value flag =
    let rec go = function
      | a :: v :: _ when a = flag -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  if has "--list" then print_experiments stdout
  else begin
    let selection =
      match value "--only" with
      | Some key -> (
          match List.filter (fun e -> e.id = key || e.group = key) (all ()) with
          | [] ->
              Printf.eprintf "unknown experiment or group %s; available experiments:\n" key;
              print_experiments stderr;
              let groups =
                List.fold_left
                  (fun acc e -> if List.mem e.group acc then acc else acc @ [ e.group ])
                  [] (all ())
              in
              Printf.eprintf "available groups: %s\n" (String.concat " " groups);
              exit 1
          | sel -> sel)
      | None ->
          Printf.printf
            "ukraft experiment harness - reproducing the Unikraft paper (EuroSys'21)\n";
          Printf.printf "fast mode: %b (set UKRAFT_FAST=1 to shrink workloads)\n" fast;
          all ()
    in
    if tracing then begin
      Uktrace.Tracer.(set_enabled default true);
      Uktrace.Tracer.(register_source default)
    end;
    let results = List.map run_one selection in
    let groups =
      List.fold_left
        (fun acc r -> if List.mem r.rgroup acc then acc else acc @ [ r.rgroup ])
        [] results
    in
    List.iter
      (fun g -> write_group_file g (List.filter (fun r -> r.rgroup = g) results))
      groups;
    if has "--micro" then match micro with Some f -> f () | None -> ()
  end
