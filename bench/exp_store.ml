(* ukstore benchmark: the crash-consistent merkle KV as a fleet workload.

   Four questions drive the experiment:

   1. What does durability cost? The same zero-copy serving path as the
      RESP store, but every mutation hashes into the merkle trie and
      every COMMIT journals + fsyncs. The write/read mix sweep prices
      that against the in-memory RESP baseline.

   2. How fast is recovery? Mount time is slot scan + journal replay, so
      it must scale with the journal depth a crash left behind — the
      depth sweep measures the curve that sizes the checkpoint policy.

   3. Is recovery *correct*? The crash matrix kills the device at every
      sector boundary of a commit's journal record and remounts: an
      acked commit must survive, an unacked one must vanish, and history
      below the survivor must stay intact. Zero lost durable commits.

   4. Does it hold up as a fleet citizen? A 10x flash crowd on the
      snapshot-cloned image must lose zero responses (single-host fleet
      and multi-host ukcluster), and a fixed seed must replay to
      identical store roots and trace hashes. *)

open Common
module Fleet = Ukfleet.Fleet
module Image = Ukfleet.Image
module Workload = Ukfleet.Workload
module Autoscaler = Ukfleet.Autoscaler
module Cluster = Ukapps.Cluster
module UC = Ukcluster.Cluster
module Store = Ukapps.Store
module St = Ukstore.Store
module Fb = Ukfault.Faultblk

let seed = 0x5702E
let shed_after_ns = Uksim.Units.msec 50.0
let bucket_ns = Uksim.Units.msec 1.0

let oke = function
  | Ok v -> v
  | Error e -> failwith ("exp_store: " ^ Ukvfs.Fs.errno_to_string e)

(* --- write/read mix, priced against RESP ----------------------------------- *)

let mix_requests () = Bench.scaled 4000

let store_mix write_frac =
  Bench.trial ();
  let c = Cluster.create ~seed ~n:1 () in
  ignore (Cluster.add_store_fast c ~keys:256 ());
  let r =
    Cluster.run_store_load_fast c ~connections_per_core:8 ~pipeline:8
      ~requests_per_core:(mix_requests ()) ~write_frac ~commit_every:64 ()
  in
  (r.Store.rate_per_sec, r.Store.p99_us, r.Store.errors)

let resp_baseline workload =
  Bench.trial ();
  let c = Cluster.create ~seed ~n:1 () in
  ignore (Cluster.add_resp_fast c ~populate:256 ());
  let r =
    Cluster.run_resp_load_fast c ~connections_per_core:8 ~pipeline:8
      ~requests_per_core:(mix_requests ()) workload
  in
  r.Ukapps.Resp_bench.rate_per_sec

let run_mix () =
  row "write/read mix: merkle+journal store vs in-memory RESP (zero-copy path)\n";
  let w_rps, w_p99, w_err = store_mix 0.9 in
  let r_rps, r_p99, r_err = store_mix 0.1 in
  let resp_set = resp_baseline Ukapps.Resp_bench.Set in
  let resp_get = resp_baseline Ukapps.Resp_bench.Get in
  row "  store write-heavy (0.9)  %8.0f req/s  p99 %8.1fus  errors %d\n" w_rps w_p99 w_err;
  row "  store read-heavy  (0.1)  %8.0f req/s  p99 %8.1fus  errors %d\n" r_rps r_p99 r_err;
  row "  resp  SET baseline       %8.0f req/s\n" resp_set;
  row "  resp  GET baseline       %8.0f req/s\n" resp_get;
  row "  => durability tax on the write path: %.2fx vs RESP SET\n" (resp_set /. w_rps);
  Bench.emit_f "store_write_heavy_rps" w_rps;
  Bench.emit_f "store_read_heavy_rps" r_rps;
  Bench.emit_f "store_write_p99_us" w_p99;
  Bench.emit_f "store_read_p99_us" r_p99;
  Bench.emit_f "resp_set_rps" resp_set;
  Bench.emit_f "resp_get_rps" resp_get;
  Bench.emit_f "durability_tax_write" (resp_set /. w_rps);
  (* Priced = the order is physical: reads beat writes (no journal on
     the read path), and the durable store never beats the in-memory
     baseline it adds hashing + journaling on top of. *)
  Bench.emit_b "write_read_mix_priced"
    (w_err = 0 && r_err = 0 && r_rps > w_rps && resp_set > w_rps)

(* --- recovery time vs journal depth ---------------------------------------- *)

let depths = [ 1; 4; 16; 64; 256 ]

let recover_at depth =
  Bench.trial ();
  let c = Uksim.Clock.create () in
  let dev = Ukblock.Virtio_blk.create_ramdisk ~clock:c ~capacity_sectors:65536 () in
  let t = oke (St.format ~clock:c ~journal_sectors:4096 dev) in
  (* A populated, checkpointed base image, then [depth] commits left
     sitting in the journal — the state a crash strands on disk. *)
  for i = 0 to 63 do
    ignore (oke (St.set t (Printf.sprintf "base%03d" i) (String.make 24 'b')))
  done;
  ignore (oke (St.commit t ~msg:"base" ()));
  oke (St.checkpoint t);
  for i = 1 to depth do
    ignore (oke (St.set t (Printf.sprintf "j%04d" i) (Printf.sprintf "v%d" i)));
    ignore (oke (St.commit t ()))
  done;
  let t0 = Uksim.Clock.ns c in
  let t' = oke (St.open_ ~clock:c dev) in
  let dt = Uksim.Clock.ns c -. t0 in
  ((St.stats t').St.replayed_records, dt)

let run_recovery () =
  row "\nrecovery: mount time vs journal depth (records replayed since checkpoint)\n";
  let curve =
    List.map
      (fun depth ->
        let replayed, dt = recover_at depth in
        row "  depth %4d  replayed %4d  mount %8.1f us\n" depth replayed (us dt);
        Bench.emit_f (Printf.sprintf "recovery_depth%d_us" depth) (us dt);
        (depth, replayed, dt))
      depths
  in
  let all_replayed = List.for_all (fun (d, r, _) -> r = d) curve in
  let dt_of d = match List.find (fun (d', _, _) -> d' = d) curve with _, _, t -> t in
  row "  => replay scales %.1fx from depth 1 to 256\n" (dt_of 256 /. dt_of 1);
  Bench.emit_b "recovery_replays_full_journal" all_replayed;
  Bench.emit_b "recovery_scales_with_depth" (dt_of 256 > dt_of 1)

(* --- crash matrix: zero lost durable commits ------------------------------- *)

let crash_case ~arm_sectors ~pre =
  let c = Uksim.Clock.create () in
  let inner = Ukblock.Virtio_blk.create_ramdisk ~clock:c ~capacity_sectors:16384 () in
  let fb = Fb.wrap ~clock:c ~rng:(Uksim.Rng.create 7) ~plan:(Fb.plan ()) inner in
  let t = oke (St.format ~clock:c ~journal_sectors:64 (Fb.dev fb)) in
  for i = 1 to pre do
    ignore (oke (St.set t (Printf.sprintf "k%d" i) (Printf.sprintf "v%d" i)));
    ignore (oke (St.commit t ()))
  done;
  let survivor = St.head t in
  Fb.crash_after_writes fb arm_sectors;
  ignore (oke (St.set t "doomed" "payload"));
  let outcome = St.commit t () in
  Fb.revive fb;
  let t' = oke (St.open_ ~clock:c inner) in
  let doomed = oke (St.get t' "doomed") in
  let head_ok, doomed_ok =
    match outcome with
    | Ok h -> (St.head t' = h, doomed = Some "payload")
    | Error _ -> (St.head t' = survivor, doomed = None)
  in
  let history_ok =
    pre = 0
    || oke (St.get t' (Printf.sprintf "k%d" pre)) = Some (Printf.sprintf "v%d" pre)
  in
  head_ok && doomed_ok && history_ok

let run_crash_matrix () =
  row "\ncrash matrix: device dies at every sector boundary of a commit record\n";
  let cases = ref 0 and failures = ref 0 in
  List.iter
    (fun pre ->
      for arm = 0 to 12 do
        incr cases;
        if not (crash_case ~arm_sectors:arm ~pre) then begin
          incr failures;
          row "  LOST at arm=%d pre=%d\n" arm pre
        end
      done)
    [ 0; 3 ];
  row "  %d crash points, %d violations\n" !cases !failures;
  Bench.emit_i "crash_points" !cases;
  Bench.emit_b "recovery_zero_lost_commits" (!failures = 0)

(* --- flash crowd on the fleet + multi-host cluster ------------------------- *)

let horizon ms = Uksim.Units.msec (if Bench.fast then ms /. 4.0 else ms)

let spike_workload cap =
  let dur = horizon 150.0 in
  Workload.spike ~base_rps:(1.5 *. cap) ~factor:10.0 ~at_ns:(0.2 *. dur)
    ~spike_ns:(0.4 *. dur) ~duration_ns:dur

let spike_image = Image.store ()

let mk_fleet () =
  Bench.trial ();
  Fleet.create ~seed ~boot_mode:Fleet.Snapshot ~autoscale:Autoscaler.default ~initial:2
    ~shed_after_ns ~slo_bucket_ns:bucket_ns ~image:spike_image ()

let run_spike () =
  row "\nflash crowd: 10x spike on the snapshot-cloned store fleet\n";
  let cap = 1e9 /. (Fleet.costs (Fleet.create ~image:spike_image ())).Fleet.service_ns in
  let r = Fleet.run (mk_fleet ()) (spike_workload cap) in
  row "  p50 %6.0fus  p99 %8.0fus  shed %d  lost %d  clones %d  peak %d\n" r.Fleet.p50_us
    r.Fleet.p99_us r.Fleet.shed r.Fleet.lost r.Fleet.clones r.Fleet.peak_instances;
  Bench.emit_f "store_spike_p99_us" r.Fleet.p99_us;
  Bench.emit_i "store_spike_shed" r.Fleet.shed;
  Bench.emit_i "store_spike_lost" r.Fleet.lost;
  Bench.emit_i "store_spike_peak" r.Fleet.peak_instances;
  (* And across hosts: the same image served by the fault-tolerant tier. *)
  Bench.trial ();
  let c = UC.create ~seed ~n_hosts:2 ~image:spike_image () in
  let rc =
    UC.run c
      (Workload.diurnal ~base_rps:cap ~amplitude:0.5
         ~period_ns:(horizon 40.0) ~duration_ns:(horizon 120.0))
  in
  row "  ukcluster: offered %d  completed %d  shed %d  lost %d  p99 %8.0fus\n"
    rc.UC.offered rc.UC.completed rc.UC.shed rc.UC.lost rc.UC.p99_us;
  Bench.emit_i "store_cluster_offered" rc.UC.offered;
  Bench.emit_i "store_cluster_lost" rc.UC.lost

(* --- seeded replay ---------------------------------------------------------- *)

let run_replay () =
  row "\nseeded replay: same mix, same seed => identical store roots + trace\n";
  let go () =
    Bench.trial ();
    let c = Cluster.create ~seed:23 ~n:2 () in
    let srvs = Cluster.add_store_fast c ~keys:64 () in
    let r =
      Cluster.run_store_load_fast c ~connections_per_core:4
        ~requests_per_core:(Bench.scaled 2000) ~write_frac:0.3 ~commit_every:40 ()
    in
    (r.Store.errors, Array.map Store.state_hash srvs, Cluster.trace_hash c)
  in
  let e1, roots1, h1 = go () in
  let e2, roots2, h2 = go () in
  let ok = e1 = 0 && e2 = 0 && roots1 = roots2 && h1 = h2 in
  row "  trace hash %016x vs %016x: %s\n" h1 h2 (if ok then "identical" else "MISMATCH");
  Bench.emit_s "store_trace_hash" (Printf.sprintf "%016x" h1);
  Bench.emit_b "store_replay_ok" ok

let run () =
  Bench.phase "mix" run_mix;
  Bench.phase "recovery" run_recovery;
  Bench.phase "crash" run_crash_matrix;
  Bench.phase "spike" run_spike;
  Bench.phase "replay" run_replay

let register () =
  Bench.register ~id:"store" ~group:"store"
    ~descr:
      "crash-consistent merkle KV: durability tax, recovery curve, crash matrix, spike, replay"
    run
