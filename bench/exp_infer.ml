(* Inference serving benchmark: the model server as a fleet workload.

   Two questions drive the experiment:

   1. The batching knob — the admission queue amortizes the per-batch
      weight-pass sweep, so max_batch trades p50/p99 latency against
      throughput. The sweep quantifies that curve on the zero-copy
      serving path.

   2. Boot economics vs model size — a cold boot streams weights from
      the block store through Blockfs's windowed path (cheap per byte,
      large fixed cost), while a snapshot clone eagerly copies the full
      loaded footprint (expensive per byte, small fixed cost). The
      model-size sweep locates the crossover; CI gates that clones win
      at <= 128 MB and the crossover sits in (128, 512].

   Plus the fleet drills: a 10x flash crowd must lose zero responses,
   and a fixed seed must replay byte-identically. *)

open Common
module Fleet = Ukfleet.Fleet
module Image = Ukfleet.Image
module Workload = Ukfleet.Workload
module Autoscaler = Ukfleet.Autoscaler
module Cluster = Ukapps.Cluster
module Infer = Ukapps.Infer

let seed = 0x1FE2
let shed_after_ns = Uksim.Units.msec 50.0
let bucket_ns = Uksim.Units.msec 1.0

(* --- batch-knob sweep ------------------------------------------------------ *)

let run_batch_sweep () =
  row "batch knob: p50/p99 vs throughput, 16 MB model, 16 concurrent flows\n";
  let requests = Bench.scaled 2048 in
  let results =
    List.map
      (fun max_batch ->
        Bench.trial ();
        let c = Cluster.create ~seed ~n:1 () in
        ignore (Cluster.add_infer_fast c ~size_mb:16 ~max_batch ());
        let r =
          Cluster.run_infer_load_fast c ~connections_per_core:16
            ~requests_per_core:requests ()
        in
        row "  max_batch %2d  p50 %8.1fus  p99 %8.1fus  %8.0f req/s\n" max_batch
          r.Infer.p50_us r.Infer.p99_us r.Infer.rate_per_sec;
        Bench.emit_f (Printf.sprintf "batch%d_p50_us" max_batch) r.Infer.p50_us;
        Bench.emit_f (Printf.sprintf "batch%d_p99_us" max_batch) r.Infer.p99_us;
        Bench.emit_f (Printf.sprintf "batch%d_rps" max_batch) r.Infer.rate_per_sec;
        (max_batch, r))
      [ 1; 2; 4; 8; 16 ]
  in
  let rps k = (List.assoc k results).Infer.rate_per_sec in
  row "  => batching gains %.2fx throughput (1 -> 16)\n" (rps 16 /. rps 1);
  Bench.emit_f "batch_speedup_16_over_1" (rps 16 /. rps 1);
  Bench.emit_b "batch_amortizes" (rps 16 > rps 1)

(* --- model-size sweep: cold boot vs warm pool vs snapshot clone ------------ *)

let sizes = [ 8; 32; 128; 256; 512 ]

let run_model_sweep () =
  row "\nboot economics vs model size (firecracker; cold streams, clone copies)\n";
  let curve =
    List.map
      (fun size_mb ->
        Bench.trial ();
        let image = Image.infer ~size_mb () in
        let f = Fleet.create ~image () in
        let c = Fleet.costs f in
        row "  %4d MB  cold %8.3f ms  clone %8.3f ms  warm %6.3f ms  service %8.1f us\n"
          size_mb (ms c.Fleet.cold_boot_ns) (ms c.Fleet.clone_ns)
          (ms c.Fleet.warm_activation_ns) (us c.Fleet.service_ns);
        Bench.emit_f (Printf.sprintf "size%d_cold_ms" size_mb) (ms c.Fleet.cold_boot_ns);
        Bench.emit_f (Printf.sprintf "size%d_clone_ms" size_mb) (ms c.Fleet.clone_ns);
        Bench.emit_f (Printf.sprintf "size%d_warm_ms" size_mb)
          (ms c.Fleet.warm_activation_ns);
        Bench.emit_f (Printf.sprintf "size%d_service_us" size_mb) (us c.Fleet.service_ns);
        (* Release this size's calibration before building the next — the
           512 MB rig retains a full disk image otherwise. *)
        Image.uncache image;
        (size_mb, c.Fleet.cold_boot_ns, c.Fleet.clone_ns))
      sizes
  in
  (* Locate where the cold-boot line (large fixed cost, shallow slope)
     crosses the clone line (small fixed cost, steep slope): linear
     interpolation between the last clone-wins size and the first
     cold-wins size. *)
  let crossover =
    let rec find = function
      | (s0, cold0, clone0) :: ((s1, cold1, clone1) :: _ as rest) ->
          if clone0 < cold0 && cold1 <= clone1 then begin
            let d0 = cold0 -. clone0 and d1 = clone1 -. cold1 in
            Some (float_of_int s0 +. (float_of_int (s1 - s0) *. d0 /. (d0 +. d1)))
          end
          else find rest
      | _ -> None
    in
    find curve
  in
  let clone_wins_le128 =
    List.for_all (fun (s, cold, clone) -> s > 128 || clone < cold) curve
  in
  (match crossover with
  | Some mb -> row "  => clone/cold crossover at ~%.0f MB of weights\n" mb
  | None -> row "  => no crossover inside the swept range\n");
  Bench.emit_f "crossover_mb" (Option.value crossover ~default:0.0);
  Bench.emit_b "clone_beats_cold_le128" clone_wins_le128

(* --- 10x flash crowd ------------------------------------------------------- *)

let horizon ms = Uksim.Units.msec (if Bench.fast then ms /. 4.0 else ms)

let spike_workload cap =
  let dur = horizon 150.0 in
  Workload.spike ~base_rps:(1.5 *. cap) ~factor:10.0 ~at_ns:(0.2 *. dur)
    ~spike_ns:(0.4 *. dur) ~duration_ns:dur

let spike_image = Image.infer ~size_mb:8 ()

let mk_fleet () =
  Bench.trial ();
  Fleet.create ~seed ~boot_mode:Fleet.Snapshot ~autoscale:Autoscaler.default ~initial:2
    ~shed_after_ns ~slo_bucket_ns:bucket_ns ~image:spike_image ()

let run_spike () =
  row "\nflash crowd: 10x spike on a snapshot-cloned 8 MB-model fleet\n";
  let cap = 1e9 /. (Fleet.costs (Fleet.create ~image:spike_image ())).Fleet.service_ns in
  let r = Fleet.run (mk_fleet ()) (spike_workload cap) in
  row "  p50 %6.0fus  p99 %8.0fus  shed %d  lost %d  clones %d  peak %d\n" r.Fleet.p50_us
    r.Fleet.p99_us r.Fleet.shed r.Fleet.lost r.Fleet.clones r.Fleet.peak_instances;
  Bench.emit_f "infer_spike_p99_us" r.Fleet.p99_us;
  Bench.emit_i "infer_spike_shed" r.Fleet.shed;
  Bench.emit_i "infer_spike_lost" r.Fleet.lost;
  Bench.emit_i "infer_spike_peak" r.Fleet.peak_instances

(* --- seeded replay --------------------------------------------------------- *)

let run_replay () =
  row "\nseeded replay: same seed, same fleet => byte-identical event trace\n";
  let cap = 1e9 /. (Fleet.costs (Fleet.create ~image:spike_image ())).Fleet.service_ns in
  let w = spike_workload cap in
  let go () = Fleet.run (mk_fleet ()) w in
  let a = go () and b = go () in
  let ok = a.Fleet.trace_hash = b.Fleet.trace_hash && a = b in
  row "  trace hash %016x vs %016x: %s\n" a.Fleet.trace_hash b.Fleet.trace_hash
    (if ok then "identical" else "MISMATCH");
  Bench.emit_s "infer_trace_hash" (Printf.sprintf "%016x" a.Fleet.trace_hash);
  Bench.emit_b "infer_replay_ok" ok

let run () =
  Bench.phase "batch" run_batch_sweep;
  Bench.phase "modelsize" run_model_sweep;
  Bench.phase "spike" run_spike;
  Bench.phase "replay" run_replay

let register () =
  Bench.register ~id:"infer" ~group:"infer"
    ~descr:"batched inference serving: batch knob, clone-vs-cold crossover, spike, replay"
    run
