(* Ablations of design choices called out in DESIGN.md (beyond the
   paper's own figures). *)

open Common
module Nb = Uknetdev.Netbuf
module Nd = Uknetdev.Netdev
module Vn = Uknetdev.Virtio_net
module Wire = Uknetdev.Wire

(* Burst-size sweep for the vhost-user TX path: batching amortizes the
   driver's fixed per-burst work. *)
let abl_batch =
  {
    Bench.id = "abl-batch";
    group = "ablation";
    descr = "ablation: tx burst size vs throughput (vhost-user, 64B)";
    run =
      (fun () ->
        let frames = scaled 40_000 in
        row "%-8s %14s\n" "batch" "Gb/s";
        List.iter
          (fun batch ->
            let clock = Uksim.Clock.create () in
            let engine = Uksim.Engine.create clock in
            let wa, wb = Wire.create_pair ~engine ~bandwidth_gbps:10.0 () in
            Wire.attach_sink wb;
            let dev = Vn.create ~clock ~engine ~backend:Vn.Vhost_user ~wire:wa () in
            let payload = Bytes.make 64 'x' in
            let sent = ref 0 in
            while !sent < frames do
              let n = min batch (frames - !sent) in
              let pkts = Array.init n (fun _ -> Nb.of_bytes payload) in
              (* Fixed per-burst application work that batching amortizes. *)
              Uksim.Clock.advance clock 300;
              let accepted = dev.Nd.tx_burst ~qid:0 pkts in
              if accepted = 0 then Uksim.Clock.advance clock 2000 else sent := !sent + accepted
            done;
            Uksim.Engine.run engine;
            let gbps = float_of_int (Wire.rx_bytes wb * 8) /. Uksim.Clock.ns clock in
            row "%-8d %14.2f\n" batch gbps)
          [ 1; 4; 8; 16; 32; 64 ]);
  }

(* Polling vs interrupt-driven receive for a latency-sensitive consumer. *)
let abl_netmode =
  {
    Bench.id = "abl-netmode";
    group = "ablation";
    descr = "ablation: polling vs interrupt rx under light load";
    run =
      (fun () ->
        let run_mode mode =
          let clock = Uksim.Clock.create () in
          let engine = Uksim.Engine.create clock in
          let wa, wb = Wire.create_pair ~engine ~latency_ns:1000.0 () in
          let dev = Vn.create ~clock ~engine ~backend:Vn.Vhost_net ~wire:wa () in
          let woken = ref 0 in
          dev.Nd.configure_queue ~qid:0
            {
              Nd.rx_path = Nd.Zero_copy;
              mode;
              rx_handler = (if mode = Nd.Interrupt_driven then Some (fun () -> incr woken) else None);
            };
          (* 100 packets, 10us apart: an idle-ish queue. *)
          for i = 1 to 100 do
            Uksim.Engine.at engine (Uksim.Clock.cycles_of_ns (float_of_int i *. 10_000.0))
              (fun () -> Wire.send_bytes wb (Bytes.make 64 'p'))
          done;
          let polls = ref 0 in
          let received = ref 0 in
          while !received < 100 do
            (match mode with
            | Nd.Polling ->
                (* Poll every microsecond of virtual time. *)
                Uksim.Clock.advance clock (Uksim.Clock.cycles_of_ns 1000.0)
            | Nd.Interrupt_driven ->
                (* Sleep until the interrupt side effect shows up. *)
                Uksim.Engine.run
                  ~until:(Uksim.Clock.cycles clock + Uksim.Clock.cycles_of_ns 10_000.0)
                  engine);
            incr polls;
            received := !received + List.length (dev.Nd.rx_burst ~qid:0 ~max:64)
          done;
          (!polls, !woken, (dev.Nd.stats ()).Nd.rx_irqs)
        in
        let p_polls, _, _ = run_mode Nd.Polling in
        let i_polls, _, irqs = run_mode Nd.Interrupt_driven in
        row "polling:   %5d wakeups (CPU burned while idle)\n" p_polls;
        row "interrupt: %5d wakeups, %d interrupts (idle CPU reclaimed)\n" i_polls irqs;
        row "=> interrupt mode trades per-packet interrupt cost for idle efficiency\n");
  }

(* Two allocators in one image: bootalloc for boot-time allocations, a
   real allocator for the application (paper §3.2's multi-allocator
   example). *)
let abl_twoalloc =
  {
    Bench.id = "abl-twoalloc";
    group = "ablation";
    descr = "ablation: boot allocator + app allocator vs single buddy";
    run =
      (fun () ->
        let boot_of alloc =
          let cfg = ok (Cfg.make ~app:"app-nginx" ~alloc ~mem_mb:1024 ()) in
          (ok (Vm.boot ~vmm:Vmm.Qemu cfg)).Vm.breakdown.Vmm.guest_ns
        in
        let buddy = boot_of Cfg.Buddy in
        (* Two-allocator build: boot-time allocations from a bump region,
           app heap initialized lazily by TLSF (O(1) init). *)
        let two =
          let clock = Uksim.Clock.create () in
          let reg = Ukalloc.Alloc.Registry.create () in
          let s = Uksim.Clock.start clock in
          let boot_a = Ukalloc.Bootalloc.create ~clock ~base:(1 lsl 20) ~len:(1 lsl 20) in
          Ukalloc.Alloc.Registry.register reg boot_a;
          let app_a =
            Ukalloc.Tlsf.create ~clock ~base:(1 lsl 26) ~len:(Uksim.Units.mib 896)
          in
          Ukalloc.Alloc.Registry.register reg app_a;
          Uksim.Clock.elapsed_ns clock s
        in
        row "single buddy allocator:    boot %8.2f ms\n" (ms buddy);
        row "bootalloc + tlsf combo:    alloc-init %8.4f ms (vs buddy's region walk)\n" (ms two);
        row "=> composing allocators decouples boot latency from runtime allocation quality\n");
  }

(* Dispatch-mode ablation: what binary compatibility costs a syscall-heavy
   workload end to end. *)
let abl_dispatch =
  {
    Bench.id = "abl-dispatch";
    group = "ablation";
    descr = "ablation: syscall dispatch mode vs workload time";
    run =
      (fun () ->
        let n = scaled 200_000 in
        row "%-28s %14s\n" "dispatch" "time for 200k calls";
        List.iter
          (fun (name, mode) ->
            let clock = Uksim.Clock.create () in
            let shim = Uksyscall.Shim.create ~clock ~mode in
            Uksyscall.Shim.register shim ~sysno:0 (fun _ -> Ok 0);
            let s = Uksim.Clock.start clock in
            for _ = 1 to n do
              ignore (Uksyscall.Shim.call shim ~sysno:0 [||])
            done;
            row "%-28s %12.3fms\n" name (ms (Uksim.Clock.elapsed_ns clock s)))
          [
            ("native link (Unikraft)", Uksyscall.Shim.Native_link);
            ("binary compat (OSv-style)", Uksyscall.Shim.Binary_compat);
            ("Linux guest (KPTI)", Uksyscall.Shim.Linux_vm);
          ]);
  }

(* Storage-path specialization: persist 1000 512B journal records
   through three stacks of decreasing height (paper scenario 8 / Fig 4:
   vfscore vs the ukblock API). *)
let abl_block =
  {
    Bench.id = "abl-block";
    group = "ablation";
    descr = "ablation: journal persistence — 9pfs file vs sync ukblock vs batched ukblock";
    run =
      (fun () ->
        let records = 1000 in
        let record = Bytes.make 512 'j' in
        (* (a) through vfscore over 9pfs (the paper's persistent-FS path) *)
        let via_9pfs =
          let host_clock = Uksim.Clock.create () in
          let host = Ukvfs.Ramfs.create ~clock:host_clock () in
          let cfg = ok (Cfg.make ~app:"app-sqlite" ~fs:Cfg.Ninep ~mem_mb:64 ()) in
          let env = ok (Vm.boot ~vmm:Vmm.Qemu ~host_share:host cfg) in
          let vfs = Option.get env.Vm.vfs in
          let fd =
            match Ukvfs.Vfs.open_file vfs "/journal" ~create:true () with
            | Ok fd -> fd
            | Error e -> failwith (Ukvfs.Fs.errno_to_string e)
          in
          let s = Uksim.Clock.start env.Vm.clock in
          for i = 0 to records - 1 do
            ignore (Ukvfs.Vfs.pwrite vfs fd ~off:(i * 512) record)
          done;
          ignore (Ukvfs.Vfs.fsync vfs fd);
          Uksim.Clock.elapsed_ns env.Vm.clock s
        in
        (* (b) virtio-blk, one synchronous request per record *)
        let via_sync =
          let clock = Uksim.Clock.create () in
          let engine = Uksim.Engine.create clock in
          let d = Ukblock.Virtio_blk.create ~clock ~engine () in
          let s = Uksim.Clock.start clock in
          for i = 0 to records - 1 do
            ignore (d.Ukblock.Blockdev.write_sync ~lba:i record)
          done;
          Uksim.Clock.elapsed_ns clock s
        in
        (* (c) virtio-blk, batched submissions of 32 *)
        let via_batch =
          let clock = Uksim.Clock.create () in
          let engine = Uksim.Engine.create clock in
          let d = Ukblock.Virtio_blk.create ~clock ~engine () in
          let s = Uksim.Clock.start clock in
          let submitted = ref 0 and completed = ref 0 in
          while !completed < records do
            if !submitted < records then begin
              let n = min 32 (records - !submitted) in
              let reqs =
                Array.init n (fun k ->
                    Ukblock.Blockdev.Write { lba = !submitted + k; data = record })
              in
              submitted := !submitted + d.Ukblock.Blockdev.submit reqs
            end;
            let got = d.Ukblock.Blockdev.poll_completions ~max:64 in
            completed := !completed + List.length got;
            if got = [] then Uksim.Clock.advance clock 1000
          done;
          Uksim.Clock.elapsed_ns clock s
        in
        row "%-34s %12.2f ms
" "vfscore + 9pfs file" (ms via_9pfs);
        row "%-34s %12.2f ms
" "ukblock, sync per record" (ms via_sync);
        row "%-34s %12.2f ms (%.1fx vs 9pfs)
" "ukblock, batched x32" (ms via_batch)
          (via_9pfs /. via_batch);
        row "=> coding against ukblock removes the VFS+9p layers; batching hides device latency
");
  }

(* What does §7 security cost? MPK-compartmentalized SHFS lookups and a
   sanitized allocator vs. their plain counterparts. *)
let abl_security =
  {
    Bench.id = "abl-security";
    group = "ablation";
    descr = "ablation: cost of MPK compartments and ASan on hot paths";
    run =
      (fun () ->
        (* MPK: seal SHFS data behind a compartment, cross a gate per
           lookup. *)
        let n = scaled 100_000 in
        let mpk_cost gated =
          let clock = Uksim.Clock.create () in
          let shfs = Ukvfs.Shfs.create ~clock () in
          Ukvfs.Shfs.add shfs ~name:"obj.html" (Bytes.make 256 'o');
          let m = Ukmpk.Mpk.create ~clock in
          let key = Result.get_ok (Ukmpk.Mpk.alloc_key m ~name:"shfs" ()) in
          Ukmpk.Mpk.bind_range m key ~base:0x100000 ~len:65536;
          let gate = Ukmpk.Mpk.Gate.create m ~name:"shfs-gate" ~target_key:key in
          let one () =
            match Ukvfs.Shfs.open_direct shfs "obj.html" with
            | Ok h ->
                Ukmpk.Mpk.load m 0x100040;
                Ukvfs.Shfs.close_direct shfs h
            | Error _ -> ()
          in
          let s = Uksim.Clock.start clock in
          for _ = 1 to n do
            if gated then Ukmpk.Mpk.Gate.enter gate one
            else begin
              (* Un-compartmentalized build: the key stays open. *)
              Ukmpk.Mpk.set_rights m key Ukmpk.Mpk.Read_write;
              one ()
            end
          done;
          Uksim.Clock.elapsed_cycles clock s / n
        in
        let plain = mpk_cost false and gated = mpk_cost true in
        row "shfs lookup, open compartment:   %5d cycles\n" plain;
        row "shfs lookup, through MPK gate:   %5d cycles (+%d for 4 WRPKRU)\n" gated
          (gated - plain);
        (* ASan: allocator round trips with and without the sanitizer. *)
        let alloc_cost sanitized =
          let clock = Uksim.Clock.create () in
          let inner = Ukalloc.Tlsf.create ~clock ~base:(1 lsl 22) ~len:(1 lsl 24) in
          let a =
            if sanitized then Ukalloc.Asan.alloc (Ukalloc.Asan.wrap ~clock inner) else inner
          in
          let s = Uksim.Clock.start clock in
          for _ = 1 to n do
            match a.Ukalloc.Alloc.malloc 128 with
            | Some addr -> a.Ukalloc.Alloc.free addr
            | None -> ()
          done;
          Uksim.Clock.elapsed_cycles clock s / n
        in
        let plain_a = alloc_cost false and asan_a = alloc_cost true in
        row "tlsf malloc+free, plain:         %5d cycles\n" plain_a;
        row "tlsf malloc+free, asan+redzones: %5d cycles (quarantine + padding)\n" asan_a;
        row "=> security features cost measurable but bounded cycles (paper: \"possible to\n   achieve good security while retaining high performance\")\n");
  }

(* Binary compatibility vs. binary rewriting on a syscall-heavy binary
   (§4.1 / HermiTux). *)
let abl_bincompat =
  {
    Bench.id = "abl-bincompat";
    group = "ablation";
    descr = "ablation: binary compat (trap) vs binary rewriting";
    run =
      (fun () ->
        let module Bin = Uksyscall.Binary in
        (* A getpid/write-heavy inner loop, unrolled: 1 syscall per 4
           instructions. *)
        let body =
          List.concat
            (List.init (scaled 20_000) (fun i ->
                 [ Bin.Mov (0, 1); Bin.Add (0, 2);
                   Bin.Syscall (if i land 1 = 0 then 39 else 1); Bin.Cmp (0, 1) ]))
          @ [ Bin.Ret ]
        in
        let run binary =
          let clock = Uksim.Clock.create () in
          let shim = Uksyscall.Shim.create ~clock ~mode:Uksyscall.Shim.Native_link in
          Uksyscall.Appdb.install_supported shim;
          Bin.execute ~clock ~shim binary
        in
        let plain = run (Bin.assemble body) in
        let rewritten = run (Bin.rewrite (Bin.assemble body)) in
        row "trap-and-translate: %8d syscalls in %9d cycles (%.1f cyc/insn)\n"
          plain.Bin.syscalls plain.Bin.cycles
          (float_of_int plain.Bin.cycles /. float_of_int plain.Bin.instructions);
        row "rewritten:          %8d syscalls in %9d cycles (%.1f cyc/insn)\n"
          rewritten.Bin.syscalls rewritten.Bin.cycles
          (float_of_int rewritten.Bin.cycles /. float_of_int rewritten.Bin.instructions);
        row "=> rewriting recovers %.1fx on this binary (Table 1's 84-vs-4 per call)\n"
          (float_of_int plain.Bin.cycles /. float_of_int rewritten.Bin.cycles));
  }

(* Timer engines: hierarchical wheel vs binary heap under TCP-like timer
   churn (arm + cancel dominate; few timers ever fire). *)
let abl_wheel =
  {
    Bench.id = "abl-wheel";
    group = "ablation";
    descr = "ablation: timing wheel vs heap for TCP-style timers";
    run =
      (fun () ->
        let n = scaled 200_000 in
        let wheel_ops =
          let w = Uktime.Wheel.create ~now:0 () in
          let t0 = Unix.gettimeofday () in
          for i = 1 to n do
            let timer = Uktime.Wheel.arm w ~deadline:(i * 777) (fun () -> ()) in
            (* 90% of TCP retransmit timers are cancelled by the ACK. *)
            if i mod 10 <> 0 then ignore (Uktime.Wheel.cancel w timer)
          done;
          ignore (Uktime.Wheel.advance w ~now:(n * 800));
          Unix.gettimeofday () -. t0
        in
        let heap_ops =
          let h = Uksim.Heapq.create () in
          let t0 = Unix.gettimeofday () in
          for i = 1 to n do
            (* Heaps cannot cancel in O(1): the dead entry stays queued
               and is skipped at pop (the standard workaround). *)
            Heapq_cancel.push h (i * 777) (i mod 10 = 0)
          done;
          ignore (Heapq_cancel.drain h);
          Unix.gettimeofday () -. t0
        in
        row "wheel: %7.1f ms real for %d arm/cancel + advance\n" (wheel_ops *. 1e3) n;
        row "heap:  %7.1f ms real for the same workload\n" (heap_ops *. 1e3);
        row "=> both engines drain correctly; the wheel cancels in O(1) and never\n   pays log n per arm (structural, independent of constants)\n");
  }

(* The fast-path ablation matrix (the PR's headline experiment): an
   8-core httpd + RESP cluster on the legacy socket/copy datapath vs the
   zero-copy batched run-to-completion netbuf datapath, then each
   ingredient — RX batching + TX coalescing, zero-copy, run-to-completion
   dispatch, per-core netbuf pools — switched off individually.

   Gates (enforced by CI from BENCH_ablation.json):
   - fastpath_httpd_speedup and fastpath_resp_speedup >= 5 over the
     copy-path baseline;
   - zero counted memcpys on the hot path: the RESP fast run makes no
     counted copies at all, and the httpd fast run makes exactly the
     copies of a warm-up-only control run (one legacy request per
     connection), i.e. the steady state is copy-free;
   - the 8-core fast run replays byte-identically from its seed
     (fastpath_replay_ok). *)
let abl_fastpath =
  {
    Bench.id = "abl-fastpath";
    group = "ablation";
    descr = "ablation: zero-copy batched run-to-completion datapath (8-core cluster)";
    run =
      (fun () ->
        let module Cl = Ukapps.Cluster in
        let module Httpd = Ukapps.Httpd in
        let n = 4 (* 2n = 8 cores *) in
        let conns = 8 in
        (* Deliberately not [scaled]: the whole matrix runs in under a
           second, and the CI gates need the steady state — at smoke-run
           sizes connection setup and warm-up dominate and the speedup
           collapses to ~2.5x. *)
        let reqs = 2000 in
        (* The pre-PR datapath, spelled out as ingredient knobs: per-packet
           processing, copies into fresh buffers, no TX coalescing. *)
        let copy_fp = { Cl.rx_batch = 1; rx_copy = true; tx_coalesce = false;
                        shared_pool = false } in
        let content = Httpd.In_memory [ ("/index.html", Httpd.default_page) ] in
        let httpd_case name ~fp ~fast ?rtc ?(requests = reqs) () =
          Bench.trial ();
          let c = Cl.create ~seed:42 ~fastpath:fp ~n () in
          let copies0 = Nb.total_copies () in
          let r =
            Bench.phase ("httpd_" ^ name) (fun () ->
                if fast then begin
                  ignore (Cl.add_httpd_fast c ?rtc content);
                  (* Deep pipelining is an ability the netbuf client gains
                     (replies are consumed in place, so nothing throttles
                     the window); the legacy socket client is structurally
                     serial per connection. *)
                  Cl.run_httpd_load_fast c ~connections_per_core:conns
                    ~requests_per_core:requests ~pipeline:32 ()
                end
                else begin
                  ignore (Cl.add_httpd c content);
                  Cl.run_httpd_load c ~connections_per_core:conns
                    ~requests_per_core:requests ()
                end)
          in
          let copies = Nb.total_copies () - copies0 in
          (r, copies, Cl.trace_hash c)
        in
        let resp_case name ~fp ~fast ?rtc ?(requests = reqs) () =
          Bench.trial ();
          let c = Cl.create ~seed:42 ~fastpath:fp ~n () in
          let copies0 = Nb.total_copies () in
          let r =
            Bench.phase ("resp_" ^ name) (fun () ->
                (* Same pipelined workload on both paths (redis-benchmark
                   -P 32). *)
                if fast then begin
                  ignore (Cl.add_resp_fast c ~populate:4096 ?rtc ());
                  Cl.run_resp_load_fast c ~connections_per_core:conns ~pipeline:32
                    ~requests_per_core:requests Ukapps.Resp_bench.Get
                end
                else begin
                  ignore (Cl.add_resp c ~populate:4096 ());
                  Cl.run_resp_load c ~connections_per_core:conns ~pipeline:32
                    ~requests_per_core:requests Ukapps.Resp_bench.Get
                end)
          in
          let copies = Nb.total_copies () - copies0 in
          (r, copies, Cl.trace_hash c)
        in
        let per_req (elapsed_ns : float) requests =
          elapsed_ns /. float_of_int (requests * n)
        in
        (* --- httpd: baseline, full fast path, per-ingredient ablations --- *)
        let h_legacy, h_legacy_copies, _ = httpd_case "legacy" ~fp:copy_fp ~fast:false () in
        let h_fast, h_fast_copies, h_hash = httpd_case "fast" ~fp:Cl.fastpath_default ~fast:true () in
        let h_fast2, _, h_hash2 = httpd_case "fast_replay" ~fp:Cl.fastpath_default ~fast:true () in
        (* Warm-up control: same connections, one request each — the only
           requests that legally touch the counted-copy path. *)
        let _, h_warm_copies, _ =
          httpd_case "fast_warmup_only" ~fp:Cl.fastpath_default ~fast:true
            ~requests:conns ()
        in
        let h_nobatch, _, _ =
          httpd_case "fast_nobatch"
            ~fp:{ Cl.fastpath_default with Cl.rx_batch = 1; tx_coalesce = false }
            ~fast:true ()
        in
        let h_copy, _, _ =
          httpd_case "fast_copy" ~fp:{ Cl.fastpath_default with Cl.rx_copy = true }
            ~fast:true ()
        in
        let h_nortc, _, _ =
          httpd_case "fast_nortc" ~fp:Cl.fastpath_default ~fast:true ~rtc:false ()
        in
        let h_pool, _, _ =
          httpd_case "fast_sharedpool"
            ~fp:{ Cl.fastpath_default with Cl.shared_pool = true } ~fast:true ()
        in
        row "httpd, %d server cores, %d conns/core, %d reqs/core:\n" n conns reqs;
        row "  %-18s %12s %12s %10s\n" "config" "kreq/s" "cyc/req" "copies";
        let hrow name (r : Ukapps.Wrk.result) copies =
          row "  %-18s %12.1f %12.0f %10s\n" name (kreq r.Ukapps.Wrk.rate_per_sec)
            (per_req r.Ukapps.Wrk.elapsed_ns reqs)
            (match copies with Some c -> string_of_int c | None -> "-")
        in
        hrow "legacy-copy" h_legacy (Some h_legacy_copies);
        hrow "fast" h_fast (Some h_fast_copies);
        hrow "  -batching" h_nobatch None;
        hrow "  -zero-copy" h_copy None;
        hrow "  -rtc" h_nortc None;
        hrow "  -percore-pools" h_pool None;
        let h_speedup = h_legacy.Ukapps.Wrk.elapsed_ns /. h_fast.Ukapps.Wrk.elapsed_ns in
        let h_hot_copies = h_fast_copies - h_warm_copies in
        row "=> httpd fast path: %.1fx; hot-path counted copies: %d (warm-up control: %d)\n"
          h_speedup h_hot_copies h_warm_copies;
        (* --- RESP: baseline vs fast (the Fig 14 porting story) ----------- *)
        let r_legacy, _, _ = resp_case "legacy" ~fp:copy_fp ~fast:false () in
        let r_fast, r_fast_copies, _ = resp_case "fast" ~fp:Cl.fastpath_default ~fast:true () in
        let r_nortc, _, _ = resp_case "fast_nortc" ~fp:Cl.fastpath_default ~fast:true ~rtc:false () in
        row "RESP GET, same topology:\n";
        let rrow name (r : Ukapps.Resp_bench.result) copies =
          row "  %-18s %12.1f %12.0f %10s\n" name (kreq r.Ukapps.Resp_bench.rate_per_sec)
            (per_req r.Ukapps.Resp_bench.elapsed_ns reqs)
            (match copies with Some c -> string_of_int c | None -> "-")
        in
        rrow "legacy-copy" r_legacy None;
        rrow "fast" r_fast (Some r_fast_copies);
        rrow "  -rtc" r_nortc None;
        let r_speedup = r_legacy.Ukapps.Resp_bench.elapsed_ns /. r_fast.Ukapps.Resp_bench.elapsed_ns in
        let replay_ok =
          h_hash = h_hash2
          && h_fast.Ukapps.Wrk.elapsed_ns = h_fast2.Ukapps.Wrk.elapsed_ns
        in
        row "=> RESP fast path: %.1fx; counted copies in fast run: %d; replay_ok: %b\n"
          r_speedup r_fast_copies replay_ok;
        Bench.emit_f "fastpath_httpd_speedup" h_speedup;
        Bench.emit_f "fastpath_resp_speedup" r_speedup;
        Bench.emit_i "fastpath_httpd_hot_copies" h_hot_copies;
        Bench.emit_i "fastpath_resp_copies" r_fast_copies;
        Bench.emit_i "fastpath_httpd_errors" h_fast.Ukapps.Wrk.errors;
        Bench.emit_i "fastpath_resp_errors" r_fast.Ukapps.Resp_bench.errors;
        Bench.emit_f "fastpath_httpd_cyc_per_req" (per_req h_fast.Ukapps.Wrk.elapsed_ns reqs);
        Bench.emit_f "fastpath_resp_cyc_per_req" (per_req r_fast.Ukapps.Resp_bench.elapsed_ns reqs);
        Bench.emit_b "fastpath_replay_ok" replay_ok);
  }

let register () = List.iter Bench.register_exp
  [ abl_batch; abl_netmode; abl_twoalloc; abl_dispatch; abl_block; abl_security;
    abl_bincompat; abl_wheel; abl_fastpath ]
