(* The Linux-compat specialization ladder (paper §4.1, Table 1): replay
   nginx-class and redis-class syscall traces end to end under each call
   convention — native link, binary-rewritten, binary-compat trap, Linux
   VM — and price the compat surface in image bytes via DCE. *)

open Common
module L = Ukbuild.Linker
module Cat = Ukbuild.Catalog
module D = Ukcompat.Driver
module Trace = Ukcompat.Trace

let seed = 42

let image_bytes ~compat app =
  let r = Cat.registry () in
  let roots =
    Cat.app_roots ~app ~net:true ~fs:true ~compat ~alloc:"alloc-tlsf" ~sched:"sched-coop" ()
  in
  match L.link r ~name:app ~platform:"plat-kvm" ~roots ~flags:{ L.dce = true; lto = true } () with
  | Ok img -> img.L.image_bytes
  | Error e -> failwith e

let report_images () =
  row "%-12s %14s %14s %10s\n" "image" "bytes" "+compat" "delta";
  List.iter
    (fun (app, tag) ->
      let plain = image_bytes ~compat:false app in
      let with_compat = image_bytes ~compat:true app in
      row "%-12s %14d %14d %10d\n" app plain with_compat (with_compat - plain);
      Bench.emit_i (tag ^ "_image_bytes") plain;
      Bench.emit_i (tag ^ "_image_bytes_compat") with_compat)
    [ ("app-nginx", "nginx"); ("app-redis", "redis") ]

let run_ladder (app, tag) =
  Bench.trial ();
  let reports =
    Bench.phase tag (fun () ->
        match D.ladder ~seed app with Ok r -> r | Error e -> failwith e)
  in
  row "\n%s trace: %d syscalls recorded\n" tag (Trace.length (D.trace_of app));
  row "%-18s %12s %12s %8s %8s %8s %8s\n" "rung" "ladder-cyc" "wall-cyc" "calls" "retries"
    "enosys" "client";
  List.iter
    (fun (r : D.report) ->
      let o = r.D.outcome in
      row "%-18s %12d %12d %8d %8d %8d %8s\n" (D.rung_name r.D.rung) r.D.ladder_cycles
        r.D.wall_cycles o.Trace.calls o.Trace.retries o.Trace.enosys
        (if r.D.client_ok then "ok" else "FAIL");
      let key s = Printf.sprintf "%s_%s_%s" tag (D.rung_name r.D.rung) s in
      Bench.emit_i (key "ladder_cycles") r.D.ladder_cycles;
      Bench.emit_i (key "boundary_cycles") o.Trace.boundary_cycles;
      Bench.emit_i (key "retries") o.Trace.retries)
    reports;
  let cyc rung =
    (List.find (fun r -> r.D.rung = rung) reports).D.ladder_cycles
  in
  let boundary rung =
    (List.find (fun r -> r.D.rung = rung) reports).D.outcome.Trace.boundary_cycles
  in
  let ordered =
    cyc D.Native < cyc D.Rewritten && cyc D.Rewritten < cyc D.Compat && cyc D.Compat < cyc D.Linux
  in
  let enosys =
    List.fold_left (fun acc r -> acc + r.D.outcome.Trace.enosys) 0 reports
  in
  let clients_ok = List.for_all (fun r -> r.D.client_ok) reports in
  let ratio = float_of_int (boundary D.Linux) /. float_of_int (boundary D.Native) in
  row "=> ladder %s; boundary native vs linux: %.1fx; enosys on hot path: %d\n"
    (if ordered then "strictly ordered" else "OUT OF ORDER") ratio enosys;
  Bench.emit_b (tag ^ "_ladder_ordered") ordered;
  Bench.emit_i (tag ^ "_enosys") enosys;
  Bench.emit_b (tag ^ "_client_ok") clients_ok;
  Bench.emit_f ~fmt:"%.1f" (tag ^ "_boundary_ratio_native_linux") ratio;
  (ordered, enosys = 0 && clients_ok, ratio >= 5.0)

let replay_deterministic () =
  let hash app rung =
    match D.run ~seed:11 ~rung app with
    | Ok r -> r.D.state_hash
    | Error e -> failwith e
  in
  List.for_all
    (fun (app, rung) -> hash app rung = hash app rung)
    [ (D.Nginx, D.Compat); (D.Redis, D.Native) ]

let compat =
  {
    Bench.id = "compat";
    group = "compat";
    descr = "Linux-compat ladder: traces under native/rewritten/compat/linux dispatch";
    run =
      (fun () ->
        report_images ();
        let nginx = run_ladder (D.Nginx, "nginx") in
        let redis = run_ladder (D.Redis, "redis") in
        let both f = f nginx && f redis in
        let ordered = both (fun (o, _, _) -> o) in
        let hot_clean = both (fun (_, c, _) -> c) in
        let five_x = both (fun (_, _, r) -> r) in
        let deterministic = replay_deterministic () in
        row "\nreplay determinism (same seed, same hash): %s\n"
          (if deterministic then "yes" else "NO");
        Bench.emit_b "ladder_ordered" ordered;
        Bench.emit_b "zero_enosys_hot_paths" hot_clean;
        Bench.emit_b "native_5x_cheaper_boundary" five_x;
        Bench.emit_b "replay_deterministic" deterministic);
  }

let register () = Bench.register_exp compat
