#!/bin/sh
# CI entry point: build, run the full test suite, then smoke the chaos
# soak at its fixed seed (UKRAFT_FAST shrinks the workloads; the run is
# deterministic, so any numeric drift is a real regression).
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== chaos smoke (fixed seed, fast workloads) =="
UKRAFT_FAST=1 dune exec bench/main.exe -- --only chaos

echo "== ci ok =="
