#!/bin/sh
# CI entry point: build, run the full test suite, then smoke the chaos
# soak at its fixed seed (UKRAFT_FAST shrinks the workloads; the run is
# deterministic, so any numeric drift is a real regression).
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
python3 scripts/check_tests.py
dune runtest

echo "== chaos smoke (fixed seed, fast workloads) =="
UKRAFT_FAST=1 dune exec bench/main.exe -- --only chaos
grep -q '"fleet_zero_lost": true' BENCH_chaos.json || {
  echo "FAIL: fleet chaos drill lost responses (kill 20% mid-spike must lose none)"
  exit 1
}

echo "== fleet smoke (fixed seed, fast workloads) =="
UKRAFT_FAST=1 dune exec bench/main.exe -- --only fleet
clone_p99=$(awk -F': ' '/"spike_clone_p99_us"/ { sub(/,$/, "", $2); print $2 }' BENCH_fleet.json)
cold_p99=$(awk -F': ' '/"spike_cold_p99_us"/ { sub(/,$/, "", $2); print $2 }' BENCH_fleet.json)
echo "spike p99: snapshot-clone ${clone_p99}us vs cold-boot ${cold_p99}us (gate: clone < cold)"
awk "BEGIN { exit !(${clone_p99} < ${cold_p99}) }" || {
  echo "FAIL: snapshot-clone scale-out p99 not better than cold boot"
  exit 1
}
grep -q '"spike_slo_ratio_ge5": true' BENCH_fleet.json || {
  echo "FAIL: unikernel fleet SLO-violation window not >= 5x shorter than Linux-VM baseline"
  exit 1
}
grep -q '"spike_cold_beats_linux": true' BENCH_fleet.json || {
  echo "FAIL: even cold-boot unikernels should beat the Linux-VM baseline"
  exit 1
}
grep -q '"fleet_replay_ok": true' BENCH_fleet.json || {
  echo "FAIL: same-seed fleet replay was not byte-identical"
  exit 1
}

echo "== cluster smoke (fixed seed, fast workloads) =="
UKRAFT_FAST=1 dune exec bench/main.exe -- --only cluster
grep -q '"zero_lost_responses": true' BENCH_cluster.json || {
  echo "FAIL: partition drill lost responses (kill mid-migration + 60s asym partition must lose none)"
  exit 1
}
mig_p99=$(awk -F': ' '/"migration_p99_us"/ { sub(/,$/, "", $2); print $2 }' BENCH_cluster.json)
kc_p99=$(awk -F': ' '/"kill_clone_p99_us"/ { sub(/,$/, "", $2); print $2 }' BENCH_cluster.json)
echo "failover p99: live migration ${mig_p99}us vs kill+clone ${kc_p99}us (gate: migration < kill+clone)"
awk "BEGIN { exit !(${mig_p99} < ${kc_p99}) }" || {
  echo "FAIL: live migration p99 not better than the kill+clone baseline"
  exit 1
}
grep -q '"hedging_beats_straggler": true' BENCH_cluster.json || {
  echo "FAIL: hedged p99.9 not better than unhedged under a straggler host"
  exit 1
}
grep -q '"planted_detector_fp": true' BENCH_cluster.json || {
  echo "FAIL: planted-bug detector (suspect_phi=0) produced no false positives - suspicion machinery is dead"
  exit 1
}
grep -q '"cluster_replay_ok": true' BENCH_cluster.json || {
  echo "FAIL: same-seed cluster drill replay was not byte-identical"
  exit 1
}

echo "== smp smoke (fixed seed, fast workloads) =="
UKRAFT_FAST=1 dune exec bench/main.exe -- --only smp
speedup=$(awk -F': ' '/"speedup_4"/ { sub(/,$/, "", $2); print $2 }' BENCH_smp.json)
echo "4-core httpd speedup: ${speedup}x (gate: >= 2)"
awk "BEGIN { exit !(${speedup} >= 2.0) }" || {
  echo "FAIL: 4-core speedup ${speedup} below 2x"
  exit 1
}
grep -q '"determinism_ok": true' BENCH_smp.json || {
  echo "FAIL: same-seed smp replay was not byte-identical"
  exit 1
}
grep -q '"trace_invariant_ok": true' BENCH_smp.json || {
  echo "FAIL: tracing-on replay diverged from tracing-off (uktrace is not invisible)"
  exit 1
}

echo "== compat smoke (fixed seed, fast workloads) =="
UKRAFT_FAST=1 dune exec bench/main.exe -- --only compat
grep -q '"ladder_ordered": true' BENCH_compat.json || {
  echo "FAIL: specialization ladder not strictly ordered (native < rewritten < compat < linux-vm)"
  exit 1
}
grep -q '"zero_enosys_hot_paths": true' BENCH_compat.json || {
  echo "FAIL: ENOSYS leaked onto a hot path (nginx/redis traces must be fully handled)"
  exit 1
}
grep -q '"native_5x_cheaper_boundary": true' BENCH_compat.json || {
  echo "FAIL: native syscall boundary not >= 5x cheaper than the Linux-VM boundary"
  exit 1
}
grep -q '"replay_deterministic": true' BENCH_compat.json || {
  echo "FAIL: same-seed compat trace replay was not byte-identical"
  exit 1
}

echo "== fast-path ablation smoke (fixed seed, steady-state workloads) =="
UKRAFT_FAST=1 dune exec bench/main.exe -- --only abl-fastpath
h_speedup=$(awk -F': ' '/"fastpath_httpd_speedup"/ { sub(/,$/, "", $2); print $2 }' BENCH_ablation.json)
r_speedup=$(awk -F': ' '/"fastpath_resp_speedup"/ { sub(/,$/, "", $2); print $2 }' BENCH_ablation.json)
echo "fast path over socket/copy path: httpd ${h_speedup}x, RESP ${r_speedup}x (gate: >= 5)"
awk "BEGIN { exit !(${h_speedup} >= 5.0 && ${r_speedup} >= 5.0) }" || {
  echo "FAIL: zero-copy fast path not >= 5x over the socket/copy path"
  exit 1
}
grep -q '"fastpath_httpd_hot_copies": 0,' BENCH_ablation.json || {
  echo "FAIL: httpd hot path made counted memcpys (steady state must be copy-free)"
  exit 1
}
grep -q '"fastpath_resp_copies": 0,' BENCH_ablation.json || {
  echo "FAIL: RESP fast run made counted memcpys (must be copy-free end to end)"
  exit 1
}
grep -q '"fastpath_replay_ok": true' BENCH_ablation.json || {
  echo "FAIL: same-seed 8-core fast-path run was not byte-identical"
  exit 1
}

echo "== inference smoke (fixed seed, fast workloads) =="
UKRAFT_FAST=1 dune exec bench/main.exe -- --only infer
grep -q '"clone_beats_cold_le128": true' BENCH_infer.json || {
  echo "FAIL: snapshot clone must beat cold boot for models up to 128 MB"
  exit 1
}
crossover=$(awk -F': ' '/"crossover_mb"/ { sub(/,$/, "", $2); print $2 }' BENCH_infer.json)
echo "clone/cold crossover at ${crossover} MB of weights (gate: in (128, 512])"
awk "BEGIN { exit !(${crossover} > 128 && ${crossover} <= 512) }" || {
  echo "FAIL: clone-vs-cold crossover outside (128, 512] MB — boot economics drifted"
  exit 1
}
grep -q '"infer_spike_lost": 0,' BENCH_infer.json || {
  echo "FAIL: inference fleet lost responses under the 10x spike"
  exit 1
}
grep -q '"infer_replay_ok": true' BENCH_infer.json || {
  echo "FAIL: same-seed inference fleet run was not byte-identical"
  exit 1
}
grep -q '"batch_amortizes": true' BENCH_infer.json || {
  echo "FAIL: batching did not amortize the weight pass (throughput must rise with max_batch)"
  exit 1
}

echo "== store smoke (crash matrix, durability pricing, seeded replay) =="
UKRAFT_FAST=1 dune exec bench/main.exe -- --only store
grep -q '"recovery_zero_lost_commits": true' BENCH_store.json || {
  echo "FAIL: crash matrix lost a durable commit (or resurrected a torn one)"
  exit 1
}
grep -q '"write_read_mix_priced": true' BENCH_store.json || {
  echo "FAIL: durability pricing inverted — writes must pay the journal, RESP must beat the durable store"
  exit 1
}
grep -q '"store_replay_ok": true' BENCH_store.json || {
  echo "FAIL: same-seed store run did not replay to identical roots + trace"
  exit 1
}
grep -q '"store_spike_lost": 0,' BENCH_store.json || {
  echo "FAIL: store fleet lost responses under the 10x spike"
  exit 1
}

echo "== ukcheck gate (lockset + schedule explorer) =="
# Race detector over the 4-core cluster smoke (any report fails) and the
# schedule explorer over the uklock/Percore fixtures at a 64-schedule
# budget; the gate prints per-fixture schedule counts and exits non-zero
# on any violation, with a replay certificate in the log.
dune exec bin/ukcheck_gate.exe

echo "== observability smoke (tracing on, fast workloads) =="
UKRAFT_FAST=1 UKRAFT_TRACE=1 dune exec bench/main.exe -- --only fig13
python3 scripts/check_trace.py TRACE_fig13.json ukapps uknetstack ukalloc
grep -q '"metrics"' BENCH_perf.json || {
  echo "FAIL: BENCH_perf.json has no metrics section"
  exit 1
}

echo "== ci ok =="
