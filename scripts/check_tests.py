#!/usr/bin/env python3
"""Assert every test/t_*.ml suite is registered in test/test_main.ml.

A suite file that exists but is never listed in test_main.ml compiles,
links and silently never runs — this gate turns that drift into a CI
failure. Each test/t_<name>.ml must appear in test_main.ml as
T_<name>.suite (the file's OCaml module name).
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
TEST_DIR = ROOT / "test"
MAIN = TEST_DIR / "test_main.ml"


def main() -> int:
    main_src = MAIN.read_text()
    registered = set(re.findall(r"\bT_([A-Za-z0-9_]+)\.suite\b", main_src))
    missing = []
    for path in sorted(TEST_DIR.glob("t_*.ml")):
        stem = path.stem[2:]  # drop the "t_" prefix
        if stem not in registered:
            missing.append((path.name, f"T_{stem}.suite"))
    if missing:
        print("FAIL: test suites exist but are not registered in test_main.ml:")
        for fname, want in missing:
            print(f"  test/{fname}  (expected {want} in test/test_main.ml)")
        return 1
    print(f"ok: all {len(list(TEST_DIR.glob('t_*.ml')))} test suites registered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
