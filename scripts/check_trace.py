#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file exported by uktrace.

Usage: check_trace.py TRACE.json subsystem [subsystem ...]

Checks that the file parses as Chrome trace JSON, that begin/end events
balance per (pid, tid), and that every named subsystem contributed at
least one complete span.
"""
import json
import sys


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def main():
    if len(sys.argv) < 3:
        fail(f"usage: {sys.argv[0]} TRACE.json subsystem [subsystem ...]")
    path, subsystems = sys.argv[1], sys.argv[2:]
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not a list")

    begins = {}
    depth = {}
    orphans = 0  # E whose B fell off the bounded ring: fine, but counted
    for ev in events:
        ph = ev.get("ph")
        if ph not in ("B", "E", "i", "I"):
            fail(f"unexpected phase {ph!r} in {ev}")
        if "ts" not in ev:
            fail(f"event without ts: {ev}")
        lane = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            begins[ev.get("cat")] = begins.get(ev.get("cat"), 0) + 1
            depth[lane] = depth.get(lane, 0) + 1
        elif ph == "E":
            if depth.get(lane, 0) <= 0:
                orphans += 1
            else:
                depth[lane] -= 1
    unclosed = sum(v for v in depth.values() if v > 0)
    for sub in subsystems:
        if begins.get(sub, 0) < 1:
            fail(f"no spans from subsystem {sub!r} (saw: {sorted(begins)})")
    total = sum(begins.values())
    print(
        f"ok: {len(events)} events, {total} spans "
        f"({orphans} ring-truncated, {unclosed} unclosed), "
        f"subsystems {sorted(begins)}"
    )


if __name__ == "__main__":
    main()
